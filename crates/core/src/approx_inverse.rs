//! Sparse approximate inverse of a Cholesky factor (Alg. 2 of the paper).
//!
//! Let `L` be the (incomplete) Cholesky factor of the grounded Laplacian and
//! `Z = L⁻¹`. Lemma 1 shows `Z` is nonnegative and that its columns obey the
//! recurrence
//!
//! ```text
//! z_j = (1 / L_jj) e_j + Σ_{i > j, L_ij ≠ 0} (−L_ij / L_jj) z_i
//! ```
//!
//! so the columns can be built from the last one backwards. The algorithm
//! keeps every column sparse by pruning: after assembling the candidate
//! column `z*_j` from the already-pruned columns, the smallest entries whose
//! absolute values sum to at most `ε · ‖z*_j‖₁` are dropped (the `trunc_k`
//! rule of Eq. (10)). Theorem 1 then bounds the column error by
//! `depth(j) · ε`.
//!
//! # Storage: a flat CSC arena with `u32` row indices
//!
//! The finished inverse is stored as three contiguous buffers —
//! `col_ptr`/`rows`/`vals`, the classic compressed-sparse-column layout —
//! rather than one heap allocation per column. Row indices are stored as
//! `u32` (the width the snapshot format has always used on disk), so on a
//! 64-bit host the query kernels move **half the index bytes** a
//! `usize`-indexed arena would: the kernels are memory-bandwidth bound and
//! every cache line of `rows` now carries 16 indices instead of 8. The
//! narrowing caps the supported order at `u32::MAX` columns; the cap is
//! enforced by [`ensure_u32_indexable`] at build and load time with a typed
//! [`EffresError::IndexOverflow`] — never a silent truncation. Query kernels
//! ([`SparseApproximateInverse::column_dot`], the distance kernels, the
//! service engine's dense-scatter scratch) read columns as plain slices, so
//! a batch walking many columns streams through one arena instead of
//! pointer-chasing per-column `Vec`s.
//!
//! # Parallel construction
//!
//! Column `j` depends only on the columns `i > j` in `L`'s column-`j`
//! pattern — `j`'s elimination-tree ancestors — so the backward sweep admits
//! *level scheduling* ([`effres_sparse::LevelSchedule`]): all columns of one
//! level are independent once the shallower levels are done. The parallel
//! build processes levels root-downward, partitioning each level across the
//! workers of a persistent [`WorkerPool`] with per-worker
//! [`SparseAccumulator`] scratch; one pool round per level replaces the old
//! per-build scoped threads and barriers, and a deployment that builds and
//! then serves can share a single pool between both stages
//! ([`SparseApproximateInverse::from_factor_shared`],
//! `EffresConfig::with_worker_pool`). Every column is assembled from the
//! same already-pruned columns with the same floating-point operation order
//! as in the sequential sweep, so the parallel build is **bit-identical** to
//! the sequential one; the sequential path is kept for one thread, small
//! factors and schedules too narrow to win.

use crate::config::BuildOptions;
use crate::error::EffresError;
use effres_sparse::schedule::LevelSchedule;
use effres_sparse::sparse_vec::{SparseAccumulator, SparseVec};
use effres_sparse::{CscMatrix, WorkerPool};
use std::sync::{Arc, Mutex, RwLock};

/// Statistics gathered while building the approximate inverse.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ApproxInverseStats {
    /// Total number of stored nonzeros across all columns of `Z̃`.
    pub nnz: usize,
    /// Largest number of nonzeros in a single column.
    pub max_column_nnz: usize,
    /// Number of entries removed by the pruning rule.
    pub pruned_entries: usize,
    /// Number of columns kept exactly because they were already small.
    pub small_columns_kept: usize,
}

/// Checks that an order of `n` rows/columns fits the arena's `u32` index
/// space.
///
/// This is the single overflow guard of the `usize`→`u32` index narrowing:
/// every constructor of [`SparseApproximateInverse`] (and the snapshot
/// loaders in `effres-io`) calls it before any index is cast, so an
/// over-large graph produces a typed [`EffresError::IndexOverflow`] instead
/// of truncated indices.
///
/// # Errors
///
/// Returns [`EffresError::IndexOverflow`] when `n > u32::MAX`.
pub fn ensure_u32_indexable(n: usize) -> Result<(), EffresError> {
    if n > u32::MAX as usize {
        Err(EffresError::IndexOverflow { node_count: n })
    } else {
        Ok(())
    }
}

/// Byte-level memory footprint of the flat CSC arena, reported by
/// [`SparseApproximateInverse::footprint`] so operators can see what the
/// query path actually streams (`effres-cli stats` prints it). The row block
/// is the one the `usize`→`u32` narrowing halved; `index_width_bytes`
/// records the in-memory index width so the savings stay visible in logs
/// and perf reports.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ArenaFootprint {
    /// Bytes of the column-pointer block (`(order + 1) × 8`).
    pub col_ptr_bytes: usize,
    /// Bytes of the row-index block (`nnz × 4`).
    pub rows_bytes: usize,
    /// Bytes of the value block (`nnz × 8` for `f64` values, `nnz × 4`
    /// in the narrowed `f32` value mode).
    pub vals_bytes: usize,
    /// Width of one stored row index in bytes (4 for the `u32` arena).
    pub index_width_bytes: usize,
}

impl ArenaFootprint {
    /// Total bytes across the three arena blocks.
    pub fn total_bytes(&self) -> usize {
        self.col_ptr_bytes + self.rows_bytes + self.vals_bytes
    }
}

/// Precision of the stored arena values (the row indices are always `u32`).
///
/// The query kernels are memory-bandwidth bound, so halving the value
/// stream from 8 to 4 bytes per entry is a real throughput lever — at the
/// cost of one rounding per stored value. Every kernel **accumulates in
/// `f64` regardless**: narrow values are widened before any arithmetic, so
/// f32 mode pays only the per-entry conversion error (at most `2⁻²⁴`
/// relative, measured and reported by
/// [`SparseApproximateInverse::narrowing_error`]), never reduced-precision
/// accumulation. Snapshots stay f64-canonical; narrowing happens at load or
/// page-decode time.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ValueMode {
    /// Full-precision `f64` values — the default, bit-identical to every
    /// release so far.
    #[default]
    F64,
    /// Narrowed `f32` values, widened to `f64` on use (opt-in).
    F32,
}

impl ValueMode {
    /// Bytes of one stored value in this mode.
    pub fn value_bytes(self) -> usize {
        match self {
            ValueMode::F64 => 8,
            ValueMode::F32 => 4,
        }
    }
}

/// The value slice behind a [`ColumnView`], at whichever width the owning
/// store keeps its arena (see [`ValueMode`]).
#[derive(Debug, Clone, Copy)]
pub enum ValuesView<'a> {
    /// Full-precision values.
    F64(&'a [f64]),
    /// Narrowed values; kernels widen each entry to `f64` before use.
    F32(&'a [f32]),
}

impl ValuesView<'_> {
    /// Number of stored values.
    pub fn len(&self) -> usize {
        match self {
            ValuesView::F64(v) => v.len(),
            ValuesView::F32(v) => v.len(),
        }
    }

    /// Whether no values are stored.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The mode of the underlying slice.
    pub fn mode(&self) -> ValueMode {
        match self {
            ValuesView::F64(_) => ValueMode::F64,
            ValuesView::F32(_) => ValueMode::F32,
        }
    }

    /// Value at position `pos`, widened to `f64`.
    ///
    /// # Panics
    ///
    /// Panics if `pos` is out of bounds.
    pub fn get(&self, pos: usize) -> f64 {
        match self {
            ValuesView::F64(v) => v[pos],
            ValuesView::F32(v) => f64::from(v[pos]),
        }
    }
}

/// A borrowed view of one column of the approximate inverse: parallel
/// `indices`/`values` slices into the flat CSC arena, with strictly
/// increasing `u32` indices (see the module docs for the index narrowing)
/// and values at the arena's [`ValueMode`] width.
#[derive(Debug, Clone, Copy)]
pub struct ColumnView<'a> {
    dim: usize,
    indices: &'a [u32],
    values: ValuesView<'a>,
}

impl<'a> ColumnView<'a> {
    /// Dimension of the (conceptual) vector.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Number of stored entries.
    pub fn nnz(&self) -> usize {
        self.indices.len()
    }

    /// Whether no entries are stored.
    pub fn is_empty(&self) -> bool {
        self.indices.is_empty()
    }

    /// Stored indices (strictly increasing), at the arena's native `u32`
    /// width.
    pub fn indices(&self) -> &'a [u32] {
        self.indices
    }

    /// Stored values, parallel to [`ColumnView::indices`] — full-precision
    /// arenas only.
    ///
    /// # Panics
    ///
    /// Panics if the view borrows an f32-mode arena; width-agnostic callers
    /// use [`ColumnView::values_view`] or [`ColumnView::iter`] instead.
    pub fn values(&self) -> &'a [f64] {
        match self.values {
            ValuesView::F64(values) => values,
            ValuesView::F32(_) => panic!(
                "column holds f32 values; use values_view()/iter() or a ValueMode::F64 store"
            ),
        }
    }

    /// Stored values at their native width, parallel to
    /// [`ColumnView::indices`].
    pub fn values_view(&self) -> ValuesView<'a> {
        self.values
    }

    /// The value width of the backing arena.
    pub fn value_mode(&self) -> ValueMode {
        self.values.mode()
    }

    /// Approximate bytes one stored entry occupies in the arena (row index
    /// plus value) — what a kernel streams per entry it touches.
    pub fn entry_bytes(&self) -> usize {
        std::mem::size_of::<u32>() + self.values.mode().value_bytes()
    }

    /// Iterates over stored `(index, value)` pairs in index order, widening
    /// narrow values to `f64`.
    pub fn iter(&self) -> impl Iterator<Item = (usize, f64)> + 'a {
        let indices = self.indices.iter().map(|&i| i as usize);
        match self.values {
            ValuesView::F64(values) => {
                Box::new(indices.zip(values.iter().copied())) as Box<dyn Iterator<Item = _> + 'a>
            }
            ValuesView::F32(values) => Box::new(indices.zip(values.iter().map(|&v| f64::from(v)))),
        }
    }

    /// Value at `index` (zero if not stored), widened to `f64`.
    ///
    /// # Panics
    ///
    /// Panics if `index >= self.dim()`.
    pub fn get(&self, index: usize) -> f64 {
        assert!(index < self.dim, "index out of bounds");
        match self.indices.binary_search(&(index as u32)) {
            Ok(pos) => self.values.get(pos),
            Err(_) => 0.0,
        }
    }

    /// 1-norm (sum of absolute values), accumulated in `f64`.
    pub fn norm1(&self) -> f64 {
        match self.values {
            ValuesView::F64(values) => values.iter().map(|v| v.abs()).sum(),
            ValuesView::F32(values) => values.iter().map(|&v| f64::from(v).abs()).sum(),
        }
    }

    /// Squared Euclidean norm, accumulated in `f64` (narrow values widen
    /// before squaring, so f32 mode never squares in reduced precision).
    pub fn norm2_squared(&self) -> f64 {
        match self.values {
            ValuesView::F64(values) => values.iter().map(|v| v * v).sum(),
            ValuesView::F32(values) => values
                .iter()
                .map(|&v| {
                    let w = f64::from(v);
                    w * w
                })
                .sum(),
        }
    }

    /// Dot product of the column's suffix from `bound` with a dense vector,
    /// accumulated in entry order — the hub-scatter kernel of
    /// [`crate::column_store::HubScratch`]. The suffix restriction mirrors
    /// [`crate::column_store::column_dot`]: entries below `bound` cannot
    /// intersect the other operand and are skipped via one binary search.
    pub fn suffix_dot_dense(&self, dense: &[f64], bound: u32) -> f64 {
        let start = self.indices.partition_point(|&row| row < bound);
        let indices = &self.indices[start..];
        match self.values {
            ValuesView::F64(values) => indices
                .iter()
                .zip(&values[start..])
                .map(|(&i, v)| dense[i as usize] * v)
                .sum(),
            ValuesView::F32(values) => indices
                .iter()
                .zip(&values[start..])
                .map(|(&i, &v)| dense[i as usize] * f64::from(v))
                .sum(),
        }
    }

    /// 1-norm of the difference with a sparse vector of the same dimension
    /// (a diagnostics path: allocation is fine, so the view is widened and
    /// the shared `vecops` merge kernel does the work).
    ///
    /// # Panics
    ///
    /// Panics if the dimensions differ.
    pub fn diff_norm1(&self, other: &SparseVec) -> f64 {
        self.to_sparse_vec().diff_norm1(other)
    }

    /// Assembles a view from raw parallel slices.
    ///
    /// This is the entry point for column stores that do not own a resident
    /// arena — e.g. a paged store lending a slice of a decoded cache page
    /// (see the `ColumnStore` trait in [`crate::column_store`]). The caller
    /// is responsible for the view invariants: `indices` strictly
    /// increasing below `dim`, parallel to `values`.
    ///
    /// # Panics
    ///
    /// Panics if `indices` and `values` have different lengths.
    pub fn from_slices(dim: usize, indices: &'a [u32], values: &'a [f64]) -> Self {
        assert_eq!(
            indices.len(),
            values.len(),
            "ColumnView slices must be parallel"
        );
        ColumnView {
            dim,
            indices,
            values: ValuesView::F64(values),
        }
    }

    /// Assembles a view over narrowed `f32` values (see
    /// [`ColumnView::from_slices`] for the invariants).
    ///
    /// # Panics
    ///
    /// Panics if `indices` and `values` have different lengths.
    pub fn from_slices_f32(dim: usize, indices: &'a [u32], values: &'a [f32]) -> Self {
        assert_eq!(
            indices.len(),
            values.len(),
            "ColumnView slices must be parallel"
        );
        ColumnView {
            dim,
            indices,
            values: ValuesView::F32(values),
        }
    }

    /// Copies the view into an owned [`SparseVec`] (widening the indices
    /// back to `usize` and narrow values to `f64`).
    pub fn to_sparse_vec(&self) -> SparseVec {
        let values = match self.values {
            ValuesView::F64(values) => values.to_vec(),
            ValuesView::F32(values) => values.iter().map(|&v| f64::from(v)).collect(),
        };
        SparseVec::from_sorted(
            self.dim,
            self.indices.iter().map(|&i| i as usize).collect(),
            values,
        )
    }
}

/// A sparse approximation `Z̃ ≈ L⁻¹` of the inverse of a lower-triangular
/// Cholesky factor, stored as a flat CSC arena with `u32` row indices (see
/// the module docs).
#[derive(Debug, Clone, PartialEq)]
pub struct SparseApproximateInverse {
    dim: usize,
    /// `col_ptr[j]..col_ptr[j + 1]` indexes `rows` and the active value
    /// buffer for column `j`.
    col_ptr: Vec<usize>,
    rows: Vec<u32>,
    /// Full-precision values (empty in [`ValueMode::F32`]).
    vals: Vec<f64>,
    /// Narrowed values (empty in [`ValueMode::F64`]); exactly one of
    /// `vals`/`vals32` is populated, selected by `mode`.
    vals32: Vec<f32>,
    mode: ValueMode,
    /// Largest relative rounding error introduced by the last
    /// f64 → f32 narrowing (0 in f64 mode; retained as a record after
    /// widening back).
    narrowing_error: f64,
    stats: ApproxInverseStats,
    epsilon: f64,
}

impl SparseApproximateInverse {
    /// Runs Alg. 2 on the factor `L` with pruning threshold `epsilon`,
    /// using the default [`BuildOptions`] (one worker thread per core; the
    /// result is bit-identical to the sequential build regardless).
    ///
    /// Columns whose candidate has at most `max(dense_column_threshold, ln n)`
    /// entries are kept without pruning, as in step 3 of Alg. 2.
    ///
    /// # Errors
    ///
    /// Returns [`EffresError::Sparse`] if the factor is not square, and
    /// [`EffresError::InvalidConfig`] if `epsilon` is not in `[0, 1)` or a
    /// diagonal entry of the factor is missing or nonpositive.
    pub fn from_factor(
        factor: &CscMatrix,
        epsilon: f64,
        dense_column_threshold: usize,
    ) -> Result<Self, EffresError> {
        Self::from_factor_with(
            factor,
            epsilon,
            dense_column_threshold,
            &BuildOptions::default(),
        )
    }

    /// Runs Alg. 2 with explicit execution options (see
    /// [`SparseApproximateInverse::from_factor`] for the numerical contract).
    ///
    /// The level-scheduled parallel sweep is used when `options` allow more
    /// than one thread, the factor is large enough
    /// (`options.parallel_threshold`) and the schedule is wide enough to
    /// amortize the per-level synchronization; otherwise the sequential
    /// reference sweep runs. Both produce bit-identical output.
    ///
    /// # Errors
    ///
    /// See [`SparseApproximateInverse::from_factor`].
    pub fn from_factor_with(
        factor: &CscMatrix,
        epsilon: f64,
        dense_column_threshold: usize,
        options: &BuildOptions,
    ) -> Result<Self, EffresError> {
        Self::build_impl(
            FactorSource::Borrowed(factor),
            epsilon,
            dense_column_threshold,
            options,
            None,
        )
    }

    /// Runs Alg. 2 on a shared factor, optionally on a shared persistent
    /// [`WorkerPool`].
    ///
    /// This is the entry point for build-then-serve deployments: the factor
    /// arrives in an [`Arc`] (so the level-scheduled sweep can hand it to
    /// pool workers without copying it) and `pool`, when given, is reused
    /// instead of spawning per-build threads — pass the same pool to the
    /// query engine and the whole deployment runs on one set of workers.
    /// With `pool: None` a transient pool is spawned for the build when the
    /// parallel path is taken. The numerical contract (and the bit-identity
    /// of parallel and sequential sweeps) is that of
    /// [`SparseApproximateInverse::from_factor`].
    ///
    /// # Errors
    ///
    /// See [`SparseApproximateInverse::from_factor`].
    pub fn from_factor_shared(
        factor: Arc<CscMatrix>,
        epsilon: f64,
        dense_column_threshold: usize,
        options: &BuildOptions,
        pool: Option<&WorkerPool>,
    ) -> Result<Self, EffresError> {
        Self::build_impl(
            FactorSource::Shared(factor),
            epsilon,
            dense_column_threshold,
            options,
            pool,
        )
    }

    fn build_impl(
        factor: FactorSource<'_>,
        epsilon: f64,
        dense_column_threshold: usize,
        options: &BuildOptions,
        pool: Option<&WorkerPool>,
    ) -> Result<Self, EffresError> {
        if factor.get().nrows() != factor.get().ncols() {
            return Err(EffresError::Sparse(effres_sparse::SparseError::NotSquare {
                nrows: factor.get().nrows(),
                ncols: factor.get().ncols(),
            }));
        }
        if !(0.0..1.0).contains(&epsilon) {
            return Err(EffresError::InvalidConfig {
                name: "epsilon",
                message: "must lie in [0, 1)".to_string(),
            });
        }
        let n = factor.get().ncols();
        ensure_u32_indexable(n)?;
        let keep_limit = dense_column_threshold.max((n.max(2) as f64).ln().ceil() as usize);

        // Pre-validate every diagonal up front so the sweeps are infallible
        // (pool workers have no error channel mid-level).
        let mut diag = Vec::with_capacity(n);
        for j in 0..n {
            let rows = factor.get().column_rows(j);
            let pos = rows
                .binary_search(&j)
                .map_err(|_| EffresError::InvalidConfig {
                    name: "factor",
                    message: format!("missing diagonal entry in column {j}"),
                })?;
            let d = factor.get().column_values(j)[pos];
            if !(d > 0.0) {
                return Err(EffresError::InvalidConfig {
                    name: "factor",
                    message: format!("nonpositive diagonal {d} in column {j}"),
                });
            }
            diag.push(d);
        }

        let threads = match (options.threads, pool) {
            // Unconfigured + shared pool: use the workers that exist.
            (0, Some(pool)) => pool.threads(),
            (configured, _) => resolve_threads(configured),
        }
        .min(n.max(1));
        // A narrow schedule (long dependency chains) spends more time
        // synchronizing per level than computing; the sequential sweep wins
        // there.
        let schedule = if threads > 1 && n >= options.parallel_threshold {
            Some(LevelSchedule::from_lower_factor(factor.get()))
                .filter(|s| s.mean_width() >= (4 * threads) as f64)
        } else {
            None
        };
        let (store, stats) = match schedule {
            Some(schedule) => {
                // The pool workers need `'static` access to the factor: use
                // the shared handle when the caller provided one, clone the
                // borrowed factor into a transient Arc otherwise (build-time
                // only, and small next to the inverse the sweep produces).
                let factor = factor.into_shared();
                let transient;
                let pool = match pool {
                    Some(pool) => pool,
                    None => {
                        transient = WorkerPool::new(threads);
                        &transient
                    }
                };
                parallel_sweep(factor, diag, keep_limit, epsilon, schedule, threads, pool)
            }
            None => sequential_sweep(factor.get(), &diag, keep_limit, epsilon),
        };
        let (col_ptr, rows, vals) = store.into_csc(n);
        Ok(SparseApproximateInverse {
            dim: n,
            col_ptr,
            rows,
            vals,
            vals32: Vec::new(),
            mode: ValueMode::F64,
            narrowing_error: 0.0,
            stats,
            epsilon,
        })
    }

    /// Order of the factor (number of columns).
    pub fn order(&self) -> usize {
        self.dim
    }

    /// The pruning threshold the inverse was built with.
    pub fn epsilon(&self) -> f64 {
        self.epsilon
    }

    /// Column `j` of `Z̃` (an approximation of `L⁻¹ e_j`) as a borrowed view
    /// into the arena.
    ///
    /// # Panics
    ///
    /// Panics if `j` is out of bounds.
    pub fn column(&self, j: usize) -> ColumnView<'_> {
        let lo = self.col_ptr[j];
        let hi = self.col_ptr[j + 1];
        let values = match self.mode {
            ValueMode::F64 => ValuesView::F64(&self.vals[lo..hi]),
            ValueMode::F32 => ValuesView::F32(&self.vals32[lo..hi]),
        };
        ColumnView {
            dim: self.dim,
            indices: &self.rows[lo..hi],
            values,
        }
    }

    /// The arena's column-pointer buffer (`order() + 1` entries).
    pub fn col_ptr(&self) -> &[usize] {
        &self.col_ptr
    }

    /// The arena's concatenated row indices, in column order, at the
    /// arena's native `u32` width.
    pub fn arena_rows(&self) -> &[u32] {
        &self.rows
    }

    /// The arena's concatenated values, parallel to
    /// [`SparseApproximateInverse::arena_rows`] — full-precision arenas
    /// only.
    ///
    /// # Panics
    ///
    /// Panics in [`ValueMode::F32`]: snapshots (the only raw-arena
    /// consumers) are f64-canonical, so narrowed inverses must be widened
    /// with [`SparseApproximateInverse::with_value_mode`] first.
    pub fn arena_values(&self) -> &[f64] {
        assert_eq!(
            self.mode,
            ValueMode::F64,
            "arena holds f32 values; convert with with_value_mode(ValueMode::F64) first"
        );
        &self.vals
    }

    /// The value width of the arena (see [`ValueMode`]).
    pub fn value_mode(&self) -> ValueMode {
        self.mode
    }

    /// Largest relative rounding error introduced by narrowing the arena to
    /// `f32` (`|widened − original| / |original|` over all stored values;
    /// `0` for an arena that was never narrowed). At most `2⁻²⁴ ≈ 6e-8` by
    /// IEEE-754 round-to-nearest.
    pub fn narrowing_error(&self) -> f64 {
        self.narrowing_error
    }

    /// Converts the arena's value storage to `mode`, returning the
    /// converted inverse. `F64 → F32` narrows every stored value with
    /// round-to-nearest and records the worst relative error (see
    /// [`SparseApproximateInverse::narrowing_error`]); `F32 → F64` widens
    /// losslessly; same-mode conversion is a no-op. The indices, column
    /// pointers, stats, and epsilon are untouched.
    ///
    /// # Errors
    ///
    /// Returns [`EffresError::InvalidConfig`] if a finite stored value
    /// overflows `f32` (magnitude above ~3.4e38) — the inverse is returned
    /// unusable in that error path, so convert before serving.
    pub fn with_value_mode(mut self, mode: ValueMode) -> Result<Self, EffresError> {
        match (self.mode, mode) {
            (ValueMode::F64, ValueMode::F64) | (ValueMode::F32, ValueMode::F32) => {}
            (ValueMode::F64, ValueMode::F32) => {
                let mut max_rel = 0.0_f64;
                let mut vals32 = Vec::with_capacity(self.vals.len());
                for (pos, &v) in self.vals.iter().enumerate() {
                    let narrowed = v as f32;
                    if v.is_finite() && !narrowed.is_finite() {
                        return Err(EffresError::InvalidConfig {
                            name: "value_mode",
                            message: format!(
                                "arena value {v:e} at entry {pos} overflows f32; \
                                 the inverse cannot be narrowed"
                            ),
                        });
                    }
                    if v != 0.0 {
                        max_rel = max_rel.max(((f64::from(narrowed) - v) / v).abs());
                    }
                    vals32.push(narrowed);
                }
                self.vals = Vec::new();
                self.vals32 = vals32;
                self.mode = ValueMode::F32;
                self.narrowing_error = max_rel;
            }
            (ValueMode::F32, ValueMode::F64) => {
                self.vals = self.vals32.iter().map(|&v| f64::from(v)).collect();
                self.vals32 = Vec::new();
                self.mode = ValueMode::F64;
                // narrowing_error is kept: the values still carry the
                // rounding from the earlier narrowing.
            }
        }
        Ok(self)
    }

    /// Total number of stored nonzeros.
    pub fn nnz(&self) -> usize {
        self.stats.nnz
    }

    /// `nnz(Z̃) / (n · log₂ n)`, the density figure reported in Table I.
    pub fn nnz_ratio(&self) -> f64 {
        let n = self.order().max(2) as f64;
        self.stats.nnz as f64 / (n * n.log2())
    }

    /// Build statistics.
    pub fn stats(&self) -> ApproxInverseStats {
        self.stats
    }

    /// Byte-level footprint of the arena buffers (see [`ArenaFootprint`]).
    /// In [`ValueMode::F32`] the value bytes are half the f64 figure — the
    /// point of the narrow mode.
    pub fn footprint(&self) -> ArenaFootprint {
        ArenaFootprint {
            col_ptr_bytes: self.col_ptr.len() * std::mem::size_of::<usize>(),
            rows_bytes: self.rows.len() * std::mem::size_of::<u32>(),
            vals_bytes: self.vals.len() * std::mem::size_of::<f64>()
                + self.vals32.len() * std::mem::size_of::<f32>(),
            index_width_bytes: std::mem::size_of::<u32>(),
        }
    }

    /// Squared Euclidean distance between two columns — the effective
    /// resistance kernel `‖z̃_p − z̃_q‖²` of Eq. (22).
    ///
    /// Delegates to the store-generic [`crate::column_store`] kernel; the
    /// resident arena is infallible, so this keeps the plain `f64` return.
    ///
    /// # Panics
    ///
    /// Panics if either index is out of bounds.
    pub fn column_distance_squared(&self, p: usize, q: usize) -> f64 {
        crate::column_store::column_distance_squared(self, p, q)
            .expect("resident arena access is infallible")
    }

    /// Inner product `⟨z̃_p, z̃_q⟩` of two columns (the suffix-restricted
    /// merge of [`crate::column_store::column_dot`] on the resident arena).
    ///
    /// # Panics
    ///
    /// Panics if either index is out of bounds.
    pub fn column_dot(&self, p: usize, q: usize) -> f64 {
        crate::column_store::column_dot(self, p, q).expect("resident arena access is infallible")
    }

    /// Squared Euclidean norms `‖z̃_j‖²` of every column, in column order.
    ///
    /// Query services precompute this once so a query reduces to one sparse
    /// dot product: `‖z̃_p − z̃_q‖² = ‖z̃_p‖² + ‖z̃_q‖² − 2⟨z̃_p, z̃_q⟩`.
    pub fn column_norms_squared(&self) -> Vec<f64> {
        crate::column_store::column_norms_squared(self)
            .expect("resident arena access is infallible")
    }

    /// The effective-resistance kernel evaluated with precomputed column
    /// norms (see [`SparseApproximateInverse::column_norms_squared`]): one
    /// sparse dot product instead of a full two-column merge.
    ///
    /// # Panics
    ///
    /// Panics if either index is out of bounds or `norms_squared` is shorter
    /// than the factor order.
    pub fn column_distance_squared_with_norms(
        &self,
        p: usize,
        q: usize,
        norms_squared: &[f64],
    ) -> f64 {
        crate::column_store::column_distance_squared_with_norms(self, p, q, norms_squared)
            .expect("resident arena access is infallible")
    }

    /// Decomposes the inverse into its arena buffers and build metadata, for
    /// serialization: `(dim, col_ptr, rows, vals, stats, epsilon)`. The row
    /// buffer is at the arena's native `u32` width — exactly the bytes the
    /// v2 snapshot encoding writes.
    ///
    /// # Panics
    ///
    /// Panics in [`ValueMode::F32`] (snapshots are f64-canonical; widen
    /// with [`SparseApproximateInverse::with_value_mode`] first).
    #[allow(clippy::type_complexity)]
    pub fn into_arena(
        self,
    ) -> (
        usize,
        Vec<usize>,
        Vec<u32>,
        Vec<f64>,
        ApproxInverseStats,
        f64,
    ) {
        assert_eq!(
            self.mode,
            ValueMode::F64,
            "arena holds f32 values; convert with with_value_mode(ValueMode::F64) first"
        );
        (
            self.dim,
            self.col_ptr,
            self.rows,
            self.vals,
            self.stats,
            self.epsilon,
        )
    }

    /// Rebuilds an inverse directly from flat CSC arena buffers (the layout
    /// produced by [`SparseApproximateInverse::into_arena`], and what the
    /// `effres-io` snapshot reader assembles while streaming a file). The
    /// size-derived statistics (`nnz`, `max_column_nnz`) are recomputed; the
    /// build-history counters (`pruned_entries`, `small_columns_kept`) are
    /// taken from `stats`.
    ///
    /// # Errors
    ///
    /// Returns [`EffresError::IndexOverflow`] if `dim` exceeds the `u32`
    /// index space, and [`EffresError::InvalidConfig`] if `epsilon` is
    /// outside `[0, 1)`, the buffers are inconsistent (`col_ptr` not
    /// monotone from `0` to `rows.len()`, `rows`/`vals` length mismatch), a
    /// column's indices are not strictly increasing within bounds, or a
    /// column has an entry above the diagonal.
    pub fn from_arena(
        dim: usize,
        col_ptr: Vec<usize>,
        rows: Vec<u32>,
        vals: Vec<f64>,
        stats: ApproxInverseStats,
        epsilon: f64,
    ) -> Result<Self, EffresError> {
        ensure_u32_indexable(dim)?;
        if !(0.0..1.0).contains(&epsilon) {
            return Err(EffresError::InvalidConfig {
                name: "epsilon",
                message: "must lie in [0, 1)".to_string(),
            });
        }
        let invalid = |message: String| EffresError::InvalidConfig {
            name: "arena",
            message,
        };
        if col_ptr.len() != dim + 1 {
            return Err(invalid(format!(
                "col_ptr has {} entries for {dim} columns (need {})",
                col_ptr.len(),
                dim + 1
            )));
        }
        if rows.len() != vals.len() {
            return Err(invalid(format!(
                "rows/vals length mismatch: {} vs {}",
                rows.len(),
                vals.len()
            )));
        }
        if col_ptr[0] != 0 || col_ptr[dim] != rows.len() {
            return Err(invalid(format!(
                "col_ptr must span 0..={} (got {}..={})",
                rows.len(),
                col_ptr[0],
                col_ptr[dim]
            )));
        }
        let mut recomputed = ApproxInverseStats {
            pruned_entries: stats.pruned_entries,
            small_columns_kept: stats.small_columns_kept,
            ..ApproxInverseStats::default()
        };
        for j in 0..dim {
            let (lo, hi) = (col_ptr[j], col_ptr[j + 1]);
            if lo > hi || hi > rows.len() {
                return Err(invalid(format!(
                    "col_ptr is not monotone within 0..={} at column {j}",
                    rows.len()
                )));
            }
            let column = &rows[lo..hi];
            if !column.windows(2).all(|w| w[0] < w[1])
                || column.last().is_some_and(|&i| i as usize >= dim)
            {
                return Err(invalid(format!(
                    "column {j} indices are not strictly increasing within 0..{dim}"
                )));
            }
            // The query kernels rely on the lower-triangular support of the
            // columns (see `column_dot`), so the invariant is enforced here
            // rather than trusted from serialized input.
            if column.first().is_some_and(|&i| (i as usize) < j) {
                return Err(invalid(format!(
                    "column {j} has an entry above the diagonal; \
                     inverse columns must be supported on {j}.."
                )));
            }
            recomputed.nnz += hi - lo;
            recomputed.max_column_nnz = recomputed.max_column_nnz.max(hi - lo);
        }
        Ok(SparseApproximateInverse {
            dim,
            col_ptr,
            rows,
            vals,
            vals32: Vec::new(),
            mode: ValueMode::F64,
            narrowing_error: 0.0,
            stats: recomputed,
            epsilon,
        })
    }

    /// Rebuilds an inverse from per-column sparse vectors (the pre-arena
    /// representation; still the convenient entry point for hand-built
    /// columns). The columns are packed into a fresh arena and validated as
    /// in [`SparseApproximateInverse::from_arena`].
    ///
    /// # Errors
    ///
    /// Returns [`EffresError::InvalidConfig`] if `epsilon` is outside
    /// `[0, 1)`, any column's dimension differs from the column count, or a
    /// column has an entry above the diagonal.
    pub fn from_parts(
        columns: Vec<SparseVec>,
        stats: ApproxInverseStats,
        epsilon: f64,
    ) -> Result<Self, EffresError> {
        let n = columns.len();
        // Guard before any index is narrowed: `SparseVec` keeps indices
        // below its dimension, so once `n` fits in `u32` every cast does.
        ensure_u32_indexable(n)?;
        let total: usize = columns.iter().map(SparseVec::nnz).sum();
        let mut col_ptr = Vec::with_capacity(n + 1);
        let mut rows: Vec<u32> = Vec::with_capacity(total);
        let mut vals = Vec::with_capacity(total);
        col_ptr.push(0);
        for (j, column) in columns.iter().enumerate() {
            if column.dim() != n {
                return Err(EffresError::InvalidConfig {
                    name: "columns",
                    message: format!(
                        "column {j} has dimension {} but the inverse has {n} columns",
                        column.dim()
                    ),
                });
            }
            rows.extend(column.indices().iter().map(|&i| i as u32));
            vals.extend_from_slice(column.values());
            col_ptr.push(rows.len());
        }
        Self::from_arena(n, col_ptr, rows, vals, stats, epsilon)
    }
}

/// How the build received its factor: borrowed from the caller (the classic
/// entry points) or already shared behind an [`Arc`] (the pooled path, which
/// must hand `'static` references to pool workers).
enum FactorSource<'a> {
    Borrowed(&'a CscMatrix),
    Shared(Arc<CscMatrix>),
}

impl FactorSource<'_> {
    fn get(&self) -> &CscMatrix {
        match self {
            FactorSource::Borrowed(factor) => factor,
            FactorSource::Shared(factor) => factor,
        }
    }

    /// Upgrades to a shared handle, cloning the matrix only when it was
    /// borrowed.
    fn into_shared(self) -> Arc<CscMatrix> {
        match self {
            FactorSource::Borrowed(factor) => Arc::new(factor.clone()),
            FactorSource::Shared(factor) => factor,
        }
    }
}

/// Resolves a configured thread count (`0` = one per core).
fn resolve_threads(configured: usize) -> usize {
    if configured == 0 {
        std::thread::available_parallelism()
            .map(std::num::NonZeroUsize::get)
            .unwrap_or(1)
    } else {
        configured
    }
}

/// The column store used *during* construction: columns live at arbitrary
/// offsets of two flat buffers (completion order), with per-column
/// `start`/`len` tables for random access. [`SweepStore::into_csc`]
/// reorders it into the canonical column-ordered arena at the end, so the
/// final layout is independent of how the sweep was scheduled.
struct SweepStore {
    start: Vec<usize>,
    len: Vec<usize>,
    rows: Vec<u32>,
    vals: Vec<f64>,
}

impl SweepStore {
    fn with_order(n: usize) -> Self {
        SweepStore {
            start: vec![0; n],
            len: vec![0; n],
            rows: Vec::new(),
            vals: Vec::new(),
        }
    }

    fn rows_of(&self, i: usize) -> &[u32] {
        &self.rows[self.start[i]..self.start[i] + self.len[i]]
    }

    fn vals_of(&self, i: usize) -> &[f64] {
        &self.vals[self.start[i]..self.start[i] + self.len[i]]
    }

    /// Appends finished columns (given as `(column, nnz)` in the order their
    /// data lies in `rows`/`vals`) to the store.
    fn append(&mut self, cols: &[(usize, usize)], rows: &[u32], vals: &[f64]) {
        let mut off = self.rows.len();
        self.rows.extend_from_slice(rows);
        self.vals.extend_from_slice(vals);
        for &(j, nnz) in cols {
            self.start[j] = off;
            self.len[j] = nnz;
            off += nnz;
        }
    }

    /// Reorders the store into a canonical column-ordered CSC arena.
    fn into_csc(self, n: usize) -> (Vec<usize>, Vec<u32>, Vec<f64>) {
        let total: usize = self.len.iter().sum();
        let mut col_ptr = Vec::with_capacity(n + 1);
        let mut rows = Vec::with_capacity(total);
        let mut vals = Vec::with_capacity(total);
        col_ptr.push(0);
        for j in 0..n {
            rows.extend_from_slice(self.rows_of(j));
            vals.extend_from_slice(self.vals_of(j));
            col_ptr.push(rows.len());
        }
        (col_ptr, rows, vals)
    }
}

/// Assembles and prunes one column, appending it to `out_rows`/`out_vals`.
/// Returns the stored nonzero count. This is the *only* numeric kernel of
/// the build; the sequential and parallel sweeps both call it, which is what
/// makes them bit-identical.
#[allow(clippy::too_many_arguments)]
fn build_column(
    factor: &CscMatrix,
    j: usize,
    diag: f64,
    keep_limit: usize,
    epsilon: f64,
    store: &SweepStore,
    acc: &mut SparseAccumulator,
    scratch: &mut PruneScratch,
    out_rows: &mut Vec<u32>,
    out_vals: &mut Vec<f64>,
    stats: &mut ApproxInverseStats,
) -> usize {
    let rows = factor.column_rows(j);
    let vals = factor.column_values(j);
    // z*_j = (1 / L_jj) e_j + Σ (−L_ij / L_jj) z̃_i.
    acc.add(j, 1.0 / diag);
    for (pos, &i) in rows.iter().enumerate() {
        if i <= j {
            continue;
        }
        let scale = -vals[pos] / diag;
        if scale != 0.0 {
            acc.axpy_raw_u32(scale, store.rows_of(i), store.vals_of(i));
        }
    }
    let start = out_rows.len();
    let candidate_nnz = acc.take_append_u32(out_rows, out_vals);
    let nnz = if candidate_nnz <= keep_limit {
        stats.small_columns_kept += 1;
        candidate_nnz
    } else {
        let dropped = prune_tail(out_rows, out_vals, start, epsilon, scratch);
        stats.pruned_entries += dropped;
        candidate_nnz - dropped
    };
    stats.nnz += nnz;
    stats.max_column_nnz = stats.max_column_nnz.max(nnz);
    nnz
}

/// The reference backward sweep: one column at a time, last to first.
fn sequential_sweep(
    factor: &CscMatrix,
    diag: &[f64],
    keep_limit: usize,
    epsilon: f64,
) -> (SweepStore, ApproxInverseStats) {
    let n = factor.ncols();
    let mut store = SweepStore::with_order(n);
    let mut stats = ApproxInverseStats::default();
    let mut acc = SparseAccumulator::new(n);
    let mut scratch = PruneScratch::default();
    let mut tmp_rows: Vec<u32> = Vec::new();
    let mut tmp_vals = Vec::new();
    for j in (0..n).rev() {
        let nnz = build_column(
            factor,
            j,
            diag[j],
            keep_limit,
            epsilon,
            &store,
            &mut acc,
            &mut scratch,
            &mut tmp_rows,
            &mut tmp_vals,
            &mut stats,
        );
        store.append(&[(j, nnz)], &tmp_rows, &tmp_vals);
        tmp_rows.clear();
        tmp_vals.clear();
    }
    (store, stats)
}

/// Per-slot state of the level-scheduled sweep, reused across every level of
/// one build: the dense accumulator and pruning scratch plus the local
/// staging buffers a worker fills before publishing a chunk of columns.
struct SweepScratch {
    acc: SparseAccumulator,
    prune: PruneScratch,
    rows: Vec<u32>,
    vals: Vec<f64>,
    cols: Vec<(usize, usize)>,
    stats: ApproxInverseStats,
}

impl SweepScratch {
    fn new(n: usize) -> Self {
        SweepScratch {
            acc: SparseAccumulator::new(n),
            prune: PruneScratch::default(),
            rows: Vec::new(),
            vals: Vec::new(),
            cols: Vec::new(),
            stats: ApproxInverseStats::default(),
        }
    }
}

/// The level-scheduled parallel sweep on a persistent [`WorkerPool`]: each
/// level is partitioned into contiguous chunks and submitted as one round of
/// pool jobs; workers compute into per-slot scratch under a shared read
/// lock, publish under the write lock, and the blocking round submission is
/// the per-level synchronization point (replacing the old scoped threads and
/// barrier). Because [`build_column`] runs with the same inputs and
/// floating-point order regardless of chunking — and [`SweepStore::into_csc`]
/// canonicalizes the arena afterwards — the result is bit-identical to the
/// sequential sweep for any pool size.
fn parallel_sweep(
    factor: Arc<CscMatrix>,
    diag: Vec<f64>,
    keep_limit: usize,
    epsilon: f64,
    schedule: LevelSchedule,
    threads: usize,
    pool: &WorkerPool,
) -> (SweepStore, ApproxInverseStats) {
    let n = factor.ncols();
    let diag: Arc<[f64]> = diag.into();
    let schedule = Arc::new(schedule);
    let store = Arc::new(RwLock::new(SweepStore::with_order(n)));
    let scratches: Arc<Vec<Mutex<SweepScratch>>> = Arc::new(
        (0..threads)
            .map(|_| Mutex::new(SweepScratch::new(n)))
            .collect(),
    );
    for li in 0..schedule.num_levels() {
        let level_len = schedule.level(li).len();
        let chunk = level_len.div_ceil(threads);
        let jobs: Vec<_> = (0..threads)
            .filter_map(|t| {
                let lo = (t * chunk).min(level_len);
                let hi = ((t + 1) * chunk).min(level_len);
                if lo >= hi {
                    return None;
                }
                let factor = Arc::clone(&factor);
                let diag = Arc::clone(&diag);
                let schedule = Arc::clone(&schedule);
                let store = Arc::clone(&store);
                let scratches = Arc::clone(&scratches);
                Some(move || {
                    // Chunk `t` always uses scratch slot `t`; within one
                    // round the chunks are disjoint, so the lock is
                    // uncontended and only serializes reuse across rounds.
                    let mut slot = scratches[t].lock().expect("sweep scratch lock poisoned");
                    let scratch = &mut *slot;
                    {
                        let read = store.read().expect("column store lock poisoned");
                        for &j in &schedule.level(li)[lo..hi] {
                            let nnz = build_column(
                                &factor,
                                j,
                                diag[j],
                                keep_limit,
                                epsilon,
                                &read,
                                &mut scratch.acc,
                                &mut scratch.prune,
                                &mut scratch.rows,
                                &mut scratch.vals,
                                &mut scratch.stats,
                            );
                            scratch.cols.push((j, nnz));
                        }
                    }
                    let mut write = store.write().expect("column store lock poisoned");
                    write.append(&scratch.cols, &scratch.rows, &scratch.vals);
                    scratch.cols.clear();
                    scratch.rows.clear();
                    scratch.vals.clear();
                })
            })
            .collect();
        // One pool round per level: `run` returns only when every chunk of
        // this level is published, so the next level down reads a complete
        // store.
        pool.run(jobs);
    }
    let mut stats = ApproxInverseStats::default();
    for slot in scratches.iter() {
        let s = slot.lock().expect("sweep scratch lock poisoned").stats;
        stats.nnz += s.nnz;
        stats.max_column_nnz = stats.max_column_nnz.max(s.max_column_nnz);
        stats.pruned_entries += s.pruned_entries;
        stats.small_columns_kept += s.small_columns_kept;
    }
    drop(scratches);
    let store = match Arc::try_unwrap(store) {
        Ok(store) => store.into_inner().expect("column store lock poisoned"),
        // Every job of every round has completed (pool.run blocks), so no
        // other handle can be alive.
        Err(_) => unreachable!("a sweep job outlived its round"),
    };
    (store, stats)
}

/// Reusable workspace of [`prune_tail`].
#[derive(Default)]
struct PruneScratch {
    mags: Vec<f64>,
    order: Vec<u32>,
    dropped: Vec<bool>,
}

/// Applies the `trunc_k` pruning rule (Eq. (10)) to the candidate column
/// occupying `rows[start..]` / `vals[start..]`, compacting the buffers in
/// place and returning the number of dropped entries.
///
/// The rule drops the largest set of smallest-magnitude entries whose
/// absolute values sum to at most `epsilon * ‖x‖₁` (ties broken towards
/// dropping larger indices, so the result is deterministic). The dropped
/// count is found by *partial selection* instead of a full sort: the `d`
/// smallest magnitudes are exposed through exponentially growing
/// `select_nth_unstable` prefixes and only those prefixes are sorted, so
/// pruning a `k`-entry column costs `O(k + d log d)` expected for `d`
/// dropped entries instead of the `O(k log k)` of sorting every magnitude.
fn prune_tail(
    rows: &mut Vec<u32>,
    vals: &mut Vec<f64>,
    start: usize,
    epsilon: f64,
    scratch: &mut PruneScratch,
) -> usize {
    let k = rows.len() - start;
    if k == 0 || epsilon == 0.0 {
        return 0;
    }
    let tail = &vals[start..];
    let norm1: f64 = tail.iter().map(|v| v.abs()).sum();
    if norm1 == 0.0 {
        return 0;
    }
    let budget = epsilon * norm1;

    // Phase 1 — count the dropped entries: scan magnitudes in ascending
    // order, accumulating while the running sum stays within the budget.
    // Selection exposes each next chunk of smallest magnitudes without
    // sorting the (much larger) kept remainder; chunks double so columns
    // that drop little stop after inspecting only a handful of entries.
    scratch.mags.clear();
    scratch.mags.extend(tail.iter().map(|v| v.abs()));
    let mags = &mut scratch.mags[..];
    let mut dropped = 0usize;
    let mut acc = 0.0f64;
    let mut lo = 0usize;
    let mut chunk = 8usize;
    'count: while lo < k {
        let hi = (lo + chunk).min(k);
        if hi < k {
            mags[lo..].select_nth_unstable_by(hi - lo - 1, |a, b| a.total_cmp(b));
        }
        mags[lo..hi].sort_unstable_by(|a, b| a.total_cmp(b));
        for idx in lo..hi {
            if acc + mags[idx] <= budget {
                acc += mags[idx];
                dropped += 1;
            } else {
                break 'count;
            }
        }
        lo = hi;
        chunk *= 2;
    }
    if dropped == 0 {
        return 0;
    }
    // `epsilon < 1` makes `dropped == k` all but impossible, but an epsilon
    // one ulp below 1 can round the budget up to the full column sum; the
    // phases below handle that fine (the column empties), so it is not
    // asserted away — a panicking build worker would deadlock its siblings
    // at the level barrier.

    // Phase 2 — identify *which* entries to drop: the `dropped` smallest
    // under (magnitude ascending, index descending), one more selection.
    let tail = &vals[start..];
    scratch.order.clear();
    scratch.order.extend(0..k as u32);
    scratch.order.select_nth_unstable_by(dropped - 1, |&a, &b| {
        tail[a as usize]
            .abs()
            .total_cmp(&tail[b as usize].abs())
            .then(b.cmp(&a))
    });
    scratch.dropped.clear();
    scratch.dropped.resize(k, false);
    for &p in &scratch.order[..dropped] {
        scratch.dropped[p as usize] = true;
    }

    // Phase 3 — compact in place; the kept entries stay in index order.
    let mut w = start;
    for r in 0..k {
        if !scratch.dropped[r] {
            rows[w] = rows[start + r];
            vals[w] = vals[start + r];
            w += 1;
        }
    }
    rows.truncate(w);
    vals.truncate(w);
    dropped
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::depth::FilledGraphDepth;
    use effres_sparse::cholesky::CholeskyFactor;
    use effres_sparse::trisolve;
    use effres_sparse::TripletMatrix;

    fn grid_laplacian(rows: usize, cols: usize, shift: f64) -> CscMatrix {
        let idx = |r: usize, c: usize| r * cols + c;
        let n = rows * cols;
        let mut t = TripletMatrix::new(n, n);
        for r in 0..rows {
            for c in 0..cols {
                if c + 1 < cols {
                    t.add_laplacian_edge(idx(r, c), idx(r, c + 1), 1.0);
                }
                if r + 1 < rows {
                    t.add_laplacian_edge(idx(r, c), idx(r + 1, c), 1.0);
                }
            }
        }
        t.push(0, 0, shift);
        t.to_csc()
    }

    /// Block-diagonal matrix of `blocks` independent path Laplacians: its
    /// factor's level schedule is wide (one column per block per level), so
    /// the parallel sweep is exercised even with the width heuristic active.
    fn block_paths_laplacian(blocks: usize, len: usize) -> CscMatrix {
        let n = blocks * len;
        let mut t = TripletMatrix::new(n, n);
        for b in 0..blocks {
            let base = b * len;
            for i in 0..len - 1 {
                t.add_laplacian_edge(base + i, base + i + 1, 1.0 + b as f64 * 0.01);
            }
            t.push(base, base, 1e-2);
        }
        t.to_csc()
    }

    /// The old `SparseVec`-based pruning entry point, kept as a test shim
    /// over [`prune_tail`].
    fn prune_column(x: &SparseVec, epsilon: f64) -> (SparseVec, usize) {
        let mut rows: Vec<u32> = x.indices().iter().map(|&i| i as u32).collect();
        let mut vals = x.values().to_vec();
        let mut scratch = PruneScratch::default();
        let dropped = prune_tail(&mut rows, &mut vals, 0, epsilon, &mut scratch);
        let rows = rows.into_iter().map(|i| i as usize).collect();
        (SparseVec::from_sorted(x.dim(), rows, vals), dropped)
    }

    #[test]
    fn zero_epsilon_reproduces_exact_inverse_columns() {
        let a = grid_laplacian(4, 4, 1e-3);
        let chol = CholeskyFactor::factor(&a).expect("spd");
        let l = chol.factor_l();
        let z = SparseApproximateInverse::from_factor(l, 0.0, 0).expect("valid");
        for j in 0..a.ncols() {
            let exact = trisolve::solve_lower_unit_sparse(l, j);
            let diff = z.column(j).diff_norm1(&exact);
            assert!(diff < 1e-12, "column {j}: diff {diff}");
        }
    }

    #[test]
    fn columns_are_nonnegative_for_laplacian_factor() {
        // Lemma 1: Z = L^{-1} is nonnegative for Laplacian Cholesky factors,
        // and pruning only removes entries, so Z̃ must stay nonnegative.
        let a = grid_laplacian(5, 5, 1e-4);
        let chol = CholeskyFactor::factor(&a).expect("spd");
        let z = SparseApproximateInverse::from_factor(chol.factor_l(), 1e-3, 4).expect("valid");
        for j in 0..a.ncols() {
            assert!(z.column(j).values().iter().all(|&v| v >= 0.0));
        }
    }

    #[test]
    fn theorem1_error_bound_holds() {
        // ‖z_p − z̃_p‖₁ / ‖z_p‖₁ ≤ depth(p) · ε for every column.
        let a = grid_laplacian(6, 6, 1e-3);
        let chol = CholeskyFactor::factor(&a).expect("spd");
        let l = chol.factor_l();
        let epsilon = 1e-2;
        let z = SparseApproximateInverse::from_factor(l, epsilon, 0).expect("valid");
        let depth = FilledGraphDepth::from_factor(l);
        for p in 0..a.ncols() {
            let exact = trisolve::solve_lower_unit_sparse(l, p);
            let err = z.column(p).diff_norm1(&exact) / exact.norm1();
            let bound = depth.depth(p) as f64 * epsilon + 1e-12;
            assert!(
                err <= bound,
                "column {p}: error {err} exceeds bound {bound}"
            );
        }
    }

    #[test]
    fn pruning_reduces_nnz_monotonically_in_epsilon() {
        let a = grid_laplacian(8, 8, 1e-3);
        let chol = CholeskyFactor::factor(&a).expect("spd");
        let l = chol.factor_l();
        let tight = SparseApproximateInverse::from_factor(l, 1e-4, 0).expect("valid");
        let loose = SparseApproximateInverse::from_factor(l, 1e-1, 0).expect("valid");
        assert!(loose.nnz() < tight.nnz());
        assert!(loose.stats().pruned_entries > 0);
        assert!(loose.nnz_ratio() < tight.nnz_ratio());
    }

    #[test]
    fn small_columns_are_kept_exactly() {
        // A diagonal factor has single-entry columns: no pruning can occur.
        let mut t = TripletMatrix::new(4, 4);
        for j in 0..4 {
            t.push(j, j, 2.0);
        }
        let z = SparseApproximateInverse::from_factor(&t.to_csc(), 0.5, 4).expect("valid");
        assert_eq!(z.stats().small_columns_kept, 4);
        for j in 0..4 {
            assert_eq!(z.column(j).nnz(), 1);
            assert!((z.column(j).get(j) - 0.5).abs() < 1e-15);
        }
    }

    #[test]
    fn column_distance_matches_effective_resistance_on_path() {
        // For a path graph grounded at node 0, the effective resistance
        // between adjacent nodes i and i+1 is 1 (unit conductances), and
        // Z = L^{-1} reproduces it through ‖z_p − z_q‖².
        let n = 6;
        let mut t = TripletMatrix::new(n, n);
        for i in 0..n - 1 {
            t.add_laplacian_edge(i, i + 1, 1.0);
        }
        t.push(0, 0, 1e3); // strong ground so the matrix is well conditioned
        let a = t.to_csc();
        let chol = CholeskyFactor::factor(&a).expect("spd");
        let z = SparseApproximateInverse::from_factor(chol.factor_l(), 0.0, 0).expect("valid");
        // R(2, 3) should be close to 1 (exact up to the 1e-3 ground leakage).
        let r = z.column_distance_squared(2, 3);
        assert!((r - 1.0).abs() < 1e-2, "R = {r}");
    }

    #[test]
    fn column_dot_matches_full_sparse_dot() {
        let a = grid_laplacian(6, 6, 1e-3);
        let chol = CholeskyFactor::factor(&a).expect("spd");
        let z = SparseApproximateInverse::from_factor(chol.factor_l(), 1e-3, 2).expect("valid");
        let norms = z.column_norms_squared();
        for &(p, q) in &[(0, 35), (3, 3), (10, 20), (34, 35), (0, 1)] {
            let fast = z.column_dot(p, q);
            let full = z
                .column(p)
                .to_sparse_vec()
                .dot(&z.column(q).to_sparse_vec());
            assert!((fast - full).abs() < 1e-12, "({p},{q}): {fast} vs {full}");
            let d_fast = z.column_distance_squared_with_norms(p, q, &norms);
            let d_full = z.column_distance_squared(p, q);
            assert!(
                (d_fast - d_full).abs() <= 1e-9 * d_full.max(1.0),
                "({p},{q}): {d_fast} vs {d_full}"
            );
        }
    }

    #[test]
    fn parallel_build_is_bit_identical_to_sequential() {
        // Wide schedule (many independent chains) so the parallel sweep
        // really runs, plus a grid whose schedule exercises several levels.
        for a in [block_paths_laplacian(64, 6), grid_laplacian(12, 12, 1e-3)] {
            let chol = CholeskyFactor::factor(&a).expect("spd");
            let l = chol.factor_l();
            for epsilon in [0.0, 1e-4, 1e-2, 0.3] {
                let seq = SparseApproximateInverse::from_factor_with(
                    l,
                    epsilon,
                    2,
                    &BuildOptions::sequential(),
                )
                .expect("sequential");
                for threads in [2usize, 3, 4, 7] {
                    let par = SparseApproximateInverse::from_factor_with(
                        l,
                        epsilon,
                        2,
                        &BuildOptions {
                            threads,
                            parallel_threshold: 1,
                        },
                    )
                    .expect("parallel");
                    // Bitwise identity of the full arena, not approximate
                    // agreement: same pointers, same rows, same value bits.
                    assert_eq!(seq.col_ptr(), par.col_ptr(), "eps {epsilon} x{threads}");
                    assert_eq!(seq.arena_rows(), par.arena_rows());
                    let same_bits = seq
                        .arena_values()
                        .iter()
                        .zip(par.arena_values())
                        .all(|(a, b)| a.to_bits() == b.to_bits());
                    assert!(same_bits, "eps {epsilon} x{threads}: value bits differ");
                    assert_eq!(seq.stats(), par.stats());
                }
            }
        }
    }

    #[test]
    fn narrow_schedules_fall_back_to_the_sequential_sweep() {
        // A single path is a pure dependency chain: the width heuristic must
        // reject it, and the result must still be correct.
        let mut t = TripletMatrix::new(64, 64);
        for i in 0..63 {
            t.add_laplacian_edge(i, i + 1, 1.0);
        }
        t.push(0, 0, 1e-2);
        let a = t.to_csc();
        let l = CholeskyFactor::factor(&a).expect("spd");
        let seq = SparseApproximateInverse::from_factor_with(
            l.factor_l(),
            1e-3,
            2,
            &BuildOptions::sequential(),
        )
        .expect("sequential");
        let par = SparseApproximateInverse::from_factor_with(
            l.factor_l(),
            1e-3,
            2,
            &BuildOptions {
                threads: 8,
                parallel_threshold: 1,
            },
        )
        .expect("parallel request");
        assert_eq!(seq, par);
    }

    #[test]
    fn arena_layout_is_consistent() {
        let a = grid_laplacian(7, 7, 1e-3);
        let chol = CholeskyFactor::factor(&a).expect("spd");
        let z = SparseApproximateInverse::from_factor(chol.factor_l(), 1e-3, 2).expect("valid");
        let n = z.order();
        assert_eq!(z.col_ptr().len(), n + 1);
        assert_eq!(z.col_ptr()[0], 0);
        assert_eq!(z.col_ptr()[n], z.arena_rows().len());
        assert_eq!(z.arena_rows().len(), z.arena_values().len());
        assert_eq!(z.arena_rows().len(), z.nnz());
        for j in 0..n {
            let column = z.column(j);
            assert!(column.indices().windows(2).all(|w| w[0] < w[1]));
            assert!(column.indices().first().is_some_and(|&i| i as usize >= j));
        }
        // Round-trip through the arena parts.
        let clone = z.clone();
        let (dim, col_ptr, rows, vals, stats, epsilon) = clone.into_arena();
        let rebuilt =
            SparseApproximateInverse::from_arena(dim, col_ptr, rows, vals, stats, epsilon)
                .expect("valid arena");
        assert_eq!(rebuilt, z);
    }

    #[test]
    #[allow(clippy::type_complexity)]
    fn from_arena_rejects_inconsistent_buffers() {
        let ok = |f: &dyn Fn(&mut Vec<usize>, &mut Vec<u32>, &mut Vec<f64>)| {
            let mut col_ptr = vec![0usize, 1, 3];
            let mut rows = vec![0u32, 0, 1];
            let mut vals = vec![1.0, 0.5, 1.0];
            f(&mut col_ptr, &mut rows, &mut vals);
            SparseApproximateInverse::from_arena(
                2,
                col_ptr,
                rows,
                vals,
                ApproxInverseStats::default(),
                0.0,
            )
        };
        // The unmodified buffers describe column 1 with an above-diagonal
        // entry (row 0 < column 1): rejected.
        assert!(ok(&|_, _, _| {}).is_err());
        // Fixing the offending row index makes it valid.
        assert!(ok(&|_, rows, _| rows[1] = 1).is_err()); // duplicate row 1
        assert!(ok(&|cp, rows, vals| {
            *cp = vec![0, 1, 2];
            *rows = vec![0, 1];
            *vals = vec![1.0, 1.0];
        })
        .is_ok());
        // col_ptr length / span mismatches.
        assert!(ok(&|cp, _, _| cp.truncate(2)).is_err());
        assert!(ok(&|cp, _, _| cp[2] = 2).is_err());
        // rows/vals length mismatch.
        assert!(ok(&|_, _, vals| vals.truncate(2)).is_err());
        // Non-monotone col_ptr whose intermediate pointer overshoots the
        // buffer: must be a clean error, not a slice-range panic, even
        // though the endpoints look consistent.
        assert!(SparseApproximateInverse::from_arena(
            2,
            vec![0, 5, 3],
            vec![0, 1, 1],
            vec![1.0, 0.5, 1.0],
            ApproxInverseStats::default(),
            0.0,
        )
        .is_err());
    }

    #[test]
    #[cfg(target_pointer_width = "64")]
    fn overflow_guard_rejects_orders_beyond_u32() {
        assert!(ensure_u32_indexable(0).is_ok());
        assert!(ensure_u32_indexable(144).is_ok());
        // The largest order the u32 arena can index is fine...
        assert!(ensure_u32_indexable(u32::MAX as usize).is_ok());
        // ...one past it is a typed error, not a truncated index.
        let too_big = u32::MAX as usize + 1;
        assert!(matches!(
            ensure_u32_indexable(too_big),
            Err(EffresError::IndexOverflow { node_count }) if node_count == too_big
        ));
        // Every arena constructor guards before touching a buffer, so the
        // mock needs no multi-gigabyte graph.
        assert!(matches!(
            SparseApproximateInverse::from_arena(
                too_big,
                Vec::new(),
                Vec::new(),
                Vec::new(),
                ApproxInverseStats::default(),
                0.0,
            ),
            Err(EffresError::IndexOverflow { .. })
        ));
        assert!(ensure_u32_indexable(too_big)
            .unwrap_err()
            .to_string()
            .contains("u32 index space"));
    }

    #[test]
    fn footprint_reports_narrowed_index_bytes() {
        let a = grid_laplacian(6, 6, 1e-3);
        let chol = CholeskyFactor::factor(&a).expect("spd");
        let z = SparseApproximateInverse::from_factor(chol.factor_l(), 1e-3, 2).expect("valid");
        let f = z.footprint();
        assert_eq!(f.index_width_bytes, 4);
        assert_eq!(f.col_ptr_bytes, (z.order() + 1) * 8);
        assert_eq!(f.rows_bytes, z.nnz() * 4);
        assert_eq!(f.vals_bytes, z.nnz() * 8);
        assert_eq!(
            f.total_bytes(),
            f.col_ptr_bytes + f.rows_bytes + f.vals_bytes
        );
    }

    #[test]
    fn shared_pool_build_is_bit_identical_and_reusable() {
        // One pool, several builds: the pooled entry point must agree with
        // the sequential reference bit-for-bit, and the pool must survive
        // for the next build (it is the same set of workers throughout).
        let pool = effres_sparse::WorkerPool::new(3);
        for a in [block_paths_laplacian(48, 5), grid_laplacian(10, 10, 1e-3)] {
            let chol = CholeskyFactor::factor(&a).expect("spd");
            let l = chol.factor_l();
            let seq =
                SparseApproximateInverse::from_factor_with(l, 1e-3, 2, &BuildOptions::sequential())
                    .expect("sequential");
            let pooled = SparseApproximateInverse::from_factor_shared(
                Arc::new(l.clone()),
                1e-3,
                2,
                &BuildOptions {
                    threads: 0, // resolve from the shared pool
                    parallel_threshold: 1,
                },
                Some(&pool),
            )
            .expect("pooled");
            assert_eq!(seq, pooled);
        }
    }

    #[test]
    fn from_parts_rejects_entries_above_the_diagonal() {
        let columns = vec![
            SparseVec::from_sorted(2, vec![0], vec![1.0]),
            SparseVec::from_sorted(2, vec![0, 1], vec![0.5, 1.0]), // 0 < 1: invalid
        ];
        let stats = ApproxInverseStats::default();
        assert!(SparseApproximateInverse::from_parts(columns, stats, 0.0).is_err());
    }

    #[test]
    fn invalid_inputs_rejected() {
        let a = grid_laplacian(2, 2, 1.0);
        let chol = CholeskyFactor::factor(&a).expect("spd");
        assert!(SparseApproximateInverse::from_factor(chol.factor_l(), 1.0, 0).is_err());
        assert!(SparseApproximateInverse::from_factor(chol.factor_l(), -0.1, 0).is_err());
        let rect = CscMatrix::zeros(2, 3);
        assert!(SparseApproximateInverse::from_factor(&rect, 0.1, 0).is_err());
        // Missing diagonal.
        let mut t = TripletMatrix::new(2, 2);
        t.push(0, 0, 1.0);
        t.push(1, 0, -0.5);
        assert!(SparseApproximateInverse::from_factor(&t.to_csc(), 0.1, 0).is_err());
    }

    #[test]
    fn prune_column_respects_budget() {
        let x = SparseVec::from_sorted(6, vec![0, 1, 2, 3, 4], vec![10.0, 0.1, 0.2, 5.0, 0.05]);
        let (pruned, dropped) = prune_column(&x, 0.03);
        // Budget = 0.03 * 15.35 ≈ 0.46: can drop 0.05 + 0.1 + 0.2 = 0.35 but
        // not also 5.0.
        assert_eq!(dropped, 3);
        assert_eq!(pruned.nnz(), 2);
        assert!(pruned.get(0) == 10.0 && pruned.get(3) == 5.0);
        let (unchanged, zero_dropped) = prune_column(&x, 0.0);
        assert_eq!(zero_dropped, 0);
        assert_eq!(unchanged.nnz(), 5);
    }

    #[test]
    fn prune_selection_matches_full_sort_reference() {
        // Deterministic pseudo-random columns, including heavy ties: the
        // partial-selection pruning must agree entry-for-entry with the
        // straightforward sort-everything reference.
        let reference = |x: &SparseVec, epsilon: f64| -> (Vec<usize>, usize) {
            let mut mags: Vec<f64> = x.values().iter().map(|v| v.abs()).collect();
            mags.sort_unstable_by(|a, b| a.total_cmp(b));
            let budget = epsilon * x.norm1();
            let mut acc = 0.0;
            let mut dropped = 0;
            for &m in &mags {
                if acc + m <= budget {
                    acc += m;
                    dropped += 1;
                } else {
                    break;
                }
            }
            let keep = x.nnz() - dropped;
            (x.truncate_to(keep).indices().to_vec(), dropped)
        };
        let mut state = 0x9E37_79B9_7F4A_7C15u64;
        let mut next = move || {
            state ^= state >> 12;
            state ^= state << 25;
            state ^= state >> 27;
            state.wrapping_mul(0x2545_F491_4F6C_DD1D)
        };
        for case in 0..200 {
            let k = 1 + (next() % 60) as usize;
            let dim = k + (next() % 10) as usize;
            let mut indices: Vec<usize> = (0..dim).collect();
            // Keep the first k of a shuffled index set, sorted.
            for i in (1..dim).rev() {
                indices.swap(i, (next() % (i as u64 + 1)) as usize);
            }
            indices.truncate(k);
            indices.sort_unstable();
            let values: Vec<f64> = (0..k)
                .map(|_| ((next() % 16) as f64) / 4.0 + 0.25) // many ties
                .collect();
            let x = SparseVec::from_sorted(dim, indices, values);
            let epsilon = ((next() % 90) as f64 + 1.0) / 100.0;
            let (expected_indices, expected_dropped) = reference(&x, epsilon);
            let (pruned, dropped) = prune_column(&x, epsilon);
            assert_eq!(dropped, expected_dropped, "case {case}");
            assert_eq!(pruned.indices(), &expected_indices[..], "case {case}");
        }
    }

    #[test]
    fn value_mode_conversion_halves_bytes_and_bounds_error() {
        let a = grid_laplacian(6, 6, 1e-3);
        let chol = CholeskyFactor::factor(&a).expect("spd");
        let z = SparseApproximateInverse::from_factor(chol.factor_l(), 0.02, 8).unwrap();
        assert_eq!(z.value_mode(), ValueMode::F64);
        assert_eq!(z.narrowing_error(), 0.0);
        let f64_footprint = z.footprint();

        let narrow = z.clone().with_value_mode(ValueMode::F32).unwrap();
        assert_eq!(narrow.value_mode(), ValueMode::F32);
        assert_eq!(narrow.nnz(), z.nnz());
        assert_eq!(narrow.footprint().vals_bytes * 2, f64_footprint.vals_bytes);
        // IEEE round-to-nearest: at most half an ulp, i.e. 2⁻²⁴ relative.
        assert!(narrow.narrowing_error() <= 2.0_f64.powi(-24));
        for j in 0..z.order() {
            let (wide, thin) = (z.column(j), narrow.column(j));
            assert_eq!(wide.indices(), thin.indices());
            assert_eq!(thin.entry_bytes(), 8);
            assert_eq!(wide.entry_bytes(), 12);
            for ((_, a), (_, b)) in wide.iter().zip(thin.iter()) {
                let bound = a.abs() * 2.0_f64.powi(-24);
                assert!((a - b).abs() <= bound, "column {j}: {a} vs {b}");
            }
        }

        // Widening back is lossless on the narrowed values and keeps the
        // error record.
        let widened = narrow.clone().with_value_mode(ValueMode::F64).unwrap();
        assert_eq!(widened.value_mode(), ValueMode::F64);
        assert_eq!(widened.narrowing_error(), narrow.narrowing_error());
        assert_eq!(widened.footprint().vals_bytes, f64_footprint.vals_bytes);
        for j in 0..z.order() {
            let (a, b) = (widened.column(j), narrow.column(j));
            for ((_, x), (_, y)) in a.iter().zip(b.iter()) {
                assert_eq!(x.to_bits(), y.to_bits());
            }
        }
    }

    #[test]
    #[should_panic(expected = "arena holds f32 values")]
    fn arena_values_rejects_narrowed_arenas() {
        let a = grid_laplacian(3, 3, 1e-3);
        let chol = CholeskyFactor::factor(&a).expect("spd");
        let z = SparseApproximateInverse::from_factor(chol.factor_l(), 0.1, 4)
            .unwrap()
            .with_value_mode(ValueMode::F32)
            .unwrap();
        let _ = z.arena_values();
    }
}
