//! Effective resistances on large graphs via a sparse approximate inverse of
//! the Cholesky factor.
//!
//! This crate implements the DATE 2023 paper *"Computing Effective
//! Resistances on Large Graphs Based on Approximate Inverse of Cholesky
//! Factor"* (Liu & Yu):
//!
//! * [`approx_inverse`] — Alg. 2: a sparse approximation `Z̃ ≈ L⁻¹` of the
//!   inverse of a (possibly incomplete) Cholesky factor, built column by
//!   column with 1-norm controlled pruning;
//! * [`column_store`] — the [`column_store::ColumnStore`]
//!   abstraction the query kernels are generic over, so the same kernels
//!   serve the resident CSC arena and out-of-core (paged, disk-backed)
//!   column stores;
//! * [`depth`] — the filled-graph depth of Eq. (11), which bounds the column
//!   error (Theorem 1);
//! * [`estimator`] — Alg. 3: the end-to-end effective-resistance engine
//!   (incomplete Cholesky → approximate inverse → `R(p,q) ≈ ‖z̃_p − z̃_q‖²`);
//! * [`exact`] — exact effective resistances through a full sparse Cholesky
//!   factorization (the accuracy reference of the experiments);
//! * [`random_projection`] — the random-projection baseline of
//!   Mavroforakis et al. (WWW'15), the paper's main competitor;
//! * [`stats`] — error metrics used to produce the tables of the paper;
//! * [`centrality`] — spanning-edge centrality and current-flow closeness,
//!   the graph-mining applications the paper's introduction motivates.
//!
//! # Quick start
//!
//! ```
//! use effres::prelude::*;
//! use effres_graph::generators;
//!
//! # fn main() -> Result<(), effres::EffresError> {
//! let graph = generators::grid_2d(16, 16, 1.0, 2.0, 7)?;
//! let estimator = EffectiveResistanceEstimator::build(&graph, &EffresConfig::default())?;
//! let exact = ExactEffectiveResistance::build(&graph, 1.0)?;
//! // Query the effective resistance across one edge in the middle of the mesh.
//! let approx = estimator.query(100, 101)?;
//! let truth = exact.query(100, 101)?;
//! assert!((approx - truth).abs() / truth < 0.05);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod approx_inverse;
pub mod centrality;
pub mod column_store;
pub mod config;
pub mod depth;
pub mod error;
pub mod estimator;
pub mod exact;
pub mod random_projection;
pub mod stats;

pub use approx_inverse::{SparseApproximateInverse, ValueMode};
pub use config::{BuildOptions, EffresConfig, Ordering};
pub use effres_sparse::WorkerPool;
pub use error::{BusyReason, CancelReason, EffresError};
pub use estimator::EffectiveResistanceEstimator;
pub use exact::ExactEffectiveResistance;
pub use random_projection::{RandomProjectionEstimator, RandomProjectionOptions, SolverKind};

pub use column_store::{ColumnStore, HubScratch, KernelStats};

/// Convenient glob import of the main types.
pub mod prelude {
    pub use crate::approx_inverse::{SparseApproximateInverse, ValueMode};
    pub use crate::column_store::{ColumnStore, HubScratch, KernelStats};
    pub use crate::config::{BuildOptions, EffresConfig, Ordering};
    pub use crate::error::{BusyReason, CancelReason, EffresError};
    pub use crate::estimator::EffectiveResistanceEstimator;
    pub use crate::exact::ExactEffectiveResistance;
    pub use crate::random_projection::{
        RandomProjectionEstimator, RandomProjectionOptions, SolverKind,
    };
    pub use crate::WorkerPool;
}
