//! Random-projection effective-resistance baseline (WWW'15, reference \[1\]).
//!
//! Spielman–Srivastava observed that `R(p, q) = ‖W^{1/2} B L⁺ (e_p − e_q)‖²`
//! (Eq. (4) of the paper), i.e. the effective resistance is a squared
//! Euclidean distance between columns of the `m × n` matrix `W^{1/2} B L⁺`.
//! By the Johnson–Lindenstrauss lemma those columns can be projected onto
//! `k = O(log m)` dimensions: with `Q ∈ R^{k×m}` a random ±1/√k matrix,
//!
//! ```text
//! R(p, q) ≈ ‖Q W^{1/2} B L⁺ e_p − Q W^{1/2} B L⁺ e_q‖².
//! ```
//!
//! Constructing `Y = Q W^{1/2} B L⁺` requires `k` Laplacian solves; each query
//! is then an `O(k)` distance computation. The original implementation uses a
//! combinatorial-multigrid solver; this reproduction offers either a direct
//! sparse Cholesky solve or incomplete-Cholesky-preconditioned conjugate
//! gradients (the substitution is documented in `DESIGN.md`).

use crate::error::EffresError;
use effres_graph::laplacian::{edge_weights, grounded_laplacian, incidence_matrix};
use effres_graph::Graph;
use effres_sparse::cg::{pcg, CgOptions};
use effres_sparse::cholesky::CholeskyFactor;
use effres_sparse::ichol::IncompleteCholesky;
use effres_sparse::{amd, Permutation};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Which Laplacian solver backs the `k` projection solves.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub enum SolverKind {
    /// Full sparse Cholesky factorization (factor once, solve `k` times).
    #[default]
    DirectCholesky,
    /// Incomplete-Cholesky-preconditioned conjugate gradients with the given
    /// relative residual tolerance.
    PreconditionedCg {
        /// Relative residual tolerance of each solve.
        tolerance: f64,
    },
}

/// Options of the random-projection estimator.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RandomProjectionOptions {
    /// Multiplier `c` in `k = ceil(c · ln m)` projected dimensions.
    pub dimension_multiplier: f64,
    /// Minimum number of projected dimensions.
    pub min_dimensions: usize,
    /// Laplacian solver used for the `k` solves.
    pub solver: SolverKind,
    /// Conductance of the implicit ground edge per connected component.
    pub ground_conductance: f64,
    /// Seed of the random projection.
    pub seed: u64,
}

impl Default for RandomProjectionOptions {
    fn default() -> Self {
        RandomProjectionOptions {
            // The Johnson–Lindenstrauss guarantee needs k = O(log m / ε²)
            // dimensions; the WWW'15 implementation the paper benchmarks
            // against targets ε ≈ 0.1–0.3, i.e. hundreds of solves. A
            // multiplier of 32 reproduces that accuracy/effort trade-off.
            dimension_multiplier: 32.0,
            min_dimensions: 64,
            solver: SolverKind::default(),
            ground_conductance: 1.0,
            seed: 1,
        }
    }
}

/// The random-projection effective-resistance estimator of WWW'15.
#[derive(Debug, Clone)]
pub struct RandomProjectionEstimator {
    /// `k × n` projected embedding, stored row-major (`k` rows of length `n`).
    embedding: Vec<Vec<f64>>,
    node_count: usize,
    dimensions: usize,
}

impl RandomProjectionEstimator {
    /// Builds the estimator: draws `Q`, forms `Q W^{1/2} B` and solves `k`
    /// Laplacian systems.
    ///
    /// # Errors
    ///
    /// Returns [`EffresError::InvalidConfig`] for invalid options and
    /// [`EffresError::Sparse`] if a solve fails.
    pub fn build(graph: &Graph, options: &RandomProjectionOptions) -> Result<Self, EffresError> {
        if !(options.dimension_multiplier > 0.0) {
            return Err(EffresError::InvalidConfig {
                name: "dimension_multiplier",
                message: "must be positive".to_string(),
            });
        }
        if !(options.ground_conductance > 0.0) {
            return Err(EffresError::InvalidConfig {
                name: "ground_conductance",
                message: "must be positive".to_string(),
            });
        }
        let n = graph.node_count();
        let m = graph.edge_count().max(2);
        let k = ((options.dimension_multiplier * (m as f64).ln()).ceil() as usize)
            .max(options.min_dimensions);
        let lap = grounded_laplacian(graph, options.ground_conductance);
        let incidence = incidence_matrix(graph);
        let weights = edge_weights(graph);
        let sqrt_w: Vec<f64> = weights.iter().map(|w| w.sqrt()).collect();

        let mut rng = StdRng::seed_from_u64(options.seed);
        let scale = 1.0 / (k as f64).sqrt();

        // Prepare the solver.
        let direct = match options.solver {
            SolverKind::DirectCholesky => {
                let perm = amd::amd(&lap).unwrap_or_else(|_| Permutation::identity(n));
                Some(CholeskyFactor::factor_permuted(&lap, perm)?)
            }
            SolverKind::PreconditionedCg { .. } => None,
        };
        let preconditioner = match options.solver {
            SolverKind::PreconditionedCg { .. } => {
                Some(IncompleteCholesky::with_drop_tolerance(&lap, 1e-3)?)
            }
            SolverKind::DirectCholesky => None,
        };

        let mut embedding = Vec::with_capacity(k);
        for _ in 0..k {
            // One row of Q W^{1/2} B: random ±1/√k entries per edge, scattered
            // onto the two endpoint columns of B.
            let mut row = vec![0.0f64; n];
            for (id, e) in graph.edges() {
                let sign = if rng.gen::<bool>() { scale } else { -scale };
                let value = sign * sqrt_w[id];
                row[e.u] += value;
                row[e.v] -= value;
            }
            // Solve L_G y = rowᵀ.
            let y = match (&direct, &preconditioner, options.solver) {
                (Some(chol), _, _) => chol.solve(&row),
                (None, Some(ic), SolverKind::PreconditionedCg { tolerance }) => {
                    let sol = pcg(
                        &lap,
                        &row,
                        ic,
                        CgOptions {
                            tolerance,
                            max_iterations: 20_000,
                        },
                    )?;
                    sol.x
                }
                _ => unreachable!("solver setup covers both variants"),
            };
            embedding.push(y);
        }
        let _ = incidence; // incidence is embodied in the scatter above
        Ok(RandomProjectionEstimator {
            embedding,
            node_count: n,
            dimensions: k,
        })
    }

    /// Number of nodes covered.
    pub fn node_count(&self) -> usize {
        self.node_count
    }

    /// Number of projected dimensions `k`.
    pub fn dimensions(&self) -> usize {
        self.dimensions
    }

    /// Number of stored values in the projection embedding (the `nnz(Q)`
    /// column of Table I counts the dense `k × n` embedding).
    pub fn embedding_nnz(&self) -> usize {
        self.dimensions * self.node_count
    }

    /// `nnz / (n log₂ n)`, comparable to the density column of Table I.
    pub fn nnz_ratio(&self) -> f64 {
        let n = self.node_count.max(2) as f64;
        self.embedding_nnz() as f64 / (n * n.log2())
    }

    /// Approximate effective resistance between `p` and `q`.
    ///
    /// # Errors
    ///
    /// Returns [`EffresError::NodeOutOfBounds`] for invalid node indices.
    pub fn query(&self, p: usize, q: usize) -> Result<f64, EffresError> {
        for node in [p, q] {
            if node >= self.node_count {
                return Err(EffresError::NodeOutOfBounds {
                    node,
                    node_count: self.node_count,
                });
            }
        }
        if p == q {
            return Ok(0.0);
        }
        let mut sum = 0.0;
        for row in &self.embedding {
            let d = row[p] - row[q];
            sum += d * d;
        }
        Ok(sum)
    }

    /// Approximate effective resistances for a batch of queries.
    ///
    /// # Errors
    ///
    /// Returns the first error produced by [`RandomProjectionEstimator::query`].
    pub fn query_many(&self, queries: &[(usize, usize)]) -> Result<Vec<f64>, EffresError> {
        queries.iter().map(|&(p, q)| self.query(p, q)).collect()
    }

    /// Approximate effective resistances of every edge of `graph`.
    ///
    /// # Errors
    ///
    /// Returns [`EffresError::NodeOutOfBounds`] if the graph has more nodes
    /// than the estimator.
    pub fn query_all_edges(&self, graph: &Graph) -> Result<Vec<f64>, EffresError> {
        graph.edges().map(|(_, e)| self.query(e.u, e.v)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exact::ExactEffectiveResistance;
    use crate::stats::relative_errors;
    use effres_graph::generators;

    #[test]
    fn approximates_exact_resistances_within_jl_error() {
        let g = generators::grid_2d(8, 8, 1.0, 2.0, 3).expect("valid");
        let exact = ExactEffectiveResistance::build(&g, 1e-6).expect("build");
        let rp = RandomProjectionEstimator::build(
            &g,
            &RandomProjectionOptions {
                dimension_multiplier: 24.0,
                ..RandomProjectionOptions::default()
            },
        )
        .expect("build");
        let queries: Vec<(usize, usize)> = g.edges().map(|(_, e)| (e.u, e.v)).collect();
        let a = rp.query_many(&queries).expect("ok");
        let b = exact.query_many(&queries).expect("ok");
        let (avg, _max) = relative_errors(&a, &b);
        assert!(avg < 0.15, "average relative error {avg} too large");
    }

    #[test]
    fn pcg_solver_matches_direct_solver() {
        let g = generators::grid_2d(6, 6, 1.0, 1.0, 1).expect("valid");
        let direct = RandomProjectionEstimator::build(
            &g,
            &RandomProjectionOptions {
                seed: 7,
                ..RandomProjectionOptions::default()
            },
        )
        .expect("build");
        let iterative = RandomProjectionEstimator::build(
            &g,
            &RandomProjectionOptions {
                seed: 7,
                solver: SolverKind::PreconditionedCg { tolerance: 1e-10 },
                ..RandomProjectionOptions::default()
            },
        )
        .expect("build");
        for &(p, q) in &[(0, 35), (5, 30), (10, 20)] {
            let a = direct.query(p, q).expect("ok");
            let b = iterative.query(p, q).expect("ok");
            assert!((a - b).abs() / a < 1e-6, "({p},{q}): {a} vs {b}");
        }
    }

    #[test]
    fn accuracy_is_worse_than_the_approximate_inverse_method() {
        // The headline claim of the paper: at comparable effort the
        // random-projection estimator is one to two orders of magnitude less
        // accurate than Alg. 3.
        use crate::config::EffresConfig;
        use crate::estimator::EffectiveResistanceEstimator;
        let g = generators::grid_2d(10, 10, 0.5, 1.5, 9).expect("valid");
        let exact = ExactEffectiveResistance::build(&g, 1e-6).expect("build");
        let queries: Vec<(usize, usize)> = g.edges().map(|(_, e)| (e.u, e.v)).collect();
        let truth = exact.query_many(&queries).expect("ok");

        let alg3 =
            EffectiveResistanceEstimator::build(&g, &EffresConfig::default()).expect("build");
        let (avg_alg3, _) = relative_errors(&alg3.query_many(&queries).expect("ok"), &truth);

        let rp = RandomProjectionEstimator::build(&g, &RandomProjectionOptions::default())
            .expect("build");
        let (avg_rp, _) = relative_errors(&rp.query_many(&queries).expect("ok"), &truth);

        assert!(
            avg_alg3 * 5.0 < avg_rp,
            "Alg.3 error {avg_alg3} should be far below projection error {avg_rp}"
        );
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let g = generators::random_connected(40, 60, 0.5, 1.5, 4).expect("valid");
        let o = RandomProjectionOptions {
            seed: 99,
            ..RandomProjectionOptions::default()
        };
        let a = RandomProjectionEstimator::build(&g, &o).expect("build");
        let b = RandomProjectionEstimator::build(&g, &o).expect("build");
        assert_eq!(a.query(0, 10).expect("ok"), b.query(0, 10).expect("ok"));
    }

    #[test]
    fn dimension_scaling_follows_log_m() {
        let small = generators::grid_2d(4, 4, 1.0, 1.0, 0).expect("valid");
        let large = generators::grid_2d(20, 20, 1.0, 1.0, 0).expect("valid");
        let o = RandomProjectionOptions {
            min_dimensions: 1,
            ..RandomProjectionOptions::default()
        };
        let ks = RandomProjectionEstimator::build(&small, &o)
            .expect("build")
            .dimensions();
        let kl = RandomProjectionEstimator::build(&large, &o)
            .expect("build")
            .dimensions();
        assert!(kl > ks);
        // 25x more edges should only grow k logarithmically (about +60%).
        assert!(
            (kl as f64) < 2.5 * ks as f64,
            "k should stay logarithmic: {ks} -> {kl}"
        );
    }

    #[test]
    fn invalid_options_and_queries_rejected() {
        let g = generators::grid_2d(3, 3, 1.0, 1.0, 0).expect("valid");
        assert!(RandomProjectionEstimator::build(
            &g,
            &RandomProjectionOptions {
                dimension_multiplier: 0.0,
                ..RandomProjectionOptions::default()
            }
        )
        .is_err());
        let rp = RandomProjectionEstimator::build(&g, &RandomProjectionOptions::default())
            .expect("build");
        assert!(rp.query(0, 50).is_err());
        assert_eq!(rp.query(3, 3).expect("ok"), 0.0);
    }
}
