//! Error metrics and sampling helpers used by the experiments.
//!
//! Table I reports, for every graph, the average (`Ea`) and maximum (`Em`)
//! relative errors of the approximate effective resistances, estimated on
//! 1000 randomly selected edges whose exact resistances are computed with
//! the direct method. The helpers here reproduce that protocol.

use effres_graph::Graph;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// Average and maximum relative error of `approx` with respect to `exact`.
///
/// Entries with a zero exact value are skipped (they carry no relative-error
/// information).
///
/// # Panics
///
/// Panics if the slices have different lengths.
pub fn relative_errors(approx: &[f64], exact: &[f64]) -> (f64, f64) {
    assert_eq!(approx.len(), exact.len(), "length mismatch");
    let mut sum = 0.0;
    let mut max = 0.0_f64;
    let mut count = 0usize;
    for (&a, &e) in approx.iter().zip(exact) {
        if e == 0.0 {
            continue;
        }
        let rel = ((a - e) / e).abs();
        sum += rel;
        max = max.max(rel);
        count += 1;
    }
    if count == 0 {
        (0.0, 0.0)
    } else {
        (sum / count as f64, max)
    }
}

/// Samples up to `count` distinct edges of the graph (as node pairs), using a
/// fixed seed so experiments are reproducible. If the graph has fewer than
/// `count` edges, all edges are returned.
pub fn sample_edges(graph: &Graph, count: usize, seed: u64) -> Vec<(usize, usize)> {
    let mut ids: Vec<usize> = (0..graph.edge_count()).collect();
    let mut rng = StdRng::seed_from_u64(seed);
    ids.shuffle(&mut rng);
    ids.truncate(count);
    ids.sort_unstable();
    ids.iter()
        .map(|&id| {
            let e = graph.edge(id);
            (e.u, e.v)
        })
        .collect()
}

/// Samples `count` random node pairs (not necessarily edges) with distinct
/// endpoints, for query workloads beyond `Q_r = E`.
pub fn sample_node_pairs(graph: &Graph, count: usize, seed: u64) -> Vec<(usize, usize)> {
    use rand::Rng;
    let n = graph.node_count();
    let mut rng = StdRng::seed_from_u64(seed);
    let mut pairs = Vec::with_capacity(count);
    if n < 2 {
        return pairs;
    }
    while pairs.len() < count {
        let p = rng.gen_range(0..n);
        let q = rng.gen_range(0..n);
        if p != q {
            pairs.push((p, q));
        }
    }
    pairs
}

/// Geometric mean of a slice of positive values (used for the "average
/// speedup" summary lines of the paper).
///
/// Returns `0.0` for an empty slice.
pub fn geometric_mean(values: &[f64]) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    let log_sum: f64 = values.iter().map(|v| v.ln()).sum();
    (log_sum / values.len() as f64).exp()
}

#[cfg(test)]
mod tests {
    use super::*;
    use effres_graph::generators;

    #[test]
    fn relative_errors_basic() {
        let exact = [1.0, 2.0, 4.0];
        let approx = [1.1, 2.0, 3.0];
        let (avg, max) = relative_errors(&approx, &exact);
        assert!((max - 0.25).abs() < 1e-12);
        assert!((avg - (0.1 + 0.0 + 0.25) / 3.0).abs() < 1e-12);
    }

    #[test]
    fn relative_errors_skip_zero_reference() {
        let (avg, max) = relative_errors(&[1.0, 5.0], &[0.0, 5.0]);
        assert_eq!(avg, 0.0);
        assert_eq!(max, 0.0);
    }

    #[test]
    fn sample_edges_is_deterministic_and_bounded() {
        let g = generators::grid_2d(6, 6, 1.0, 1.0, 0).expect("valid");
        let a = sample_edges(&g, 10, 3);
        let b = sample_edges(&g, 10, 3);
        assert_eq!(a, b);
        assert_eq!(a.len(), 10);
        let all = sample_edges(&g, 10_000, 3);
        assert_eq!(all.len(), g.edge_count());
    }

    #[test]
    fn sample_node_pairs_have_distinct_endpoints() {
        let g = generators::grid_2d(4, 4, 1.0, 1.0, 0).expect("valid");
        for (p, q) in sample_node_pairs(&g, 50, 1) {
            assert_ne!(p, q);
        }
        assert!(sample_node_pairs(&Graph::new(1), 5, 0).is_empty());
    }

    #[test]
    fn geometric_mean_of_speedups() {
        assert!((geometric_mean(&[10.0, 1000.0]) - 100.0).abs() < 1e-9);
        assert_eq!(geometric_mean(&[]), 0.0);
    }
}
