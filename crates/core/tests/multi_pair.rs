//! The batched multi-pair kernels against the pairwise reference, pinned
//! **bitwise**: `column_dots_hub` must reproduce a `column_dot` loop bit
//! for bit, and `column_distances_squared_grouped` must reproduce
//! `column_distances_squared_batch` bit for bit for *any* pair sequence —
//! sorted or not, with self-pairs, duplicates, empty and singleton sets.
//! That identity is what lets the service engine and the paged scheduler
//! re-order and hub-group batches freely without changing a single answer.
//!
//! The f32 half: narrowing the arena must report a per-value relative
//! error within the `2⁻²⁴` round-to-nearest bound, and whole queries
//! through the narrowed arena must stay within a small multiple of it.

use effres::column_store::{
    self, column_distances_squared_batch, column_distances_squared_grouped, column_dot,
    column_dots_hub, ColumnStore, HubScratch,
};
use effres::{EffectiveResistanceEstimator, EffresConfig, ValueMode};
use effres_graph::generators;
use proptest::prelude::*;
use std::sync::OnceLock;

const SIDE: usize = 12;
const NODES: usize = SIDE * SIDE;

fn estimator() -> &'static EffectiveResistanceEstimator {
    static EST: OnceLock<EffectiveResistanceEstimator> = OnceLock::new();
    EST.get_or_init(|| {
        let graph = generators::grid_2d(SIDE, SIDE, 0.5, 2.0, 5).expect("generator");
        EffectiveResistanceEstimator::build(&graph, &EffresConfig::default()).expect("build")
    })
}

fn estimator_f32() -> &'static EffectiveResistanceEstimator {
    static EST: OnceLock<EffectiveResistanceEstimator> = OnceLock::new();
    EST.get_or_init(|| {
        let graph = generators::grid_2d(SIDE, SIDE, 0.5, 2.0, 5).expect("generator");
        let config = EffresConfig::default().with_value_mode(ValueMode::F32);
        EffectiveResistanceEstimator::build(&graph, &config).expect("build")
    })
}

fn norms() -> &'static [f64] {
    static NORMS: OnceLock<Vec<f64>> = OnceLock::new();
    NORMS.get_or_init(|| estimator().approximate_inverse().column_norms_squared())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(60))]

    /// One hub against a random partner set: the batched scatter kernel
    /// must match a plain `column_dot` loop bit for bit — including an
    /// empty partner set, repeated partners, and the hub paired with
    /// itself.
    #[test]
    fn hub_kernel_matches_pairwise_dots_bitwise(
        hub in 0usize..NODES,
        partners in proptest::collection::vec(0usize..NODES, 0..24),
    ) {
        let inverse = estimator().approximate_inverse();
        let mut scratch = HubScratch::new(inverse.order());
        let batched = column_dots_hub(inverse, hub, &partners, &mut scratch)
            .expect("resident store never fails");
        prop_assert_eq!(batched.len(), partners.len());
        for (&partner, &got) in partners.iter().zip(&batched) {
            let reference = column_dot(inverse, hub, partner)
                .expect("resident store never fails");
            prop_assert_eq!(reference.to_bits(), got.to_bits());
        }
        // The hub streams once however many partners follow.
        let stats = scratch.take_stats();
        prop_assert_eq!(stats.hub_loads, u64::from(!partners.is_empty()));
        prop_assert_eq!(stats.hub_pairs, partners.len() as u64);
    }

    /// Arbitrary pair sequences — unsorted, with self-pairs and duplicates
    /// — through the grouped kernel, with and without a norm table: bit
    /// for bit the pairwise batch reference, on a fresh scratch and on a
    /// reused (dirty) one.
    #[test]
    fn grouped_kernel_matches_pairwise_batch_bitwise(
        pairs in proptest::collection::vec((0usize..NODES, 0usize..NODES), 0..48),
    ) {
        let inverse = estimator().approximate_inverse();
        let mut scratch = HubScratch::new(inverse.order());
        for table in [None, Some(norms())] {
            let reference = column_distances_squared_batch(inverse, &pairs, table)
                .expect("resident store never fails");
            // Fresh scratch, then immediately again on the now-dirty
            // scratch: a resident hub left over from the previous run may
            // flip pairs between the isolated and hub paths, which must
            // not change any bits.
            for _ in 0..2 {
                let grouped =
                    column_distances_squared_grouped(inverse, &pairs, table, &mut scratch)
                        .expect("resident store never fails");
                prop_assert_eq!(reference.len(), grouped.len());
                for (r, g) in reference.iter().zip(&grouped) {
                    prop_assert_eq!(r.to_bits(), g.to_bits());
                }
            }
            let stats = scratch.take_stats();
            let non_self = pairs.iter().filter(|(p, q)| p != q).count() as u64;
            prop_assert_eq!(stats.pairs(), 2 * non_self);
        }
    }

    /// The f32 arena answers the grouped kernel bit-identically to its own
    /// pairwise reference too (the scatter argument does not depend on the
    /// value width), and each narrowed query stays near the f64 answer.
    #[test]
    fn f32_grouped_matches_f32_pairwise_and_stays_near_f64(
        pairs in proptest::collection::vec((0usize..NODES, 0usize..NODES), 1..32),
    ) {
        let narrow = estimator_f32().approximate_inverse();
        let mut scratch = HubScratch::new(narrow.order());
        let reference = column_distances_squared_batch(narrow, &pairs, None)
            .expect("resident store never fails");
        let grouped = column_distances_squared_grouped(narrow, &pairs, None, &mut scratch)
            .expect("resident store never fails");
        for (r, g) in reference.iter().zip(&grouped) {
            prop_assert_eq!(r.to_bits(), g.to_bits());
        }
        // Whole queries: compare against the f64 estimator. The distance
        // sums ~2·depth products of narrowed values, so allow a modest
        // multiple of the per-value bound (relative to the query scale).
        let wide = estimator().approximate_inverse();
        let permutation = estimator().permutation();
        for &(p, q) in &pairs {
            let (pp, qq) = (permutation.new(p), permutation.new(q));
            let exact = wide.column_distance_squared(pp, qq);
            let approx = column_store::column_distance_squared(narrow, pp, qq)
                .expect("resident store never fails");
            let scale = exact.abs().max(1e-12);
            prop_assert!(
                (exact - approx).abs() / scale <= 1e-5,
                "({p},{q}): f64 {exact} vs f32 {approx}"
            );
        }
    }
}

#[test]
fn empty_and_singleton_batches_are_exact() {
    let inverse = estimator().approximate_inverse();
    let mut scratch = HubScratch::new(inverse.order());
    let empty = column_distances_squared_grouped(inverse, &[], None, &mut scratch).expect("empty");
    assert!(empty.is_empty());
    assert_eq!(scratch.take_stats(), Default::default());

    // A singleton pair has no neighbour to share a hub with: it must take
    // the isolated path and still match the pairwise kernel bitwise.
    let single =
        column_distances_squared_grouped(inverse, &[(3, 77)], None, &mut scratch).expect("single");
    let reference = column_distances_squared_batch(inverse, &[(3, 77)], None).expect("single");
    assert_eq!(single[0].to_bits(), reference[0].to_bits());
    let stats = scratch.take_stats();
    assert_eq!(stats.hub_loads, 0);
    assert_eq!(stats.isolated_pairs, 1);
}

#[test]
fn narrowing_error_is_reported_and_within_the_round_to_nearest_bound() {
    let wide = estimator().approximate_inverse();
    let narrow = estimator_f32().approximate_inverse();
    assert_eq!(wide.value_mode(), ValueMode::F64);
    assert_eq!(narrow.value_mode(), ValueMode::F32);
    assert_eq!(wide.narrowing_error(), 0.0);
    let reported = narrow.narrowing_error();
    assert!(reported > 0.0, "a real arena narrows inexactly");
    assert!(
        reported <= f64::from(f32::EPSILON) / 2.0,
        "round-to-nearest bound violated: {reported}"
    );
    // The arena the kernels stream really is half as wide.
    let (wide_bytes, narrow_bytes) = (wide.footprint().vals_bytes, narrow.footprint().vals_bytes);
    assert_eq!(wide_bytes, 2 * narrow_bytes);
    // And round-tripping back to f64 restores nothing: narrowing is a
    // one-way conversion (widen is exact on every stored value, so the
    // narrowed estimator re-narrowed is itself).
    assert_eq!(ColumnStore::nnz(narrow), ColumnStore::nnz(wide));
}
