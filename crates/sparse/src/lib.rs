//! Sparse linear algebra kernel for the `effres` workspace.
//!
//! This crate provides, from scratch, every piece of sparse numerical linear
//! algebra the effective-resistance algorithms and the power-grid analysis
//! flow need:
//!
//! * sparse matrix storage: triplet ([`TripletMatrix`]), compressed sparse
//!   column ([`CscMatrix`]) and compressed sparse row ([`CsrMatrix`]);
//! * small dense matrices ([`DenseMatrix`]) used as reference implementations
//!   and for Schur complements of small blocks;
//! * fill-reducing orderings: approximate minimum degree ([`amd::amd`]) and
//!   reverse Cuthill–McKee ([`rcm::rcm`]);
//! * symbolic analysis: elimination trees, postorder, column counts
//!   ([`etree`], [`symbolic`]);
//! * numeric factorizations: full sparse Cholesky ([`cholesky::CholeskyFactor`])
//!   and incomplete Cholesky with threshold dropping ([`ichol::IncompleteCholesky`]);
//! * sparse and dense triangular solves ([`trisolve`]);
//! * (preconditioned) conjugate gradients ([`cg`]).
//!
//! # Example
//!
//! ```
//! use effres_sparse::{TripletMatrix, cholesky::CholeskyFactor};
//!
//! # fn main() -> Result<(), effres_sparse::SparseError> {
//! // A small symmetric positive definite matrix.
//! let mut t = TripletMatrix::new(3, 3);
//! t.push(0, 0, 4.0);
//! t.push(1, 1, 5.0);
//! t.push(2, 2, 6.0);
//! t.push(1, 0, -1.0);
//! t.push(0, 1, -1.0);
//! t.push(2, 1, -2.0);
//! t.push(1, 2, -2.0);
//! let a = t.to_csc();
//! let chol = CholeskyFactor::factor(&a)?;
//! let x = chol.solve(&[1.0, 2.0, 3.0]);
//! let r = a.residual_inf_norm(&x, &[1.0, 2.0, 3.0]);
//! assert!(r < 1e-10);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod amd;
pub mod cg;
pub mod cholesky;
pub mod coo;
pub mod csc;
pub mod csr;
pub mod dense;
pub mod error;
pub mod etree;
pub mod ichol;
pub mod permutation;
pub mod pool;
pub mod rcm;
pub mod schedule;
pub mod sparse_vec;
pub mod symbolic;
pub mod trisolve;
pub mod vecops;

pub use coo::TripletMatrix;
pub use csc::CscMatrix;
pub use csr::CsrMatrix;
pub use dense::DenseMatrix;
pub use error::SparseError;
pub use permutation::Permutation;
pub use pool::WorkerPool;
pub use schedule::LevelSchedule;
pub use sparse_vec::SparseVec;
