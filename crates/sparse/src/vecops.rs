//! Small dense-vector helpers shared across the crate.
//!
//! These are deliberately plain functions over slices so they can be reused
//! by every solver and factorization without pulling in a vector type.

/// Dot product of two equally sized slices.
///
/// # Panics
///
/// Panics if the slices have different lengths.
pub fn dot(x: &[f64], y: &[f64]) -> f64 {
    assert_eq!(x.len(), y.len(), "dot: length mismatch");
    x.iter().zip(y).map(|(a, b)| a * b).sum()
}

/// Euclidean norm of a slice.
pub fn norm2(x: &[f64]) -> f64 {
    dot(x, x).sqrt()
}

/// 1-norm (sum of absolute values) of a slice.
pub fn norm1(x: &[f64]) -> f64 {
    x.iter().map(|v| v.abs()).sum()
}

/// Infinity norm (maximum absolute value) of a slice.
pub fn norm_inf(x: &[f64]) -> f64 {
    x.iter().fold(0.0_f64, |m, v| m.max(v.abs()))
}

/// `y += alpha * x`.
///
/// # Panics
///
/// Panics if the slices have different lengths.
pub fn axpy(alpha: f64, x: &[f64], y: &mut [f64]) {
    assert_eq!(x.len(), y.len(), "axpy: length mismatch");
    for (yi, xi) in y.iter_mut().zip(x) {
        *yi += alpha * xi;
    }
}

/// Scale a vector in place: `x *= alpha`.
pub fn scale(alpha: f64, x: &mut [f64]) {
    for xi in x.iter_mut() {
        *xi *= alpha;
    }
}

/// Element-wise difference `x - y` as a new vector.
///
/// # Panics
///
/// Panics if the slices have different lengths.
pub fn sub(x: &[f64], y: &[f64]) -> Vec<f64> {
    assert_eq!(x.len(), y.len(), "sub: length mismatch");
    x.iter().zip(y).map(|(a, b)| a - b).collect()
}

/// A stored sparse-vector value that widens losslessly to the `f64` the
/// kernels accumulate in. The arithmetic of every sparse kernel is defined
/// on the widened values, so for `f64` operands (where widening is the
/// identity) the generic kernels are bit-identical to the original
/// `&[f64]`-only ones, and `f32` operands (the opt-in narrow value mode of
/// the `effres` arena) pay only the per-entry conversion error, never
/// accumulation in reduced precision.
pub trait ScalarValue: Copy {
    /// The value as an `f64` (exact: every `f32` is representable).
    fn widen(self) -> f64;
}

impl ScalarValue for f64 {
    #[inline(always)]
    fn widen(self) -> f64 {
        self
    }
}

impl ScalarValue for f32 {
    #[inline(always)]
    fn widen(self) -> f64 {
        f64::from(self)
    }
}

/// Dot product of two sparse vectors given as sorted parallel
/// `indices`/`values` slices — the shared merge kernel behind
/// [`crate::SparseVec::dot`] and the flat-arena column views of the `effres`
/// crate. Generic over the index width so both `usize`-indexed sparse
/// vectors and the arena's narrowed `u32` columns share one implementation,
/// and over the value width (see [`ScalarValue`]) so the narrow-value arena
/// mode reuses it; accumulation is always in `f64`.
pub fn sparse_dot<I: Copy + Ord, A: ScalarValue, B: ScalarValue>(
    ai: &[I],
    av: &[A],
    bi: &[I],
    bv: &[B],
) -> f64 {
    let mut s = 0.0;
    let mut ia = 0;
    let mut ib = 0;
    while ia < ai.len() && ib < bi.len() {
        match ai[ia].cmp(&bi[ib]) {
            std::cmp::Ordering::Less => ia += 1,
            std::cmp::Ordering::Greater => ib += 1,
            std::cmp::Ordering::Equal => {
                s += av[ia].widen() * bv[ib].widen();
                ia += 1;
                ib += 1;
            }
        }
    }
    s
}

/// Runs the union merge of two sorted sparse vectors, feeding `visit` with
/// the pair of values at every index where either vector is nonzero (zero
/// for the absent side). The reduction behind the sparse distance and
/// difference norms. Generic over the index and value widths (see
/// [`sparse_dot`]).
fn sparse_union_fold<I: Copy + Ord, A: ScalarValue, B: ScalarValue>(
    ai: &[I],
    av: &[A],
    bi: &[I],
    bv: &[B],
    mut visit: impl FnMut(f64, f64),
) {
    let mut ia = 0;
    let mut ib = 0;
    while ia < ai.len() && ib < bi.len() {
        match ai[ia].cmp(&bi[ib]) {
            std::cmp::Ordering::Less => {
                visit(av[ia].widen(), 0.0);
                ia += 1;
            }
            std::cmp::Ordering::Greater => {
                visit(0.0, bv[ib].widen());
                ib += 1;
            }
            std::cmp::Ordering::Equal => {
                visit(av[ia].widen(), bv[ib].widen());
                ia += 1;
                ib += 1;
            }
        }
    }
    // Once one side is exhausted the remainder needs no index comparisons:
    // drain it in a tight loop (this is the hot exit for the estimator's
    // lower-triangular columns, whose supports often barely overlap).
    for &a in &av[ia..] {
        visit(a.widen(), 0.0);
    }
    for &b in &bv[ib..] {
        visit(0.0, b.widen());
    }
}

/// Squared Euclidean distance between two sparse vectors given as sorted
/// parallel `indices`/`values` slices. Generic over the index and value
/// widths (see [`sparse_dot`]).
pub fn sparse_distance_squared<I: Copy + Ord, A: ScalarValue, B: ScalarValue>(
    ai: &[I],
    av: &[A],
    bi: &[I],
    bv: &[B],
) -> f64 {
    let mut s = 0.0;
    sparse_union_fold(ai, av, bi, bv, |a, b| {
        let d = a - b;
        s += d * d;
    });
    s
}

/// 1-norm of the difference of two sparse vectors given as sorted parallel
/// `indices`/`values` slices. Generic over the index and value widths (see
/// [`sparse_dot`]).
pub fn sparse_diff_norm1<I: Copy + Ord, A: ScalarValue, B: ScalarValue>(
    ai: &[I],
    av: &[A],
    bi: &[I],
    bv: &[B],
) -> f64 {
    let mut s = 0.0;
    sparse_union_fold(ai, av, bi, bv, |a, b| s += (a - b).abs());
    s
}

/// Maximum absolute difference between two vectors.
///
/// # Panics
///
/// Panics if the slices have different lengths.
pub fn max_abs_diff(x: &[f64], y: &[f64]) -> f64 {
    assert_eq!(x.len(), y.len(), "max_abs_diff: length mismatch");
    x.iter()
        .zip(y)
        .fold(0.0_f64, |m, (a, b)| m.max((a - b).abs()))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dot_and_norms() {
        let x = [3.0, 4.0];
        assert_eq!(dot(&x, &x), 25.0);
        assert_eq!(norm2(&x), 5.0);
        assert_eq!(norm1(&x), 7.0);
        assert_eq!(norm_inf(&[-3.0, 2.0]), 3.0);
    }

    #[test]
    fn axpy_scale_sub() {
        let x = [1.0, 2.0];
        let mut y = [10.0, 20.0];
        axpy(2.0, &x, &mut y);
        assert_eq!(y, [12.0, 24.0]);
        scale(0.5, &mut y);
        assert_eq!(y, [6.0, 12.0]);
        assert_eq!(sub(&y, &x), vec![5.0, 10.0]);
        assert_eq!(max_abs_diff(&y, &x), 10.0);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn dot_panics_on_mismatch() {
        let _ = dot(&[1.0], &[1.0, 2.0]);
    }

    #[test]
    fn norms_of_empty_vector_are_zero() {
        assert_eq!(norm2(&[]), 0.0);
        assert_eq!(norm1(&[]), 0.0);
        assert_eq!(norm_inf(&[]), 0.0);
    }

    #[test]
    fn sparse_merges_match_dense_reference() {
        let (ai, av) = (vec![0usize, 2, 4], vec![1.0, 2.0, 3.0]);
        let (bi, bv) = (vec![1usize, 2], vec![-1.0, 5.0]);
        let dense = |i: &[usize], v: &[f64]| {
            let mut out = vec![0.0; 5];
            for (&idx, &val) in i.iter().zip(v) {
                out[idx] = val;
            }
            out
        };
        let (da, db) = (dense(&ai, &av), dense(&bi, &bv));
        let d2: f64 = da.iter().zip(&db).map(|(x, y)| (x - y) * (x - y)).sum();
        let d: f64 = da.iter().zip(&db).map(|(x, y)| x * y).sum();
        let l1: f64 = da.iter().zip(&db).map(|(x, y)| (x - y).abs()).sum();
        assert_eq!(sparse_dot(&ai, &av, &bi, &bv), d);
        assert_eq!(sparse_distance_squared(&ai, &av, &bi, &bv), d2);
        assert_eq!(sparse_diff_norm1(&ai, &av, &bi, &bv), l1);
        // Empty operands short-circuit to the other side's contribution.
        assert_eq!(sparse_dot::<usize, f64, f64>(&[], &[], &bi, &bv), 0.0);
        assert_eq!(
            sparse_diff_norm1::<usize, f64, f64>(&[], &[], &bi, &bv),
            6.0
        );
    }

    #[test]
    fn narrow_values_widen_before_any_arithmetic() {
        // Mixed-width kernels must compute on the widened f32 values: the
        // result equals the all-f64 kernel run on the widened operands.
        let (ai, av32) = (vec![0u32, 2, 4], vec![0.1f32, 2.5, 3.0]);
        let (bi, bv) = (vec![1u32, 2, 4], vec![-1.0f64, 5.0, 0.25]);
        let av: Vec<f64> = av32.iter().map(|&v| f64::from(v)).collect();
        assert_eq!(
            sparse_dot(&ai, &av32, &bi, &bv).to_bits(),
            sparse_dot(&ai, &av, &bi, &bv).to_bits()
        );
        assert_eq!(
            sparse_distance_squared(&ai, &av32, &bi, &bv).to_bits(),
            sparse_distance_squared(&ai, &av, &bi, &bv).to_bits()
        );
        assert_eq!(
            sparse_diff_norm1(&ai, &av32, &bi, &bv).to_bits(),
            sparse_diff_norm1(&ai, &av, &bi, &bv).to_bits()
        );
    }
}
