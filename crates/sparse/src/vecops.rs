//! Small dense-vector helpers shared across the crate.
//!
//! These are deliberately plain functions over slices so they can be reused
//! by every solver and factorization without pulling in a vector type.

/// Dot product of two equally sized slices.
///
/// # Panics
///
/// Panics if the slices have different lengths.
pub fn dot(x: &[f64], y: &[f64]) -> f64 {
    assert_eq!(x.len(), y.len(), "dot: length mismatch");
    x.iter().zip(y).map(|(a, b)| a * b).sum()
}

/// Euclidean norm of a slice.
pub fn norm2(x: &[f64]) -> f64 {
    dot(x, x).sqrt()
}

/// 1-norm (sum of absolute values) of a slice.
pub fn norm1(x: &[f64]) -> f64 {
    x.iter().map(|v| v.abs()).sum()
}

/// Infinity norm (maximum absolute value) of a slice.
pub fn norm_inf(x: &[f64]) -> f64 {
    x.iter().fold(0.0_f64, |m, v| m.max(v.abs()))
}

/// `y += alpha * x`.
///
/// # Panics
///
/// Panics if the slices have different lengths.
pub fn axpy(alpha: f64, x: &[f64], y: &mut [f64]) {
    assert_eq!(x.len(), y.len(), "axpy: length mismatch");
    for (yi, xi) in y.iter_mut().zip(x) {
        *yi += alpha * xi;
    }
}

/// Scale a vector in place: `x *= alpha`.
pub fn scale(alpha: f64, x: &mut [f64]) {
    for xi in x.iter_mut() {
        *xi *= alpha;
    }
}

/// Element-wise difference `x - y` as a new vector.
///
/// # Panics
///
/// Panics if the slices have different lengths.
pub fn sub(x: &[f64], y: &[f64]) -> Vec<f64> {
    assert_eq!(x.len(), y.len(), "sub: length mismatch");
    x.iter().zip(y).map(|(a, b)| a - b).collect()
}

/// Maximum absolute difference between two vectors.
///
/// # Panics
///
/// Panics if the slices have different lengths.
pub fn max_abs_diff(x: &[f64], y: &[f64]) -> f64 {
    assert_eq!(x.len(), y.len(), "max_abs_diff: length mismatch");
    x.iter()
        .zip(y)
        .fold(0.0_f64, |m, (a, b)| m.max((a - b).abs()))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dot_and_norms() {
        let x = [3.0, 4.0];
        assert_eq!(dot(&x, &x), 25.0);
        assert_eq!(norm2(&x), 5.0);
        assert_eq!(norm1(&x), 7.0);
        assert_eq!(norm_inf(&[-3.0, 2.0]), 3.0);
    }

    #[test]
    fn axpy_scale_sub() {
        let x = [1.0, 2.0];
        let mut y = [10.0, 20.0];
        axpy(2.0, &x, &mut y);
        assert_eq!(y, [12.0, 24.0]);
        scale(0.5, &mut y);
        assert_eq!(y, [6.0, 12.0]);
        assert_eq!(sub(&y, &x), vec![5.0, 10.0]);
        assert_eq!(max_abs_diff(&y, &x), 10.0);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn dot_panics_on_mismatch() {
        let _ = dot(&[1.0], &[1.0, 2.0]);
    }

    #[test]
    fn norms_of_empty_vector_are_zero() {
        assert_eq!(norm2(&[]), 0.0);
        assert_eq!(norm1(&[]), 0.0);
        assert_eq!(norm_inf(&[]), 0.0);
    }
}
