//! Error type shared by all fallible operations of the crate.

use std::fmt;

/// Errors produced by sparse matrix construction and factorization.
#[derive(Debug, Clone, PartialEq)]
pub enum SparseError {
    /// A matrix dimension or index was inconsistent with the operation.
    DimensionMismatch {
        /// Description of the operation that failed.
        context: &'static str,
        /// The expected extent.
        expected: usize,
        /// The extent actually supplied.
        found: usize,
    },
    /// An entry index was out of bounds.
    IndexOutOfBounds {
        /// Row index of the offending entry.
        row: usize,
        /// Column index of the offending entry.
        col: usize,
        /// Number of rows of the matrix.
        nrows: usize,
        /// Number of columns of the matrix.
        ncols: usize,
    },
    /// The matrix is not (numerically) positive definite: a nonpositive pivot
    /// was encountered during Cholesky factorization.
    NotPositiveDefinite {
        /// Column at which the nonpositive pivot appeared.
        column: usize,
        /// Value of the offending pivot.
        pivot: f64,
    },
    /// The matrix must be square for this operation.
    NotSquare {
        /// Number of rows.
        nrows: usize,
        /// Number of columns.
        ncols: usize,
    },
    /// An iterative solver failed to reach the requested tolerance.
    ConvergenceFailure {
        /// Number of iterations performed.
        iterations: usize,
        /// Residual norm reached when iteration stopped.
        residual: f64,
        /// Requested tolerance.
        tolerance: f64,
    },
    /// A parameter value was invalid (e.g. a negative tolerance).
    InvalidParameter {
        /// Name of the parameter.
        name: &'static str,
        /// Human readable description of the constraint that was violated.
        message: &'static str,
    },
}

impl fmt::Display for SparseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SparseError::DimensionMismatch {
                context,
                expected,
                found,
            } => write!(
                f,
                "dimension mismatch in {context}: expected {expected}, found {found}"
            ),
            SparseError::IndexOutOfBounds {
                row,
                col,
                nrows,
                ncols,
            } => write!(
                f,
                "entry ({row}, {col}) is out of bounds for a {nrows}x{ncols} matrix"
            ),
            SparseError::NotPositiveDefinite { column, pivot } => write!(
                f,
                "matrix is not positive definite: pivot {pivot:e} at column {column}"
            ),
            SparseError::NotSquare { nrows, ncols } => {
                write!(f, "matrix must be square, got {nrows}x{ncols}")
            }
            SparseError::ConvergenceFailure {
                iterations,
                residual,
                tolerance,
            } => write!(
                f,
                "iterative solver stopped after {iterations} iterations with residual {residual:e} (tolerance {tolerance:e})"
            ),
            SparseError::InvalidParameter { name, message } => {
                write!(f, "invalid parameter `{name}`: {message}")
            }
        }
    }
}

impl std::error::Error for SparseError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_informative() {
        let e = SparseError::DimensionMismatch {
            context: "matvec",
            expected: 4,
            found: 3,
        };
        assert!(e.to_string().contains("matvec"));
        let e = SparseError::NotPositiveDefinite {
            column: 7,
            pivot: -1.0,
        };
        assert!(e.to_string().contains("column 7"));
        let e = SparseError::NotSquare { nrows: 2, ncols: 3 };
        assert!(e.to_string().contains("2x3"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<SparseError>();
    }
}
