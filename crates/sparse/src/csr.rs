//! Compressed sparse row (CSR) matrices.
//!
//! CSR is mainly used for row-oriented traversals (e.g. adjacency scans in
//! graph algorithms and incidence-matrix products in the random-projection
//! baseline); the factorizations all work on [`CscMatrix`].

use crate::csc::CscMatrix;
use crate::dense::DenseMatrix;
use crate::error::SparseError;

/// A sparse matrix in compressed sparse row format.
#[derive(Debug, Clone, PartialEq)]
pub struct CsrMatrix {
    nrows: usize,
    ncols: usize,
    rowptr: Vec<usize>,
    colidx: Vec<usize>,
    values: Vec<f64>,
}

impl CsrMatrix {
    /// Creates an empty (all-zero) matrix with the given shape.
    pub fn zeros(nrows: usize, ncols: usize) -> Self {
        CsrMatrix {
            nrows,
            ncols,
            rowptr: vec![0; nrows + 1],
            colidx: Vec::new(),
            values: Vec::new(),
        }
    }

    /// Builds a CSR matrix from raw compressed arrays.
    ///
    /// # Errors
    ///
    /// Returns an error when the arrays are inconsistent (see
    /// [`CscMatrix::from_raw`] for the analogous constraints).
    pub fn from_raw(
        nrows: usize,
        ncols: usize,
        rowptr: Vec<usize>,
        colidx: Vec<usize>,
        values: Vec<f64>,
    ) -> Result<Self, SparseError> {
        // Validate by constructing the transpose-view CSC and converting back
        // structurally: reuse the CSC validation logic by treating rows as columns.
        let csc_view = CscMatrix::from_raw(ncols, nrows, rowptr, colidx, values)?;
        Ok(CsrMatrix::from_csc_transpose(csc_view))
    }

    /// Interprets a CSC matrix as the CSR representation of its transpose.
    ///
    /// If `t` holds the matrix `A^T` in CSC form, the returned value is `A`
    /// in CSR form (the underlying arrays are reused unchanged).
    pub fn from_csc_transpose(t: CscMatrix) -> Self {
        let nrows = t.ncols();
        let ncols = t.nrows();
        // CSC of A^T: colptr indexes columns of A^T == rows of A.
        CsrMatrix {
            nrows,
            ncols,
            rowptr: t.colptr().to_vec(),
            colidx: t.rowidx().to_vec(),
            values: t.values().to_vec(),
        }
    }

    /// Number of rows.
    pub fn nrows(&self) -> usize {
        self.nrows
    }

    /// Number of columns.
    pub fn ncols(&self) -> usize {
        self.ncols
    }

    /// Number of explicitly stored entries.
    pub fn nnz(&self) -> usize {
        self.colidx.len()
    }

    /// Row pointer array (`nrows + 1` entries).
    pub fn rowptr(&self) -> &[usize] {
        &self.rowptr
    }

    /// Column index array.
    pub fn colidx(&self) -> &[usize] {
        &self.colidx
    }

    /// Value array.
    pub fn values(&self) -> &[f64] {
        &self.values
    }

    /// Iterates over the `(column_index, value)` pairs of row `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= self.nrows()`.
    pub fn row(&self, i: usize) -> impl Iterator<Item = (usize, f64)> + '_ {
        assert!(i < self.nrows, "row index out of bounds");
        let range = self.rowptr[i]..self.rowptr[i + 1];
        self.colidx[range.clone()]
            .iter()
            .zip(&self.values[range])
            .map(|(&c, &v)| (c, v))
    }

    /// Value at `(row, col)`, or `0.0` if not stored.
    ///
    /// # Panics
    ///
    /// Panics if the indices are out of bounds.
    pub fn get(&self, row: usize, col: usize) -> f64 {
        assert!(row < self.nrows && col < self.ncols, "index out of bounds");
        let range = self.rowptr[row]..self.rowptr[row + 1];
        match self.colidx[range.clone()].binary_search(&col) {
            Ok(pos) => self.values[range.start + pos],
            Err(_) => 0.0,
        }
    }

    /// Matrix-vector product `y = A x`.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != self.ncols()`.
    pub fn matvec(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(x.len(), self.ncols, "matvec: length mismatch");
        let mut y = vec![0.0; self.nrows];
        for i in 0..self.nrows {
            let mut s = 0.0;
            for p in self.rowptr[i]..self.rowptr[i + 1] {
                s += self.values[p] * x[self.colidx[p]];
            }
            y[i] = s;
        }
        y
    }

    /// Transposed matrix-vector product `y = A^T x`.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != self.nrows()`.
    pub fn matvec_transpose(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(x.len(), self.nrows, "matvec_transpose: length mismatch");
        let mut y = vec![0.0; self.ncols];
        for i in 0..self.nrows {
            let xi = x[i];
            if xi == 0.0 {
                continue;
            }
            for p in self.rowptr[i]..self.rowptr[i + 1] {
                y[self.colidx[p]] += self.values[p] * xi;
            }
        }
        y
    }

    /// Converts to compressed sparse column format.
    pub fn to_csc(&self) -> CscMatrix {
        let mut rows = Vec::with_capacity(self.nnz());
        let mut cols = Vec::with_capacity(self.nnz());
        let mut vals = Vec::with_capacity(self.nnz());
        for i in 0..self.nrows {
            for p in self.rowptr[i]..self.rowptr[i + 1] {
                rows.push(i);
                cols.push(self.colidx[p]);
                vals.push(self.values[p]);
            }
        }
        CscMatrix::from_triplets(self.nrows, self.ncols, &rows, &cols, &vals)
    }

    /// Converts to a dense matrix (intended for small matrices and tests).
    pub fn to_dense(&self) -> DenseMatrix {
        let mut d = DenseMatrix::zeros(self.nrows, self.ncols);
        for i in 0..self.nrows {
            for (c, v) in self.row(i) {
                d.set(i, c, v);
            }
        }
        d
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::coo::TripletMatrix;

    fn sample_csr() -> CsrMatrix {
        let mut t = TripletMatrix::new(2, 3);
        t.push(0, 0, 1.0);
        t.push(0, 2, 2.0);
        t.push(1, 1, 3.0);
        t.to_csr()
    }

    #[test]
    fn csr_round_trips_through_csc() {
        let a = sample_csr();
        let back = a.to_csc().to_csr();
        assert_eq!(a, back);
    }

    #[test]
    fn get_returns_stored_and_zero() {
        let a = sample_csr();
        assert_eq!(a.get(0, 2), 2.0);
        assert_eq!(a.get(1, 0), 0.0);
    }

    #[test]
    fn matvec_matches_dense() {
        let a = sample_csr();
        let x = [1.0, 2.0, 3.0];
        assert_eq!(a.matvec(&x), a.to_dense().matvec(&x));
    }

    #[test]
    fn matvec_transpose_matches_dense_transpose() {
        let a = sample_csr();
        let x = [1.0, -1.0];
        let expected = a.to_dense().transpose().matvec(&x);
        assert_eq!(a.matvec_transpose(&x), expected);
    }

    #[test]
    fn row_iterator_yields_sorted_columns() {
        let a = sample_csr();
        let row0: Vec<_> = a.row(0).collect();
        assert_eq!(row0, vec![(0, 1.0), (2, 2.0)]);
    }

    #[test]
    fn from_raw_rejects_bad_pointers() {
        assert!(CsrMatrix::from_raw(2, 2, vec![0, 1], vec![0], vec![1.0]).is_err());
    }
}
