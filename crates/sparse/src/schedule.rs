//! Level scheduling for backward column sweeps over a lower-triangular factor.
//!
//! The approximate-inverse recurrence (Alg. 2 of the paper) builds column `j`
//! of `Z = L⁻¹` from the columns `i > j` appearing in the below-diagonal
//! pattern of `L`'s column `j` — exactly `j`'s ancestors in the elimination
//! tree. Columns that share no ancestor dependency are independent, so the
//! whole sweep can be arranged into *levels*: level 0 holds the columns with
//! no below-diagonal entries (the etree roots), and each later level holds
//! the columns whose deepest dependency sits one level up. Processing levels
//! root-downward, all columns inside one level can run in parallel.
//!
//! Two constructions are provided:
//!
//! * [`LevelSchedule::from_lower_factor`] reads the factor's actual pattern.
//!   With threshold-dropped (incomplete) factors this is the sharper
//!   schedule: dropped entries remove dependencies and flatten the levels.
//! * [`LevelSchedule::from_etree`] uses only the elimination-tree parents
//!   (via [`crate::etree::tree_depths`]); it is valid for any factor whose
//!   pattern is contained in the ancestor sets, but is never shallower than
//!   the pattern-based schedule.

use crate::csc::CscMatrix;
use crate::etree::{tree_depths, NO_PARENT};

/// Columns of a lower-triangular factor grouped into dependency levels.
///
/// Level `l` contains the columns whose below-diagonal dependencies all lie
/// in levels `< l`; within a level columns are listed in ascending index
/// order, so iterating levels in order and columns within a level in slice
/// order is a deterministic, dependency-respecting schedule.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LevelSchedule {
    /// `level_ptr[l]..level_ptr[l + 1]` indexes `columns` for level `l`.
    level_ptr: Vec<usize>,
    /// Column indices grouped by level, ascending within each level.
    columns: Vec<usize>,
}

impl LevelSchedule {
    /// Builds the schedule from per-column level numbers.
    fn from_levels(levels: &[usize]) -> Self {
        let num_levels = levels.iter().map(|&l| l + 1).max().unwrap_or(0);
        let mut level_ptr = vec![0usize; num_levels + 1];
        for &l in levels {
            level_ptr[l + 1] += 1;
        }
        for l in 0..num_levels {
            level_ptr[l + 1] += level_ptr[l];
        }
        let mut next = level_ptr.clone();
        let mut columns = vec![0usize; levels.len()];
        // Iterating columns in ascending order keeps each level's slice
        // sorted ascending.
        for (j, &l) in levels.iter().enumerate() {
            columns[next[l]] = j;
            next[l] += 1;
        }
        LevelSchedule { level_ptr, columns }
    }

    /// Builds the schedule from the below-diagonal pattern of a square
    /// lower-triangular factor: column `j` lands one level below its deepest
    /// dependency `i > j` with `L(i, j) ≠ 0`.
    ///
    /// # Panics
    ///
    /// Panics if `l` is not square.
    pub fn from_lower_factor(l: &CscMatrix) -> Self {
        assert_eq!(l.nrows(), l.ncols(), "level schedule needs a square factor");
        let n = l.ncols();
        let mut levels = vec![0usize; n];
        for j in (0..n).rev() {
            let mut level = 0;
            for &i in l.column_rows(j) {
                if i > j {
                    level = level.max(levels[i] + 1);
                }
            }
            levels[j] = level;
        }
        Self::from_levels(&levels)
    }

    /// Builds the (coarser) schedule from elimination-tree parents: a
    /// column's level is its tree depth, so roots form level 0 and every
    /// column waits for all of its ancestors.
    pub fn from_etree(parent: &[usize]) -> Self {
        debug_assert!(parent
            .iter()
            .enumerate()
            .all(|(j, &p)| p == NO_PARENT || p > j));
        Self::from_levels(&tree_depths(parent))
    }

    /// Number of levels.
    pub fn num_levels(&self) -> usize {
        self.level_ptr.len() - 1
    }

    /// Total number of scheduled columns (the factor order).
    pub fn len(&self) -> usize {
        self.columns.len()
    }

    /// Whether the schedule is empty.
    pub fn is_empty(&self) -> bool {
        self.columns.is_empty()
    }

    /// The columns of level `l`, in ascending index order.
    ///
    /// # Panics
    ///
    /// Panics if `l >= self.num_levels()`.
    pub fn level(&self, l: usize) -> &[usize] {
        &self.columns[self.level_ptr[l]..self.level_ptr[l + 1]]
    }

    /// Iterates over the levels root-downward.
    pub fn levels(&self) -> impl Iterator<Item = &[usize]> + '_ {
        (0..self.num_levels()).map(|l| self.level(l))
    }

    /// Width of the widest level.
    pub fn max_width(&self) -> usize {
        (0..self.num_levels())
            .map(|l| self.level(l).len())
            .max()
            .unwrap_or(0)
    }

    /// Average columns per level (`0.0` for an empty schedule).
    pub fn mean_width(&self) -> f64 {
        if self.num_levels() == 0 {
            0.0
        } else {
            self.len() as f64 / self.num_levels() as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cholesky::CholeskyFactor;
    use crate::coo::TripletMatrix;
    use crate::etree::etree;

    fn path_laplacian(n: usize) -> CscMatrix {
        let mut t = TripletMatrix::new(n, n);
        for i in 0..n - 1 {
            t.add_laplacian_edge(i, i + 1, 1.0);
        }
        for i in 0..n {
            t.push(i, i, 1e-3);
        }
        t.to_csc()
    }

    /// Every column must sit strictly below all of its dependencies.
    fn assert_valid_for(schedule: &LevelSchedule, l: &CscMatrix) {
        let mut level_of = vec![usize::MAX; schedule.len()];
        for (lvl, cols) in schedule.levels().enumerate() {
            for &j in cols {
                level_of[j] = lvl;
            }
        }
        assert!(level_of.iter().all(|&l| l != usize::MAX));
        for j in 0..l.ncols() {
            for &i in l.column_rows(j) {
                if i > j {
                    assert!(
                        level_of[i] < level_of[j],
                        "column {j} at level {} depends on {i} at level {}",
                        level_of[j],
                        level_of[i]
                    );
                }
            }
        }
    }

    #[test]
    fn bidiagonal_factor_is_one_column_per_level() {
        // The factor of a path Laplacian is bidiagonal: a pure chain.
        let a = path_laplacian(5);
        let l = CholeskyFactor::factor(&a).expect("spd").factor_l().clone();
        let schedule = LevelSchedule::from_lower_factor(&l);
        assert_eq!(schedule.num_levels(), 5);
        assert_eq!(schedule.level(0), &[4]);
        assert_eq!(schedule.level(4), &[0]);
        assert_eq!(schedule.max_width(), 1);
        assert_valid_for(&schedule, &l);
    }

    #[test]
    fn diagonal_factor_is_a_single_level() {
        let mut t = TripletMatrix::new(4, 4);
        for j in 0..4 {
            t.push(j, j, 2.0);
        }
        let l = t.to_csc();
        let schedule = LevelSchedule::from_lower_factor(&l);
        assert_eq!(schedule.num_levels(), 1);
        assert_eq!(schedule.level(0), &[0, 1, 2, 3]);
        assert_eq!(schedule.mean_width(), 4.0);
        assert_valid_for(&schedule, &l);
    }

    #[test]
    fn star_factor_parallelizes_the_leaves() {
        // Star with the centre ordered last: all leaves depend only on the
        // centre, so the schedule is centre first, then every leaf at once.
        let mut t = TripletMatrix::new(5, 5);
        for leaf in 0..4 {
            t.add_laplacian_edge(leaf, 4, 1.0);
        }
        t.push(4, 4, 1e-3);
        let l = CholeskyFactor::factor(&t.to_csc())
            .expect("spd")
            .factor_l()
            .clone();
        let schedule = LevelSchedule::from_lower_factor(&l);
        assert_eq!(schedule.num_levels(), 2);
        assert_eq!(schedule.level(0), &[4]);
        assert_eq!(schedule.level(1), &[0, 1, 2, 3]);
        assert_valid_for(&schedule, &l);
    }

    #[test]
    fn etree_schedule_is_valid_but_never_shallower() {
        let mut t = TripletMatrix::new(7, 7);
        for (u, v) in [(0, 3), (1, 3), (2, 4), (3, 5), (4, 5), (5, 6)] {
            t.add_laplacian_edge(u, v, 1.0);
        }
        for i in 0..7 {
            t.push(i, i, 1e-3);
        }
        let a = t.to_csc();
        let l = CholeskyFactor::factor(&a).expect("spd").factor_l().clone();
        let parent = etree(&a);
        let pattern = LevelSchedule::from_lower_factor(&l);
        let tree = LevelSchedule::from_etree(&parent);
        assert_valid_for(&pattern, &l);
        assert_valid_for(&tree, &l);
        assert!(tree.num_levels() >= pattern.num_levels());
        assert_eq!(tree.len(), pattern.len());
    }

    #[test]
    fn empty_schedule() {
        let schedule = LevelSchedule::from_lower_factor(&CscMatrix::zeros(0, 0));
        assert!(schedule.is_empty());
        assert_eq!(schedule.num_levels(), 0);
        assert_eq!(schedule.max_width(), 0);
        assert_eq!(schedule.mean_width(), 0.0);
    }
}
