//! Minimum-degree fill-reducing ordering.
//!
//! This is a quotient-graph minimum-degree ordering in the spirit of AMD /
//! MMD: variables are eliminated one at a time in order of (approximate)
//! external degree, eliminated pivots become *elements*, and elements
//! adjacent to a pivot are absorbed into the new element. Supervariable
//! detection and aggressive absorption are omitted for simplicity; the
//! ordering quality is close to classic minimum degree, which is all the
//! effective-resistance pipeline needs (the ordering only affects fill, not
//! correctness).

use crate::csc::CscMatrix;
use crate::error::SparseError;
use crate::permutation::Permutation;

/// Computes a minimum-degree ordering of a square structurally symmetric
/// matrix. The returned permutation maps new indices to old indices, i.e. the
/// pivot eliminated first is `perm.old(0)`.
///
/// # Errors
///
/// Returns [`SparseError::NotSquare`] for rectangular input.
pub fn amd(a: &CscMatrix) -> Result<Permutation, SparseError> {
    if a.nrows() != a.ncols() {
        return Err(SparseError::NotSquare {
            nrows: a.nrows(),
            ncols: a.ncols(),
        });
    }
    let n = a.ncols();
    if n == 0 {
        return Permutation::from_new_to_old(Vec::new());
    }

    // Variable adjacency (other variables), element adjacency and element
    // member lists of the quotient graph.
    let mut var_adj: Vec<Vec<usize>> = vec![Vec::new(); n];
    for j in 0..n {
        for &i in a.column_rows(j) {
            if i != j {
                var_adj[j].push(i);
            }
        }
        var_adj[j].sort_unstable();
        var_adj[j].dedup();
    }
    let mut var_elems: Vec<Vec<usize>> = vec![Vec::new(); n];
    let mut elem_members: Vec<Vec<usize>> = Vec::new();

    let mut eliminated = vec![false; n];
    let mut degree: Vec<usize> = var_adj.iter().map(|adj| adj.len()).collect();

    // Lazy priority queue of (degree, variable).
    use std::cmp::Reverse;
    use std::collections::BinaryHeap;
    let mut heap: BinaryHeap<Reverse<(usize, usize)>> = BinaryHeap::new();
    for v in 0..n {
        heap.push(Reverse((degree[v], v)));
    }

    let mut order = Vec::with_capacity(n);
    let mut mark = vec![usize::MAX; n];
    let mut stamp = 0usize;

    while order.len() < n {
        // Pop the variable with the smallest up-to-date degree.
        let pivot = loop {
            let Reverse((d, v)) = heap
                .pop()
                .expect("heap cannot be empty before all pivots are chosen");
            if eliminated[v] {
                continue;
            }
            if d != degree[v] {
                // Stale entry; re-insert with the current degree.
                heap.push(Reverse((degree[v], v)));
                continue;
            }
            break v;
        };
        eliminated[pivot] = true;
        order.push(pivot);

        // Build the new element: union of the pivot's variable neighbours and
        // the members of its adjacent elements (excluding eliminated nodes).
        stamp += 1;
        let mut members: Vec<usize> = Vec::new();
        for &v in &var_adj[pivot] {
            if !eliminated[v] && mark[v] != stamp {
                mark[v] = stamp;
                members.push(v);
            }
        }
        for &e in &var_elems[pivot] {
            for &v in &elem_members[e] {
                if !eliminated[v] && mark[v] != stamp {
                    mark[v] = stamp;
                    members.push(v);
                }
            }
            // The absorbed element's member list is no longer needed.
            elem_members[e].clear();
        }
        let absorbed: Vec<usize> = var_elems[pivot].clone();
        let elem_id = elem_members.len();
        elem_members.push(members.clone());

        // Update every member: remove references to the pivot and to absorbed
        // elements, register the new element, and recompute the degree.
        for &v in &members {
            var_adj[v].retain(|&u| u != pivot && !eliminated[u]);
            var_elems[v].retain(|e| !absorbed.contains(e));
            var_elems[v].push(elem_id);

            // Exact degree of v on the quotient graph: |var_adj ∪ element members| - 1.
            stamp += 1;
            mark[v] = stamp;
            let mut d = 0usize;
            for &u in &var_adj[v] {
                if !eliminated[u] && mark[u] != stamp {
                    mark[u] = stamp;
                    d += 1;
                }
            }
            for &e in &var_elems[v] {
                for &u in &elem_members[e] {
                    if !eliminated[u] && u != v && mark[u] != stamp {
                        mark[u] = stamp;
                        d += 1;
                    }
                }
            }
            degree[v] = d;
            heap.push(Reverse((d, v)));
        }
        var_adj[pivot].clear();
        var_elems[pivot].clear();
    }

    Permutation::from_new_to_old(order)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::coo::TripletMatrix;
    use crate::symbolic::SymbolicCholesky;

    fn grid_laplacian(rows: usize, cols: usize) -> CscMatrix {
        let idx = |r: usize, c: usize| r * cols + c;
        let n = rows * cols;
        let mut t = TripletMatrix::new(n, n);
        for r in 0..rows {
            for c in 0..cols {
                if c + 1 < cols {
                    t.add_laplacian_edge(idx(r, c), idx(r, c + 1), 1.0);
                }
                if r + 1 < rows {
                    t.add_laplacian_edge(idx(r, c), idx(r + 1, c), 1.0);
                }
            }
        }
        for i in 0..n {
            t.push(i, i, 1e-3);
        }
        t.to_csc()
    }

    fn star_laplacian(leaves: usize) -> CscMatrix {
        let n = leaves + 1;
        let mut t = TripletMatrix::new(n, n);
        for leaf in 1..n {
            t.add_laplacian_edge(0, leaf, 1.0);
        }
        for i in 0..n {
            t.push(i, i, 1e-3);
        }
        t.to_csc()
    }

    #[test]
    fn returns_a_valid_permutation() {
        let a = grid_laplacian(5, 5);
        let p = amd(&a).expect("square");
        assert_eq!(p.len(), 25);
        let mut seen = [false; 25];
        for i in 0..25 {
            assert!(!seen[p.old(i)]);
            seen[p.old(i)] = true;
        }
    }

    #[test]
    fn star_center_is_eliminated_last() {
        // Eliminating the hub of a star first would create a clique of all
        // leaves; minimum degree must defer it until (almost) the end — it can
        // tie with the final leaf once only two vertices remain.
        let a = star_laplacian(10);
        let p = amd(&a).expect("square");
        assert!(
            p.new(0) >= p.len() - 2,
            "hub eliminated too early: {}",
            p.new(0)
        );
    }

    #[test]
    fn reduces_fill_on_a_grid() {
        let a = grid_laplacian(12, 12);
        let natural = SymbolicCholesky::analyze(&a).expect("square").factor_nnz();
        let p = amd(&a).expect("square");
        let permuted = a.permute_symmetric(&p).expect("square");
        let ordered = SymbolicCholesky::analyze(&permuted)
            .expect("square")
            .factor_nnz();
        assert!(
            ordered < natural,
            "AMD should reduce fill: {ordered} !< {natural}"
        );
    }

    #[test]
    fn handles_empty_and_diagonal_matrices() {
        let empty = CscMatrix::zeros(0, 0);
        assert_eq!(amd(&empty).expect("square").len(), 0);
        let mut t = TripletMatrix::new(3, 3);
        for i in 0..3 {
            t.push(i, i, 1.0);
        }
        let p = amd(&t.to_csc()).expect("square");
        assert_eq!(p.len(), 3);
    }

    #[test]
    fn rejects_rectangular() {
        assert!(amd(&CscMatrix::zeros(2, 3)).is_err());
    }
}
