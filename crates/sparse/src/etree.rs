//! Elimination trees and related symbolic tools.
//!
//! The elimination tree of a symmetric matrix drives both the sparse Cholesky
//! factorization and the depth analysis of the filled graph used by the
//! effective-resistance error bound (Theorem 1 of the paper).

use crate::csc::CscMatrix;

/// Marker for "no parent" in elimination-tree arrays.
pub const NO_PARENT: usize = usize::MAX;

/// Computes the elimination tree of a sparse symmetric matrix.
///
/// Only the upper-triangular part of `a` is referenced (entries `(i, j)` with
/// `i < j`); the matrix is assumed to be structurally symmetric, which holds
/// for graph Laplacians. The returned vector gives the parent of each column
/// in the elimination tree, or [`NO_PARENT`] for roots.
///
/// # Panics
///
/// Panics if `a` is not square.
pub fn etree(a: &CscMatrix) -> Vec<usize> {
    assert_eq!(a.nrows(), a.ncols(), "etree requires a square matrix");
    let n = a.ncols();
    let mut parent = vec![NO_PARENT; n];
    let mut ancestor = vec![NO_PARENT; n];
    for k in 0..n {
        for (i, _) in a.column(k) {
            if i >= k {
                continue;
            }
            // Walk from i up to the root of its current subtree, compressing paths.
            let mut node = i;
            while node != NO_PARENT && node < k {
                let next = ancestor[node];
                ancestor[node] = k;
                if next == NO_PARENT {
                    parent[node] = k;
                    break;
                }
                node = next;
            }
        }
    }
    parent
}

/// Computes the pattern of row `k` of the Cholesky factor ("ereach").
///
/// Given the elimination tree `parent` and the matrix `a` (structurally
/// symmetric; the upper part of column `k` is referenced), the function
/// returns the column indices `i < k` for which `L(k, i)` is structurally
/// nonzero, in topological order (children before ancestors). The `mark`
/// workspace must have length `n` and contain values `< k + 1` on entry
/// when used monotonically with increasing `k`; it is updated in place.
pub fn ereach(
    a: &CscMatrix,
    k: usize,
    parent: &[usize],
    mark: &mut [usize],
    stack: &mut Vec<usize>,
) -> Vec<usize> {
    stack.clear();
    let mut reach = Vec::new();
    mark[k] = k + 1;
    for (i, _) in a.column(k) {
        if i >= k {
            continue;
        }
        // Traverse the path from i to the root of the marked subtree.
        let mut node = i;
        while mark[node] != k + 1 {
            stack.push(node);
            mark[node] = k + 1;
            node = parent[node];
            debug_assert!(node != NO_PARENT, "etree path must reach k");
            if node == NO_PARENT {
                break;
            }
        }
        // Append the path in reverse so the final list is topological.
        while let Some(x) = stack.pop() {
            reach.push(x);
        }
    }
    // The reach currently lists deepest-first segments; the numeric
    // factorization only needs each ancestor to appear after all of its
    // descendants that are present, which holds because each path was pushed
    // root-last. Sorting by index also yields a valid topological order for
    // an elimination tree (ancestors have larger indices), and keeps the
    // accumulation deterministic.
    reach.sort_unstable();
    reach
}

/// Computes a postorder of the elimination forest given by `parent`.
///
/// Returns a permutation-like vector `post` where `post[i]` is the `i`-th node
/// in postorder.
pub fn postorder(parent: &[usize]) -> Vec<usize> {
    let n = parent.len();
    // Build child lists.
    let mut first_child = vec![NO_PARENT; n];
    let mut next_sibling = vec![NO_PARENT; n];
    for i in (0..n).rev() {
        let p = parent[i];
        if p != NO_PARENT {
            next_sibling[i] = first_child[p];
            first_child[p] = i;
        }
    }
    let mut post = Vec::with_capacity(n);
    let mut stack = Vec::new();
    for root in 0..n {
        if parent[root] != NO_PARENT {
            continue;
        }
        // Iterative depth-first traversal emitting nodes in postorder.
        stack.push((root, false));
        while let Some((node, expanded)) = stack.pop() {
            if expanded {
                post.push(node);
            } else {
                stack.push((node, true));
                let mut c = first_child[node];
                while c != NO_PARENT {
                    stack.push((c, false));
                    c = next_sibling[c];
                }
            }
        }
    }
    post
}

/// Depth of every node in the elimination forest: roots have depth 0 and each
/// child is one deeper than its parent.
///
/// Note this is the *tree* depth measured from the roots, used for reporting;
/// the filled-graph depth of the paper (distance to the deepest descendant) is
/// computed in the `effres` crate from the factor pattern itself.
pub fn tree_depths(parent: &[usize]) -> Vec<usize> {
    let n = parent.len();
    let mut depth = vec![usize::MAX; n];
    for mut node in 0..n {
        // Walk up until a node with known depth or a root, remembering the path.
        let mut path = Vec::new();
        while depth[node] == usize::MAX {
            path.push(node);
            let p = parent[node];
            if p == NO_PARENT {
                depth[node] = 0;
                break;
            }
            node = p;
        }
        let mut d = depth[node];
        for &v in path.iter().rev() {
            if depth[v] == usize::MAX {
                d += 1;
                depth[v] = d;
            } else {
                d = depth[v];
            }
        }
    }
    depth
}

/// Number of structural nonzeros in each column of the Cholesky factor
/// (including the diagonal), computed by running [`ereach`] for every row.
///
/// This is an O(nnz(L)) symbolic pass used to pre-size the numeric
/// factorization.
pub fn column_counts(a: &CscMatrix, parent: &[usize]) -> Vec<usize> {
    let n = a.ncols();
    let mut counts = vec![1usize; n]; // diagonal
    let mut mark = vec![0usize; n];
    let mut stack = Vec::new();
    for k in 0..n {
        for i in ereach(a, k, parent, &mut mark, &mut stack) {
            counts[i] += 1;
        }
    }
    counts
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::coo::TripletMatrix;

    /// Laplacian of a path graph 0-1-2-3 plus a small diagonal shift.
    fn path_laplacian(n: usize) -> CscMatrix {
        let mut t = TripletMatrix::new(n, n);
        for i in 0..n - 1 {
            t.add_laplacian_edge(i, i + 1, 1.0);
        }
        for i in 0..n {
            t.push(i, i, 1e-6);
        }
        t.to_csc()
    }

    #[test]
    fn etree_of_path_is_a_chain() {
        let a = path_laplacian(5);
        let parent = etree(&a);
        assert_eq!(parent, vec![1, 2, 3, 4, NO_PARENT]);
    }

    #[test]
    fn etree_of_diagonal_matrix_is_forest_of_roots() {
        let mut t = TripletMatrix::new(3, 3);
        for i in 0..3 {
            t.push(i, i, 1.0);
        }
        let parent = etree(&t.to_csc());
        assert_eq!(parent, vec![NO_PARENT; 3]);
    }

    #[test]
    fn ereach_of_path_returns_previous_column() {
        let a = path_laplacian(4);
        let parent = etree(&a);
        let mut mark = vec![0; 4];
        let mut stack = Vec::new();
        assert!(ereach(&a, 0, &parent, &mut mark, &mut stack).is_empty());
        assert_eq!(ereach(&a, 1, &parent, &mut mark, &mut stack), vec![0]);
        assert_eq!(ereach(&a, 2, &parent, &mut mark, &mut stack), vec![1]);
    }

    #[test]
    fn postorder_visits_children_before_parents() {
        let a = path_laplacian(5);
        let parent = etree(&a);
        let post = postorder(&parent);
        assert_eq!(post.len(), 5);
        let mut position = [0usize; 5];
        for (i, &node) in post.iter().enumerate() {
            position[node] = i;
        }
        for (child, &p) in parent.iter().enumerate() {
            if p != NO_PARENT {
                assert!(position[child] < position[p]);
            }
        }
    }

    #[test]
    fn tree_depths_of_chain() {
        let parent = vec![1, 2, 3, NO_PARENT];
        assert_eq!(tree_depths(&parent), vec![3, 2, 1, 0]);
    }

    #[test]
    fn column_counts_of_path_match_factor() {
        let a = path_laplacian(4);
        let parent = etree(&a);
        // The factor of a tridiagonal matrix is bidiagonal: 2 entries per
        // column except the last.
        assert_eq!(column_counts(&a, &parent), vec![2, 2, 2, 1]);
    }

    #[test]
    fn star_graph_etree_points_to_center_when_center_last() {
        // Star with center = node 3 (largest index): all leaves' parent is 3.
        let mut t = TripletMatrix::new(4, 4);
        for leaf in 0..3 {
            t.add_laplacian_edge(leaf, 3, 1.0);
        }
        for i in 0..4 {
            t.push(i, i, 1e-6);
        }
        let parent = etree(&t.to_csc());
        assert_eq!(parent, vec![3, 3, 3, NO_PARENT]);
    }
}
