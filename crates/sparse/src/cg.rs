//! Conjugate-gradient solvers.
//!
//! The random-projection baseline (WWW'15 \[1\] in the paper) needs an SDD
//! solver for `O(log m)` right-hand sides. The original work uses a
//! combinatorial multigrid; we substitute a preconditioned conjugate-gradient
//! solver with an incomplete-Cholesky preconditioner, which exercises the
//! same code path (repeated Laplacian solves) with comparable asymptotics on
//! the mesh-like graphs of the evaluation.

use crate::csc::CscMatrix;
use crate::error::SparseError;
use crate::ichol::IncompleteCholesky;
use crate::vecops;

/// A linear preconditioner `M ≈ A` applied as `z = M^{-1} r`.
pub trait Preconditioner {
    /// Applies the preconditioner to a residual vector.
    fn apply(&self, r: &[f64]) -> Vec<f64>;
}

/// The identity preconditioner (plain conjugate gradients).
#[derive(Debug, Clone, Copy, Default)]
pub struct IdentityPreconditioner;

impl Preconditioner for IdentityPreconditioner {
    fn apply(&self, r: &[f64]) -> Vec<f64> {
        r.to_vec()
    }
}

/// Jacobi (diagonal) preconditioner.
#[derive(Debug, Clone)]
pub struct JacobiPreconditioner {
    inv_diag: Vec<f64>,
}

impl JacobiPreconditioner {
    /// Builds the preconditioner from the diagonal of `a`.
    ///
    /// # Errors
    ///
    /// Returns [`SparseError::InvalidParameter`] if a diagonal entry is zero
    /// or negative.
    pub fn new(a: &CscMatrix) -> Result<Self, SparseError> {
        let diag = a.diagonal();
        if diag.iter().any(|&d| d <= 0.0) {
            return Err(SparseError::InvalidParameter {
                name: "diagonal",
                message: "Jacobi preconditioner requires a positive diagonal",
            });
        }
        Ok(JacobiPreconditioner {
            inv_diag: diag.iter().map(|d| 1.0 / d).collect(),
        })
    }
}

impl Preconditioner for JacobiPreconditioner {
    fn apply(&self, r: &[f64]) -> Vec<f64> {
        r.iter().zip(&self.inv_diag).map(|(x, d)| x * d).collect()
    }
}

impl Preconditioner for IncompleteCholesky {
    fn apply(&self, r: &[f64]) -> Vec<f64> {
        IncompleteCholesky::apply(self, r)
    }
}

/// Options for the conjugate-gradient iteration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CgOptions {
    /// Relative residual tolerance `||r|| <= tolerance * ||b||`.
    pub tolerance: f64,
    /// Maximum number of iterations.
    pub max_iterations: usize,
}

impl Default for CgOptions {
    fn default() -> Self {
        CgOptions {
            tolerance: 1e-10,
            max_iterations: 10_000,
        }
    }
}

/// Outcome of a conjugate-gradient solve.
#[derive(Debug, Clone, PartialEq)]
pub struct CgSolution {
    /// The computed solution.
    pub x: Vec<f64>,
    /// Number of iterations performed.
    pub iterations: usize,
    /// Final relative residual norm.
    pub relative_residual: f64,
}

/// Solves `A x = b` with preconditioned conjugate gradients.
///
/// # Errors
///
/// Returns [`SparseError::NotSquare`] or [`SparseError::DimensionMismatch`]
/// for inconsistent shapes and [`SparseError::ConvergenceFailure`] when the
/// tolerance is not reached within the iteration budget.
pub fn pcg<P: Preconditioner>(
    a: &CscMatrix,
    b: &[f64],
    preconditioner: &P,
    options: CgOptions,
) -> Result<CgSolution, SparseError> {
    if a.nrows() != a.ncols() {
        return Err(SparseError::NotSquare {
            nrows: a.nrows(),
            ncols: a.ncols(),
        });
    }
    if b.len() != a.nrows() {
        return Err(SparseError::DimensionMismatch {
            context: "pcg right-hand side",
            expected: a.nrows(),
            found: b.len(),
        });
    }
    let n = a.nrows();
    let norm_b = vecops::norm2(b);
    if norm_b == 0.0 {
        return Ok(CgSolution {
            x: vec![0.0; n],
            iterations: 0,
            relative_residual: 0.0,
        });
    }
    let mut x = vec![0.0; n];
    let mut r = b.to_vec();
    let mut z = preconditioner.apply(&r);
    let mut p = z.clone();
    let mut rz = vecops::dot(&r, &z);
    let mut ap = vec![0.0; n];

    for iteration in 0..options.max_iterations {
        let rel = vecops::norm2(&r) / norm_b;
        if rel <= options.tolerance {
            return Ok(CgSolution {
                x,
                iterations: iteration,
                relative_residual: rel,
            });
        }
        a.matvec_into(&p, &mut ap);
        let pap = vecops::dot(&p, &ap);
        if pap <= 0.0 {
            // Breakdown: the matrix is not positive definite along p.
            return Err(SparseError::ConvergenceFailure {
                iterations: iteration,
                residual: rel,
                tolerance: options.tolerance,
            });
        }
        let alpha = rz / pap;
        vecops::axpy(alpha, &p, &mut x);
        vecops::axpy(-alpha, &ap, &mut r);
        z = preconditioner.apply(&r);
        let rz_new = vecops::dot(&r, &z);
        let beta = rz_new / rz;
        rz = rz_new;
        for i in 0..n {
            p[i] = z[i] + beta * p[i];
        }
    }
    let rel = vecops::norm2(&r) / norm_b;
    if rel <= options.tolerance {
        Ok(CgSolution {
            x,
            iterations: options.max_iterations,
            relative_residual: rel,
        })
    } else {
        Err(SparseError::ConvergenceFailure {
            iterations: options.max_iterations,
            residual: rel,
            tolerance: options.tolerance,
        })
    }
}

/// Convenience wrapper: plain conjugate gradients without preconditioning.
///
/// # Errors
///
/// See [`pcg`].
pub fn cg(a: &CscMatrix, b: &[f64], options: CgOptions) -> Result<CgSolution, SparseError> {
    pcg(a, b, &IdentityPreconditioner, options)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::coo::TripletMatrix;
    use crate::ichol::IncompleteCholesky;

    fn grid_laplacian(rows: usize, cols: usize, shift: f64) -> CscMatrix {
        let idx = |r: usize, c: usize| r * cols + c;
        let n = rows * cols;
        let mut t = TripletMatrix::new(n, n);
        for r in 0..rows {
            for c in 0..cols {
                if c + 1 < cols {
                    t.add_laplacian_edge(idx(r, c), idx(r, c + 1), 1.0);
                }
                if r + 1 < rows {
                    t.add_laplacian_edge(idx(r, c), idx(r + 1, c), 1.0);
                }
            }
        }
        for i in 0..n {
            t.push(i, i, shift);
        }
        t.to_csc()
    }

    #[test]
    fn cg_solves_small_system() {
        let a = grid_laplacian(4, 4, 0.1);
        let n = a.ncols();
        let b: Vec<f64> = (0..n).map(|i| (i as f64 * 0.37).cos()).collect();
        let sol = cg(&a, &b, CgOptions::default()).expect("converges");
        assert!(a.residual_inf_norm(&sol.x, &b) < 1e-8);
    }

    #[test]
    fn ic_preconditioner_reduces_iterations() {
        let a = grid_laplacian(20, 20, 1e-4);
        let n = a.ncols();
        let b: Vec<f64> = (0..n).map(|i| ((i * 7919) % 13) as f64 - 6.0).collect();
        let plain = cg(&a, &b, CgOptions::default()).expect("converges");
        let ic = IncompleteCholesky::with_drop_tolerance(&a, 1e-3).expect("factor");
        let pre = pcg(&a, &b, &ic, CgOptions::default()).expect("converges");
        assert!(a.residual_inf_norm(&pre.x, &b) < 1e-6);
        assert!(
            pre.iterations < plain.iterations,
            "IC-PCG ({}) should beat CG ({})",
            pre.iterations,
            plain.iterations
        );
    }

    #[test]
    fn jacobi_preconditioner_works() {
        let a = grid_laplacian(8, 8, 0.5);
        let n = a.ncols();
        let b = vec![1.0; n];
        let jac = JacobiPreconditioner::new(&a).expect("positive diagonal");
        let sol = pcg(&a, &b, &jac, CgOptions::default()).expect("converges");
        assert!(a.residual_inf_norm(&sol.x, &b) < 1e-8);
    }

    #[test]
    fn zero_rhs_returns_zero_solution() {
        let a = grid_laplacian(3, 3, 1.0);
        let sol = cg(&a, &[0.0; 9], CgOptions::default()).expect("trivial");
        assert_eq!(sol.x, vec![0.0; 9]);
        assert_eq!(sol.iterations, 0);
    }

    #[test]
    fn iteration_budget_is_enforced() {
        let a = grid_laplacian(10, 10, 1e-8);
        let b: Vec<f64> = (0..100).map(|i| (i as f64 * 0.61).sin()).collect();
        let opts = CgOptions {
            tolerance: 1e-14,
            max_iterations: 2,
        };
        assert!(matches!(
            cg(&a, &b, opts),
            Err(SparseError::ConvergenceFailure { .. })
        ));
    }

    #[test]
    fn shape_errors_are_reported() {
        let a = grid_laplacian(2, 2, 1.0);
        assert!(cg(&a, &[1.0, 2.0], CgOptions::default()).is_err());
        let rect = CscMatrix::zeros(2, 3);
        assert!(cg(&rect, &[1.0, 2.0], CgOptions::default()).is_err());
    }

    #[test]
    fn jacobi_rejects_nonpositive_diagonal() {
        let mut t = TripletMatrix::new(2, 2);
        t.push(0, 0, 1.0);
        t.push(1, 1, -1.0);
        assert!(JacobiPreconditioner::new(&t.to_csc()).is_err());
    }
}
