//! A persistent worker pool shared across the workspace's parallel stages.
//!
//! Both parallel hot paths of the workspace — the level-scheduled
//! approximate-inverse build and the query service's batched execution — used
//! to spin up their own scoped threads per build / per batch. [`WorkerPool`]
//! replaces those ad-hoc setups with one set of long-lived workers: threads
//! are spawned once, park on a channel of boxed jobs, and are reused by every
//! subsequent build or batch. Build-then-serve deployments construct a single
//! pool and hand clones of the (cheap, `Arc`-backed) handle to both stages.
//!
//! The pool is std-only: an `mpsc` channel distributes `Box<dyn FnOnce()>`
//! jobs to workers that block (park) on the shared receiver when idle. Jobs
//! must be `'static`, so callers share their context through `Arc`s; the
//! submission APIs block until the submitted jobs finish, and worker panics
//! are caught and re-raised on the submitting thread (a panicking job never
//! kills a pool worker, so the pool stays usable).

use std::panic::AssertUnwindSafe;
use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;

type Job = Box<dyn FnOnce() + Send + 'static>;

#[derive(Debug)]
struct PoolInner {
    /// `None` only during shutdown (drop).
    sender: Mutex<Option<Sender<Job>>>,
    threads: usize,
    handles: Mutex<Vec<JoinHandle<()>>>,
}

/// A handle to a persistent pool of worker threads.
///
/// The handle is cheap to clone (`Arc`-backed); all clones refer to the same
/// workers. The pool shuts down — the channel closes and the threads are
/// joined — when the last handle is dropped.
#[derive(Debug, Clone)]
pub struct WorkerPool {
    inner: Arc<PoolInner>,
}

/// Two handles compare equal iff they refer to the same underlying pool.
impl PartialEq for WorkerPool {
    fn eq(&self, other: &Self) -> bool {
        Arc::ptr_eq(&self.inner, &other.inner)
    }
}

impl Eq for WorkerPool {}

impl WorkerPool {
    /// Spawns a pool of `threads` workers (`0` resolves to one per available
    /// core). The workers are named `effres-worker-<i>` and park on the job
    /// channel until work arrives.
    pub fn new(threads: usize) -> Self {
        let threads = if threads == 0 {
            std::thread::available_parallelism()
                .map(std::num::NonZeroUsize::get)
                .unwrap_or(1)
        } else {
            threads
        };
        let (sender, receiver) = channel::<Job>();
        let receiver = Arc::new(Mutex::new(receiver));
        let handles = (0..threads)
            .map(|i| {
                let receiver = Arc::clone(&receiver);
                std::thread::Builder::new()
                    .name(format!("effres-worker-{i}"))
                    .spawn(move || worker_loop(&receiver))
                    .expect("failed to spawn pool worker")
            })
            .collect();
        WorkerPool {
            inner: Arc::new(PoolInner {
                sender: Mutex::new(Some(sender)),
                threads,
                handles: Mutex::new(handles),
            }),
        }
    }

    /// Number of worker threads.
    pub fn threads(&self) -> usize {
        self.inner.threads
    }

    /// Runs `jobs` on the pool and returns their results in submission
    /// order, blocking until every job has finished.
    ///
    /// Jobs beyond the worker count queue up and run as workers free, so
    /// submitting more jobs than [`WorkerPool::threads`] is fine — but jobs
    /// of one `run` call must not synchronize with *each other* (barriers,
    /// rendezvous channels): a job waiting for a queued sibling that no free
    /// worker can pick up would deadlock. The workspace's level-scheduled
    /// build obeys this by synchronizing through `run`'s own completion
    /// barrier, once per level.
    ///
    /// # Panics
    ///
    /// Re-raises the panic of the first panicking job after all jobs of the
    /// call have settled (the worker itself survives).
    pub fn run<T, F>(&self, jobs: Vec<F>) -> Vec<T>
    where
        T: Send + 'static,
        F: FnOnce() -> T + Send + 'static,
    {
        let count = jobs.len();
        let (done, results) = channel::<(usize, std::thread::Result<T>)>();
        {
            let sender = self.inner.sender.lock().expect("pool sender lock poisoned");
            let sender = sender.as_ref().expect("pool is shut down");
            for (index, job) in jobs.into_iter().enumerate() {
                let done = done.clone();
                sender
                    .send(Box::new(move || {
                        let outcome = std::panic::catch_unwind(AssertUnwindSafe(job));
                        // The receiver only disappears if `run` itself
                        // panicked; nothing useful to do with the result then.
                        let _ = done.send((index, outcome));
                    }))
                    .expect("pool workers are gone");
            }
        }
        drop(done);
        let mut slots: Vec<Option<T>> = (0..count).map(|_| None).collect();
        let mut panic: Option<Box<dyn std::any::Any + Send>> = None;
        for _ in 0..count {
            let (index, outcome) = results.recv().expect("pool worker dropped a job");
            match outcome {
                Ok(value) => slots[index] = Some(value),
                Err(payload) => panic = panic.or(Some(payload)),
            }
        }
        if let Some(payload) = panic {
            std::panic::resume_unwind(payload);
        }
        slots
            .into_iter()
            .map(|slot| slot.expect("every job reported exactly once"))
            .collect()
    }
}

fn worker_loop(receiver: &Mutex<Receiver<Job>>) {
    loop {
        // Hold the lock only while receiving: the channel parks the worker
        // until a job (or shutdown) arrives, and the job itself runs with the
        // receiver released so siblings keep draining the queue.
        let job = {
            let receiver = receiver.lock().expect("pool receiver lock poisoned");
            receiver.recv()
        };
        match job {
            Ok(job) => job(),
            Err(_) => return, // all senders dropped: shutdown
        }
    }
}

impl Drop for PoolInner {
    fn drop(&mut self) {
        // Close the channel so the workers' `recv` fails and they exit.
        drop(
            self.sender
                .lock()
                .map(|mut sender| sender.take())
                .unwrap_or_default(),
        );
        let handles =
            std::mem::take(&mut *self.handles.lock().expect("pool handle list lock poisoned"));
        for handle in handles {
            // Worker loops only exit cleanly; a panic here would mean the
            // catch_unwind wrapper is broken, which is worth surfacing.
            handle.join().expect("pool worker panicked outside a job");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn runs_jobs_and_returns_results_in_order() {
        let pool = WorkerPool::new(3);
        assert_eq!(pool.threads(), 3);
        let results = pool.run((0..20).map(|i| move || i * i).collect::<Vec<_>>());
        let expected: Vec<usize> = (0..20).map(|i| i * i).collect();
        assert_eq!(results, expected);
    }

    #[test]
    fn zero_threads_resolves_to_at_least_one() {
        let pool = WorkerPool::new(0);
        assert!(pool.threads() >= 1);
        assert_eq!(pool.run(vec![|| 7usize]), vec![7]);
    }

    #[test]
    fn pool_is_reusable_across_rounds_and_clones() {
        let pool = WorkerPool::new(2);
        let counter = Arc::new(AtomicUsize::new(0));
        for _ in 0..5 {
            let jobs: Vec<_> = (0..4)
                .map(|_| {
                    let counter = Arc::clone(&counter);
                    move || counter.fetch_add(1, Ordering::Relaxed)
                })
                .collect();
            pool.clone().run(jobs);
        }
        assert_eq!(counter.load(Ordering::Relaxed), 20);
    }

    #[test]
    fn more_jobs_than_workers_all_complete() {
        let pool = WorkerPool::new(2);
        let results = pool.run((0..64).map(|i| move || i + 1).collect::<Vec<_>>());
        assert_eq!(results.len(), 64);
        assert!(results.iter().enumerate().all(|(i, &r)| r == i + 1));
    }

    #[test]
    fn job_panic_is_reraised_and_pool_survives() {
        let pool = WorkerPool::new(2);
        let outcome = std::panic::catch_unwind(AssertUnwindSafe(|| {
            pool.run(vec![
                Box::new(|| 1usize) as Box<dyn FnOnce() -> usize + Send>,
                Box::new(|| panic!("job exploded")),
            ]);
        }));
        assert!(outcome.is_err(), "panic must propagate to the caller");
        // The worker that ran the panicking job must still be alive.
        assert_eq!(pool.run(vec![|| 5usize, || 6usize]), vec![5, 6]);
    }

    #[test]
    fn handles_compare_by_identity() {
        let a = WorkerPool::new(1);
        let b = a.clone();
        let c = WorkerPool::new(1);
        assert_eq!(a, b);
        assert_ne!(a, c);
    }
}
