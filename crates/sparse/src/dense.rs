//! Small column-major dense matrices.
//!
//! Dense matrices are used as reference implementations in tests, for Schur
//! complements of small blocks in the power-grid reduction flow, and for the
//! dense parts of the random-projection baseline. They are not intended for
//! large problems.

use crate::error::SparseError;

/// A column-major dense matrix of `f64` values.
#[derive(Debug, Clone, PartialEq)]
pub struct DenseMatrix {
    nrows: usize,
    ncols: usize,
    /// Column-major storage: entry `(i, j)` lives at `data[j * nrows + i]`.
    data: Vec<f64>,
}

impl DenseMatrix {
    /// Creates a zero matrix with the given shape.
    pub fn zeros(nrows: usize, ncols: usize) -> Self {
        DenseMatrix {
            nrows,
            ncols,
            data: vec![0.0; nrows * ncols],
        }
    }

    /// Creates an identity matrix of order `n`.
    pub fn identity(n: usize) -> Self {
        let mut m = DenseMatrix::zeros(n, n);
        for i in 0..n {
            m.set(i, i, 1.0);
        }
        m
    }

    /// Creates a matrix from a closure evaluated at every `(row, column)`.
    pub fn from_fn<F: FnMut(usize, usize) -> f64>(nrows: usize, ncols: usize, mut f: F) -> Self {
        let mut m = DenseMatrix::zeros(nrows, ncols);
        for j in 0..ncols {
            for i in 0..nrows {
                m.set(i, j, f(i, j));
            }
        }
        m
    }

    /// Creates a matrix from row-major data.
    ///
    /// # Errors
    ///
    /// Returns [`SparseError::DimensionMismatch`] if `rows.len() != nrows * ncols`.
    pub fn from_row_major(nrows: usize, ncols: usize, rows: &[f64]) -> Result<Self, SparseError> {
        if rows.len() != nrows * ncols {
            return Err(SparseError::DimensionMismatch {
                context: "DenseMatrix::from_row_major",
                expected: nrows * ncols,
                found: rows.len(),
            });
        }
        Ok(DenseMatrix::from_fn(nrows, ncols, |i, j| {
            rows[i * ncols + j]
        }))
    }

    /// Number of rows.
    pub fn nrows(&self) -> usize {
        self.nrows
    }

    /// Number of columns.
    pub fn ncols(&self) -> usize {
        self.ncols
    }

    /// Value at `(row, col)`.
    ///
    /// # Panics
    ///
    /// Panics if the indices are out of bounds.
    #[inline]
    pub fn get(&self, row: usize, col: usize) -> f64 {
        assert!(row < self.nrows && col < self.ncols, "index out of bounds");
        self.data[col * self.nrows + row]
    }

    /// Sets the value at `(row, col)`.
    ///
    /// # Panics
    ///
    /// Panics if the indices are out of bounds.
    #[inline]
    pub fn set(&mut self, row: usize, col: usize, value: f64) {
        assert!(row < self.nrows && col < self.ncols, "index out of bounds");
        self.data[col * self.nrows + row] = value;
    }

    /// Adds `value` to the entry at `(row, col)`.
    ///
    /// # Panics
    ///
    /// Panics if the indices are out of bounds.
    #[inline]
    pub fn add(&mut self, row: usize, col: usize, value: f64) {
        assert!(row < self.nrows && col < self.ncols, "index out of bounds");
        self.data[col * self.nrows + row] += value;
    }

    /// Borrow of one column as a slice.
    ///
    /// # Panics
    ///
    /// Panics if `col >= self.ncols()`.
    pub fn column(&self, col: usize) -> &[f64] {
        assert!(col < self.ncols, "column out of bounds");
        &self.data[col * self.nrows..(col + 1) * self.nrows]
    }

    /// Mutable borrow of one column.
    ///
    /// # Panics
    ///
    /// Panics if `col >= self.ncols()`.
    pub fn column_mut(&mut self, col: usize) -> &mut [f64] {
        assert!(col < self.ncols, "column out of bounds");
        &mut self.data[col * self.nrows..(col + 1) * self.nrows]
    }

    /// Matrix-vector product `A x`.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != self.ncols()`.
    pub fn matvec(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(x.len(), self.ncols, "matvec: length mismatch");
        let mut y = vec![0.0; self.nrows];
        for j in 0..self.ncols {
            let xj = x[j];
            if xj == 0.0 {
                continue;
            }
            let col = self.column(j);
            for i in 0..self.nrows {
                y[i] += col[i] * xj;
            }
        }
        y
    }

    /// Matrix product `A * B`.
    ///
    /// # Errors
    ///
    /// Returns [`SparseError::DimensionMismatch`] if the inner dimensions differ.
    pub fn matmul(&self, other: &DenseMatrix) -> Result<DenseMatrix, SparseError> {
        if self.ncols != other.nrows {
            return Err(SparseError::DimensionMismatch {
                context: "DenseMatrix::matmul",
                expected: self.ncols,
                found: other.nrows,
            });
        }
        let mut out = DenseMatrix::zeros(self.nrows, other.ncols);
        for j in 0..other.ncols {
            for k in 0..self.ncols {
                let bkj = other.get(k, j);
                if bkj == 0.0 {
                    continue;
                }
                for i in 0..self.nrows {
                    out.add(i, j, self.get(i, k) * bkj);
                }
            }
        }
        Ok(out)
    }

    /// Transposed copy of the matrix.
    pub fn transpose(&self) -> DenseMatrix {
        DenseMatrix::from_fn(self.ncols, self.nrows, |i, j| self.get(j, i))
    }

    /// Dense Cholesky factorization `A = L L^T`, returning the lower factor.
    ///
    /// Used as a reference implementation for the sparse factorization and to
    /// factor small Schur-complement blocks.
    ///
    /// # Errors
    ///
    /// Returns [`SparseError::NotSquare`] if the matrix is not square and
    /// [`SparseError::NotPositiveDefinite`] if a nonpositive pivot occurs.
    pub fn cholesky(&self) -> Result<DenseMatrix, SparseError> {
        if self.nrows != self.ncols {
            return Err(SparseError::NotSquare {
                nrows: self.nrows,
                ncols: self.ncols,
            });
        }
        let n = self.nrows;
        let mut l = DenseMatrix::zeros(n, n);
        for j in 0..n {
            let mut d = self.get(j, j);
            for k in 0..j {
                let ljk = l.get(j, k);
                d -= ljk * ljk;
            }
            if d <= 0.0 {
                return Err(SparseError::NotPositiveDefinite {
                    column: j,
                    pivot: d,
                });
            }
            let dj = d.sqrt();
            l.set(j, j, dj);
            for i in (j + 1)..n {
                let mut s = self.get(i, j);
                for k in 0..j {
                    s -= l.get(i, k) * l.get(j, k);
                }
                l.set(i, j, s / dj);
            }
        }
        Ok(l)
    }

    /// Solves `A x = b` for symmetric positive definite `A` via dense Cholesky.
    ///
    /// # Errors
    ///
    /// Propagates errors from [`DenseMatrix::cholesky`] and returns
    /// [`SparseError::DimensionMismatch`] if `b` has the wrong length.
    pub fn solve_spd(&self, b: &[f64]) -> Result<Vec<f64>, SparseError> {
        if b.len() != self.nrows {
            return Err(SparseError::DimensionMismatch {
                context: "DenseMatrix::solve_spd",
                expected: self.nrows,
                found: b.len(),
            });
        }
        let l = self.cholesky()?;
        let n = self.nrows;
        // Forward solve L y = b.
        let mut y = b.to_vec();
        for i in 0..n {
            for k in 0..i {
                let lik = l.get(i, k);
                y[i] -= lik * y[k];
            }
            y[i] /= l.get(i, i);
        }
        // Backward solve L^T x = y.
        let mut x = y;
        for i in (0..n).rev() {
            for k in (i + 1)..n {
                x[i] -= l.get(k, i) * x[k];
            }
            x[i] /= l.get(i, i);
        }
        Ok(x)
    }

    /// Inverse of a symmetric positive definite matrix, column by column.
    ///
    /// # Errors
    ///
    /// Propagates errors from [`DenseMatrix::solve_spd`].
    pub fn inverse_spd(&self) -> Result<DenseMatrix, SparseError> {
        let n = self.nrows;
        let mut inv = DenseMatrix::zeros(n, n);
        let mut e = vec![0.0; n];
        for j in 0..n {
            e[j] = 1.0;
            let col = self.solve_spd(&e)?;
            for i in 0..n {
                inv.set(i, j, col[i]);
            }
            e[j] = 0.0;
        }
        Ok(inv)
    }

    /// Frobenius norm.
    pub fn frobenius_norm(&self) -> f64 {
        self.data.iter().map(|v| v * v).sum::<f64>().sqrt()
    }

    /// Maximum absolute entry-wise difference with another matrix of the same shape.
    ///
    /// # Panics
    ///
    /// Panics if the shapes differ.
    pub fn max_abs_diff(&self, other: &DenseMatrix) -> f64 {
        assert_eq!(self.nrows, other.nrows, "shape mismatch");
        assert_eq!(self.ncols, other.ncols, "shape mismatch");
        self.data
            .iter()
            .zip(&other.data)
            .fold(0.0_f64, |m, (a, b)| m.max((a - b).abs()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spd3() -> DenseMatrix {
        DenseMatrix::from_row_major(3, 3, &[4.0, -1.0, 0.0, -1.0, 5.0, -2.0, 0.0, -2.0, 6.0])
            .expect("shape")
    }

    #[test]
    fn identity_matvec_is_identity() {
        let eye = DenseMatrix::identity(4);
        let x = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(eye.matvec(&x), x.to_vec());
    }

    #[test]
    fn cholesky_reconstructs_matrix() {
        let a = spd3();
        let l = a.cholesky().expect("spd");
        let llt = l.matmul(&l.transpose()).expect("shapes");
        assert!(a.max_abs_diff(&llt) < 1e-12);
    }

    #[test]
    fn solve_spd_gives_small_residual() {
        let a = spd3();
        let b = [1.0, 2.0, 3.0];
        let x = a.solve_spd(&b).expect("spd");
        let ax = a.matvec(&x);
        for (axi, bi) in ax.iter().zip(&b) {
            assert!((axi - bi).abs() < 1e-12);
        }
    }

    #[test]
    fn inverse_spd_times_matrix_is_identity() {
        let a = spd3();
        let inv = a.inverse_spd().expect("spd");
        let prod = a.matmul(&inv).expect("shapes");
        assert!(prod.max_abs_diff(&DenseMatrix::identity(3)) < 1e-12);
    }

    #[test]
    fn cholesky_rejects_indefinite() {
        let a = DenseMatrix::from_row_major(2, 2, &[1.0, 2.0, 2.0, 1.0]).expect("shape");
        assert!(matches!(
            a.cholesky(),
            Err(SparseError::NotPositiveDefinite { .. })
        ));
    }

    #[test]
    fn cholesky_rejects_non_square() {
        let a = DenseMatrix::zeros(2, 3);
        assert!(matches!(a.cholesky(), Err(SparseError::NotSquare { .. })));
    }

    #[test]
    fn from_row_major_checks_length() {
        assert!(DenseMatrix::from_row_major(2, 2, &[1.0]).is_err());
    }

    #[test]
    fn matmul_checks_inner_dimension() {
        let a = DenseMatrix::zeros(2, 3);
        let b = DenseMatrix::zeros(2, 2);
        assert!(a.matmul(&b).is_err());
    }

    #[test]
    fn transpose_roundtrip() {
        let a = DenseMatrix::from_fn(2, 3, |i, j| (i * 3 + j) as f64);
        assert_eq!(a.transpose().transpose(), a);
    }
}
