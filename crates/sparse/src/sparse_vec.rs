//! Sparse vectors with sorted indices.
//!
//! [`SparseVec`] is the column representation used by the approximate-inverse
//! algorithm (Alg. 2 of the paper): each column of the approximate inverse is
//! a short sorted list of `(index, value)` pairs, and columns are combined by
//! scaled sparse accumulation.

use crate::vecops;

/// A sparse vector storing `(index, value)` pairs with strictly increasing indices.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct SparseVec {
    dim: usize,
    indices: Vec<usize>,
    values: Vec<f64>,
}

impl SparseVec {
    /// Creates an empty sparse vector of dimension `dim`.
    pub fn new(dim: usize) -> Self {
        SparseVec {
            dim,
            indices: Vec::new(),
            values: Vec::new(),
        }
    }

    /// Creates a sparse vector from sorted parallel arrays.
    ///
    /// # Panics
    ///
    /// Panics if the arrays differ in length, indices are not strictly
    /// increasing, or an index is out of bounds.
    pub fn from_sorted(dim: usize, indices: Vec<usize>, values: Vec<f64>) -> Self {
        assert_eq!(indices.len(), values.len(), "index/value length mismatch");
        for w in indices.windows(2) {
            assert!(w[0] < w[1], "indices must be strictly increasing");
        }
        if let Some(&last) = indices.last() {
            assert!(last < dim, "index out of bounds");
        }
        SparseVec {
            dim,
            indices,
            values,
        }
    }

    /// Creates a unit vector `e_i / scale` — i.e. a single entry `value` at `index`.
    ///
    /// # Panics
    ///
    /// Panics if `index >= dim`.
    pub fn single(dim: usize, index: usize, value: f64) -> Self {
        assert!(index < dim, "index out of bounds");
        SparseVec {
            dim,
            indices: vec![index],
            values: vec![value],
        }
    }

    /// Builds a sparse vector from a dense slice, keeping nonzero entries.
    pub fn from_dense(x: &[f64]) -> Self {
        let mut indices = Vec::new();
        let mut values = Vec::new();
        for (i, &v) in x.iter().enumerate() {
            if v != 0.0 {
                indices.push(i);
                values.push(v);
            }
        }
        SparseVec {
            dim: x.len(),
            indices,
            values,
        }
    }

    /// Dimension of the vector.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Number of stored entries.
    pub fn nnz(&self) -> usize {
        self.indices.len()
    }

    /// Whether no entries are stored.
    pub fn is_empty(&self) -> bool {
        self.indices.is_empty()
    }

    /// Stored indices (strictly increasing).
    pub fn indices(&self) -> &[usize] {
        &self.indices
    }

    /// Stored values, parallel to [`SparseVec::indices`].
    pub fn values(&self) -> &[f64] {
        &self.values
    }

    /// Iterates over stored `(index, value)` pairs in index order.
    pub fn iter(&self) -> impl Iterator<Item = (usize, f64)> + '_ {
        self.indices.iter().zip(&self.values).map(|(&i, &v)| (i, v))
    }

    /// Value at `index` (zero if not stored).
    ///
    /// # Panics
    ///
    /// Panics if `index >= self.dim()`.
    pub fn get(&self, index: usize) -> f64 {
        assert!(index < self.dim, "index out of bounds");
        match self.indices.binary_search(&index) {
            Ok(pos) => self.values[pos],
            Err(_) => 0.0,
        }
    }

    /// Converts to a dense vector.
    pub fn to_dense(&self) -> Vec<f64> {
        let mut out = vec![0.0; self.dim];
        for (i, v) in self.iter() {
            out[i] = v;
        }
        out
    }

    /// 1-norm (sum of absolute values).
    pub fn norm1(&self) -> f64 {
        vecops::norm1(&self.values)
    }

    /// Euclidean norm.
    pub fn norm2(&self) -> f64 {
        vecops::norm2(&self.values)
    }

    /// Squared Euclidean norm.
    pub fn norm2_squared(&self) -> f64 {
        self.values.iter().map(|v| v * v).sum()
    }

    /// Squared Euclidean distance to another sparse vector of the same dimension.
    ///
    /// This is the kernel of the effective-resistance evaluation
    /// `R(p, q) ≈ ||z̃_p - z̃_q||²`.
    ///
    /// # Panics
    ///
    /// Panics if the dimensions differ.
    pub fn distance_squared(&self, other: &SparseVec) -> f64 {
        assert_eq!(self.dim, other.dim, "dimension mismatch");
        vecops::sparse_distance_squared(&self.indices, &self.values, &other.indices, &other.values)
    }

    /// Dot product with another sparse vector of the same dimension.
    ///
    /// # Panics
    ///
    /// Panics if the dimensions differ.
    pub fn dot(&self, other: &SparseVec) -> f64 {
        assert_eq!(self.dim, other.dim, "dimension mismatch");
        vecops::sparse_dot(&self.indices, &self.values, &other.indices, &other.values)
    }

    /// 1-norm of the difference with another sparse vector.
    ///
    /// # Panics
    ///
    /// Panics if the dimensions differ.
    pub fn diff_norm1(&self, other: &SparseVec) -> f64 {
        assert_eq!(self.dim, other.dim, "dimension mismatch");
        vecops::sparse_diff_norm1(&self.indices, &self.values, &other.indices, &other.values)
    }

    /// Keeps only the `keep` largest-magnitude entries, dropping the rest.
    ///
    /// This is the `trunc_k` operation of Alg. 2: entries are ranked by
    /// absolute value and the smallest ones are removed. Ties are broken in
    /// favour of keeping smaller indices so the result is deterministic.
    pub fn truncate_to(&self, keep: usize) -> SparseVec {
        if keep >= self.nnz() {
            return self.clone();
        }
        // Rank entries by |value| descending, index ascending.
        let mut order: Vec<usize> = (0..self.nnz()).collect();
        order.sort_unstable_by(|&a, &b| {
            self.values[b]
                .abs()
                .partial_cmp(&self.values[a].abs())
                .expect("no NaN values in sparse vector")
                .then(self.indices[a].cmp(&self.indices[b]))
        });
        let mut kept: Vec<usize> = order[..keep].to_vec();
        kept.sort_unstable();
        let indices: Vec<usize> = kept.iter().map(|&p| self.indices[p]).collect();
        let values: Vec<f64> = kept.iter().map(|&p| self.values[p]).collect();
        SparseVec {
            dim: self.dim,
            indices,
            values,
        }
    }
}

/// A dense accumulator ("scatter workspace") used to build sparse vectors by
/// summing scaled sparse vectors, as the approximate-inverse algorithm does.
///
/// The accumulator has O(dim) memory but every operation touches only the
/// nonzero pattern, so repeated use is cheap.
#[derive(Debug, Clone)]
pub struct SparseAccumulator {
    values: Vec<f64>,
    occupied: Vec<bool>,
    pattern: Vec<usize>,
}

impl SparseAccumulator {
    /// Creates an empty accumulator of dimension `dim`.
    pub fn new(dim: usize) -> Self {
        SparseAccumulator {
            values: vec![0.0; dim],
            occupied: vec![false; dim],
            pattern: Vec::new(),
        }
    }

    /// Dimension of the accumulator.
    pub fn dim(&self) -> usize {
        self.values.len()
    }

    /// Number of positions currently holding a value.
    pub fn nnz(&self) -> usize {
        self.pattern.len()
    }

    /// Adds `value` at `index`.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of bounds.
    #[inline]
    pub fn add(&mut self, index: usize, value: f64) {
        assert!(index < self.values.len(), "index out of bounds");
        if !self.occupied[index] {
            self.occupied[index] = true;
            self.pattern.push(index);
            self.values[index] = value;
        } else {
            self.values[index] += value;
        }
    }

    /// Adds `alpha * x` to the accumulator.
    ///
    /// # Panics
    ///
    /// Panics if the dimensions differ.
    pub fn axpy(&mut self, alpha: f64, x: &SparseVec) {
        assert_eq!(x.dim(), self.dim(), "dimension mismatch");
        self.axpy_raw(alpha, x.indices(), x.values());
    }

    /// Adds `alpha * x` where `x` is given as parallel index/value slices —
    /// the column representation of a flat CSC arena (see the
    /// approximate-inverse column store in the `effres` crate).
    ///
    /// # Panics
    ///
    /// Panics if the slices differ in length or an index is out of bounds.
    pub fn axpy_raw(&mut self, alpha: f64, indices: &[usize], values: &[f64]) {
        assert_eq!(indices.len(), values.len(), "index/value length mismatch");
        for (&i, &v) in indices.iter().zip(values) {
            self.add(i, alpha * v);
        }
    }

    /// [`SparseAccumulator::axpy_raw`] over `u32` indices — the narrowed
    /// index width of the flat CSC arena, which stores row indices as `u32`
    /// so the query path moves half the index bytes.
    ///
    /// # Panics
    ///
    /// Panics if the slices differ in length or an index is out of bounds.
    pub fn axpy_raw_u32(&mut self, alpha: f64, indices: &[u32], values: &[f64]) {
        assert_eq!(indices.len(), values.len(), "index/value length mismatch");
        for (&i, &v) in indices.iter().zip(values) {
            self.add(i as usize, alpha * v);
        }
    }

    /// Extracts the accumulated sparse vector and clears the accumulator.
    ///
    /// Entries that are exactly zero are kept (the caller decides about
    /// numerical dropping); indices are sorted.
    pub fn take(&mut self) -> SparseVec {
        self.pattern.sort_unstable();
        let indices = std::mem::take(&mut self.pattern);
        let values: Vec<f64> = indices.iter().map(|&i| self.values[i]).collect();
        for &i in &indices {
            self.values[i] = 0.0;
            self.occupied[i] = false;
        }
        SparseVec {
            dim: self.dim(),
            indices,
            values,
        }
    }

    /// Appends the accumulated entries, in sorted index order, to the ends of
    /// `rows` and `vals`, clears the accumulator and returns the number of
    /// entries appended.
    ///
    /// This is the allocation-free counterpart of
    /// [`SparseAccumulator::take`]: arena-style column stores call it to
    /// deposit a finished column directly at the tail of their flat buffers.
    pub fn take_append(&mut self, rows: &mut Vec<usize>, vals: &mut Vec<f64>) -> usize {
        self.pattern.sort_unstable();
        let nnz = self.pattern.len();
        rows.reserve(nnz);
        vals.reserve(nnz);
        for &i in &self.pattern {
            rows.push(i);
            vals.push(self.values[i]);
            self.values[i] = 0.0;
            self.occupied[i] = false;
        }
        self.pattern.clear();
        nnz
    }

    /// [`SparseAccumulator::take_append`] into `u32` row buffers (the arena's
    /// narrowed index width).
    ///
    /// # Panics
    ///
    /// Panics if an accumulated index does not fit in `u32`; arena builders
    /// guard their dimension (`n ≤ u32::MAX`) before accumulating, so this
    /// only fires on a caller bug.
    pub fn take_append_u32(&mut self, rows: &mut Vec<u32>, vals: &mut Vec<f64>) -> usize {
        self.pattern.sort_unstable();
        let nnz = self.pattern.len();
        rows.reserve(nnz);
        vals.reserve(nnz);
        for &i in &self.pattern {
            rows.push(u32::try_from(i).expect("accumulator index exceeds u32"));
            vals.push(self.values[i]);
            self.values[i] = 0.0;
            self.occupied[i] = false;
        }
        self.pattern.clear();
        nnz
    }

    /// Clears the accumulator without extracting a vector.
    pub fn clear(&mut self) {
        for &i in &self.pattern {
            self.values[i] = 0.0;
            self.occupied[i] = false;
        }
        self.pattern.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_dense_round_trips() {
        let x = vec![0.0, 1.5, 0.0, -2.0];
        let s = SparseVec::from_dense(&x);
        assert_eq!(s.nnz(), 2);
        assert_eq!(s.to_dense(), x);
        assert_eq!(s.get(1), 1.5);
        assert_eq!(s.get(0), 0.0);
    }

    #[test]
    fn norms() {
        let s = SparseVec::from_sorted(4, vec![0, 3], vec![3.0, -4.0]);
        assert_eq!(s.norm1(), 7.0);
        assert_eq!(s.norm2(), 5.0);
        assert_eq!(s.norm2_squared(), 25.0);
    }

    #[test]
    fn distance_and_dot_match_dense() {
        let a = SparseVec::from_sorted(5, vec![0, 2, 4], vec![1.0, 2.0, 3.0]);
        let b = SparseVec::from_sorted(5, vec![1, 2], vec![-1.0, 5.0]);
        let da = a.to_dense();
        let db = b.to_dense();
        let expected_d2: f64 = da.iter().zip(&db).map(|(x, y)| (x - y) * (x - y)).sum();
        let expected_dot: f64 = da.iter().zip(&db).map(|(x, y)| x * y).sum();
        let expected_l1: f64 = da.iter().zip(&db).map(|(x, y)| (x - y).abs()).sum();
        assert!((a.distance_squared(&b) - expected_d2).abs() < 1e-14);
        assert!((a.dot(&b) - expected_dot).abs() < 1e-14);
        assert!((a.diff_norm1(&b) - expected_l1).abs() < 1e-14);
    }

    #[test]
    fn truncate_keeps_largest() {
        let s = SparseVec::from_sorted(6, vec![0, 1, 2, 3], vec![0.1, -5.0, 0.2, 3.0]);
        let t = s.truncate_to(2);
        assert_eq!(t.indices(), &[1, 3]);
        assert_eq!(t.values(), &[-5.0, 3.0]);
        // Truncating to more than nnz is a no-op.
        assert_eq!(s.truncate_to(10), s);
    }

    #[test]
    fn accumulator_axpy_and_take() {
        let mut acc = SparseAccumulator::new(4);
        let a = SparseVec::from_sorted(4, vec![0, 2], vec![1.0, 1.0]);
        let b = SparseVec::from_sorted(4, vec![2, 3], vec![1.0, 2.0]);
        acc.axpy(2.0, &a);
        acc.axpy(-1.0, &b);
        let out = acc.take();
        assert_eq!(out.to_dense(), vec![2.0, 0.0, 1.0, -2.0]);
        // Accumulator reusable after take.
        acc.add(1, 7.0);
        let out2 = acc.take();
        assert_eq!(out2.to_dense(), vec![0.0, 7.0, 0.0, 0.0]);
    }

    #[test]
    fn accumulator_take_append_matches_take() {
        let mut a = SparseAccumulator::new(5);
        let mut b = SparseAccumulator::new(5);
        let x = SparseVec::from_sorted(5, vec![0, 2, 4], vec![1.0, -2.0, 3.0]);
        a.axpy(2.0, &x);
        a.add(1, 0.5);
        b.axpy_raw(2.0, x.indices(), x.values());
        b.add(1, 0.5);
        let taken = a.take();
        let mut rows = vec![9usize]; // pre-existing tail content must survive
        let mut vals = vec![7.0];
        let nnz = b.take_append(&mut rows, &mut vals);
        assert_eq!(nnz, taken.nnz());
        assert_eq!(&rows[1..], taken.indices());
        assert_eq!(&vals[1..], taken.values());
        assert_eq!((rows[0], vals[0]), (9, 7.0));
        // Both accumulators are reusable afterwards.
        a.add(3, 1.0);
        b.add(3, 1.0);
        assert_eq!(a.take().to_dense(), b.take().to_dense());
    }

    #[test]
    fn accumulator_clear_resets() {
        let mut acc = SparseAccumulator::new(3);
        acc.add(0, 1.0);
        acc.clear();
        assert_eq!(acc.nnz(), 0);
        let out = acc.take();
        assert!(out.is_empty());
    }

    #[test]
    #[should_panic(expected = "strictly increasing")]
    fn from_sorted_rejects_unsorted() {
        let _ = SparseVec::from_sorted(3, vec![1, 0], vec![1.0, 2.0]);
    }
}
