//! Full sparse Cholesky factorization.
//!
//! The factorization is the classic *up-looking* algorithm: row `k` of the
//! factor is computed by a sparse triangular solve against the previously
//! computed columns, with the nonzero pattern of the row provided by the
//! elimination-tree reach ([`crate::etree::ereach`]). The implementation
//! mirrors the structure of `cs_chol` in Davis, *Direct Methods for Sparse
//! Linear Systems* — the same reference the paper cites for the structural
//! properties of the factor.

use crate::csc::CscMatrix;
use crate::error::SparseError;
use crate::etree;
use crate::permutation::Permutation;
use crate::symbolic::SymbolicCholesky;
use crate::trisolve;

/// A sparse Cholesky factorization `P A P^T = L L^T`.
///
/// The factor `L` is lower triangular in CSC format with the diagonal entry
/// stored first in every column. When a fill-reducing permutation is used the
/// factor refers to the permuted matrix; [`CholeskyFactor::solve`] applies
/// the permutation transparently.
#[derive(Debug, Clone)]
pub struct CholeskyFactor {
    l: CscMatrix,
    perm: Permutation,
}

impl CholeskyFactor {
    /// Factors a sparse symmetric positive definite matrix with the natural
    /// (identity) ordering.
    ///
    /// # Errors
    ///
    /// Returns [`SparseError::NotSquare`] for rectangular input and
    /// [`SparseError::NotPositiveDefinite`] when a nonpositive pivot is
    /// encountered.
    pub fn factor(a: &CscMatrix) -> Result<Self, SparseError> {
        Self::factor_permuted(a, Permutation::identity(a.ncols()))
    }

    /// Factors `P A P^T` where `P` is described by `perm` (new-to-old order).
    ///
    /// # Errors
    ///
    /// Same as [`CholeskyFactor::factor`], plus
    /// [`SparseError::DimensionMismatch`] if the permutation length does not
    /// match the matrix order.
    pub fn factor_permuted(a: &CscMatrix, perm: Permutation) -> Result<Self, SparseError> {
        if a.nrows() != a.ncols() {
            return Err(SparseError::NotSquare {
                nrows: a.nrows(),
                ncols: a.ncols(),
            });
        }
        let work = if perm.is_identity() {
            a.clone()
        } else {
            a.permute_symmetric(&perm)?
        };
        let l = factor_up_looking(&work)?;
        Ok(CholeskyFactor { l, perm })
    }

    /// The lower-triangular factor `L` (of the permuted matrix).
    pub fn factor_l(&self) -> &CscMatrix {
        &self.l
    }

    /// The fill-reducing permutation used (identity when none).
    pub fn permutation(&self) -> &Permutation {
        &self.perm
    }

    /// Number of nonzeros in the factor.
    pub fn nnz(&self) -> usize {
        self.l.nnz()
    }

    /// Order of the factored matrix.
    pub fn order(&self) -> usize {
        self.l.ncols()
    }

    /// Solves `A x = b`.
    ///
    /// # Panics
    ///
    /// Panics if `b.len()` differs from the matrix order.
    pub fn solve(&self, b: &[f64]) -> Vec<f64> {
        assert_eq!(b.len(), self.order(), "solve: rhs length mismatch");
        // Permute rhs, solve in permuted space, permute back.
        let mut pb = self.perm.apply(b);
        trisolve::solve_cholesky(&self.l, &mut pb);
        self.perm.apply_inverse(&pb)
    }

    /// Solves `A X = B` for several right-hand sides given as rows of a flat
    /// slice (each of length `n`), returning the solutions in the same layout.
    ///
    /// # Panics
    ///
    /// Panics if `b.len()` is not a multiple of the matrix order.
    pub fn solve_many(&self, b: &[f64]) -> Vec<f64> {
        let n = self.order();
        assert!(
            b.len().is_multiple_of(n),
            "solve_many: rhs length must be a multiple of n"
        );
        let mut out = Vec::with_capacity(b.len());
        for chunk in b.chunks(n) {
            out.extend_from_slice(&self.solve(chunk));
        }
        out
    }

    /// Log-determinant of `A` (twice the sum of the log of the factor's
    /// diagonal), useful for sanity checks in tests.
    pub fn log_determinant(&self) -> f64 {
        let mut s = 0.0;
        for j in 0..self.order() {
            s += self.l.get(j, j).ln();
        }
        2.0 * s
    }
}

/// Up-looking numeric factorization of a (permuted) matrix.
fn factor_up_looking(a: &CscMatrix) -> Result<CscMatrix, SparseError> {
    let n = a.ncols();
    let sym = SymbolicCholesky::analyze(a)?;
    let parent = sym.parent();
    let counts = sym.column_counts();

    // Column pointers of L from the symbolic counts.
    let mut colptr = vec![0usize; n + 1];
    for j in 0..n {
        colptr[j + 1] = colptr[j] + counts[j];
    }
    let nnz = colptr[n];
    let mut rowidx = vec![0usize; nnz];
    let mut values = vec![0.0f64; nnz];
    // next[j]: position where the next entry of column j will be written.
    let mut next = colptr.clone();
    // Diagonal entries go first in each column; reserve the slot now.
    for j in 0..n {
        rowidx[next[j]] = j;
        next[j] += 1;
    }
    // Dense workspace for the current row.
    let mut x = vec![0.0f64; n];
    let mut mark = vec![0usize; n];
    let mut stack: Vec<usize> = Vec::new();

    for k in 0..n {
        // Scatter the upper part of column k of A (rows <= k) into x.
        let mut d = 0.0;
        for (i, v) in a.column(k) {
            if i < k {
                x[i] = v;
            } else if i == k {
                d = v;
            }
        }
        // Pattern of row k of L, in topological (ascending-index) order.
        let reach = etree::ereach(a, k, parent, &mut mark, &mut stack);
        for &i in &reach {
            // l_ki = x[i] / L(i, i); the diagonal is the first entry of column i.
            let diag = values[colptr[i]];
            let lki = x[i] / diag;
            x[i] = 0.0;
            // Sparse update of x with the rest of column i (rows > i).
            for p in (colptr[i] + 1)..next[i] {
                x[rowidx[p]] -= values[p] * lki;
            }
            d -= lki * lki;
            // Store L(k, i) at the next free slot of column i.
            let slot = next[i];
            rowidx[slot] = k;
            values[slot] = lki;
            next[i] += 1;
        }
        if d <= 0.0 {
            return Err(SparseError::NotPositiveDefinite {
                column: k,
                pivot: d,
            });
        }
        values[colptr[k]] = d.sqrt();
        // Reset any stray workspace entries from rows beyond the reach: x was
        // only written at indices < k (cleared in the loop) and at k itself
        // (never written), so nothing else to clear.
    }

    CscMatrix::from_raw(n, n, colptr, rowidx, values)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::coo::TripletMatrix;
    use crate::dense::DenseMatrix;

    fn grid_laplacian(rows: usize, cols: usize, shift: f64) -> CscMatrix {
        let idx = |r: usize, c: usize| r * cols + c;
        let n = rows * cols;
        let mut t = TripletMatrix::new(n, n);
        for r in 0..rows {
            for c in 0..cols {
                if c + 1 < cols {
                    t.add_laplacian_edge(idx(r, c), idx(r, c + 1), 1.0);
                }
                if r + 1 < rows {
                    t.add_laplacian_edge(idx(r, c), idx(r + 1, c), 1.0);
                }
            }
        }
        for i in 0..n {
            t.push(i, i, shift);
        }
        t.to_csc()
    }

    #[test]
    fn factor_reconstructs_small_spd_matrix() {
        let a = grid_laplacian(3, 3, 0.5);
        let chol = CholeskyFactor::factor(&a).expect("spd");
        let l = chol.factor_l();
        let llt = l.matmul(&l.transpose()).expect("shapes");
        assert!(llt.to_dense().max_abs_diff(&a.to_dense()) < 1e-12);
    }

    #[test]
    fn factor_matches_dense_cholesky() {
        let a = grid_laplacian(3, 2, 1.0);
        let sparse_l = CholeskyFactor::factor(&a).expect("spd");
        let dense_l = a.to_dense().cholesky().expect("spd");
        assert!(sparse_l.factor_l().to_dense().max_abs_diff(&dense_l) < 1e-12);
    }

    #[test]
    fn solve_gives_small_residual() {
        let a = grid_laplacian(5, 4, 0.1);
        let chol = CholeskyFactor::factor(&a).expect("spd");
        let n = a.ncols();
        let b: Vec<f64> = (0..n).map(|i| (i as f64).sin() + 2.0).collect();
        let x = chol.solve(&b);
        assert!(a.residual_inf_norm(&x, &b) < 1e-10);
    }

    #[test]
    fn solve_with_permutation_matches_natural_order() {
        let a = grid_laplacian(4, 4, 0.2);
        let n = a.ncols();
        let b: Vec<f64> = (0..n).map(|i| (i % 7) as f64 - 3.0).collect();
        let natural = CholeskyFactor::factor(&a).expect("spd").solve(&b);
        // Reverse ordering as an arbitrary permutation.
        let perm = Permutation::from_new_to_old((0..n).rev().collect()).expect("valid");
        let permuted = CholeskyFactor::factor_permuted(&a, perm)
            .expect("spd")
            .solve(&b);
        for (x, y) in natural.iter().zip(&permuted) {
            assert!((x - y).abs() < 1e-9);
        }
    }

    #[test]
    fn indefinite_matrix_is_rejected() {
        let mut t = TripletMatrix::new(2, 2);
        t.push(0, 0, 1.0);
        t.push(0, 1, 2.0);
        t.push(1, 0, 2.0);
        t.push(1, 1, 1.0);
        assert!(matches!(
            CholeskyFactor::factor(&t.to_csc()),
            Err(SparseError::NotPositiveDefinite { .. })
        ));
    }

    #[test]
    fn rectangular_matrix_is_rejected() {
        let a = CscMatrix::zeros(2, 3);
        assert!(matches!(
            CholeskyFactor::factor(&a),
            Err(SparseError::NotSquare { .. })
        ));
    }

    #[test]
    fn log_determinant_matches_dense() {
        let a = grid_laplacian(3, 3, 1.0);
        let chol = CholeskyFactor::factor(&a).expect("spd");
        // Dense log-det via dense Cholesky.
        let dl = a.to_dense().cholesky().expect("spd");
        let mut expected = 0.0;
        for i in 0..a.ncols() {
            expected += dl.get(i, i).ln();
        }
        assert!((chol.log_determinant() - 2.0 * expected).abs() < 1e-10);
    }

    #[test]
    fn solve_many_stacks_solutions() {
        let a = grid_laplacian(2, 3, 1.0);
        let chol = CholeskyFactor::factor(&a).expect("spd");
        let n = a.ncols();
        let mut b = vec![0.0; 2 * n];
        b[0] = 1.0;
        b[n + 1] = 1.0;
        let x = chol.solve_many(&b);
        assert_eq!(x.len(), 2 * n);
        assert!(a.residual_inf_norm(&x[..n], &b[..n]) < 1e-12);
        assert!(a.residual_inf_norm(&x[n..], &b[n..]) < 1e-12);
    }

    #[test]
    fn factor_diagonal_entries_positive_and_offdiagonals_nonpositive_for_laplacian() {
        // The paper's Lemma 1 relies on the factor of an SDD M-matrix having a
        // positive diagonal and nonpositive off-diagonal entries.
        let a = grid_laplacian(4, 4, 1e-3);
        let chol = CholeskyFactor::factor(&a).expect("spd");
        let l = chol.factor_l();
        for j in 0..l.ncols() {
            for (i, v) in l.column(j) {
                if i == j {
                    assert!(v > 0.0);
                } else {
                    assert!(
                        v <= 1e-14,
                        "off-diagonal L({i},{j}) = {v} should be nonpositive"
                    );
                }
            }
        }
    }

    #[test]
    fn dense_reference_agrees_on_random_like_spd() {
        // SPD matrix built as B^T B + I using a deterministic small B.
        let mut t = TripletMatrix::new(4, 4);
        let entries = [
            (0, 0, 1.0),
            (0, 1, 2.0),
            (1, 1, -1.0),
            (1, 2, 0.5),
            (2, 3, 1.5),
            (3, 0, -0.5),
        ];
        for (i, j, v) in entries {
            t.push(i, j, v);
        }
        let b = t.to_csc();
        let mut a = b.transpose().matmul(&b).expect("shapes");
        // Add identity on the diagonal.
        let eye = CscMatrix::identity(4);
        a = a.add_scaled(1.0, &eye, 1.0).expect("same shape");
        let sparse = CholeskyFactor::factor(&a).expect("spd");
        let dense = a.to_dense().cholesky().expect("spd");
        assert!(sparse.factor_l().to_dense().max_abs_diff(&dense) < 1e-12);
        let _ = DenseMatrix::identity(1);
    }
}
