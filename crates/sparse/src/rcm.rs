//! Reverse Cuthill–McKee bandwidth-reducing ordering.
//!
//! RCM is a cheap breadth-first ordering that clusters connected nodes
//! together; on mesh-like matrices (power grids, finite-element graphs) it
//! keeps the Cholesky profile small and makes the incomplete factorization
//! behave predictably. It is the default ordering of the effective-resistance
//! pipeline for mesh-like inputs.

use crate::csc::CscMatrix;
use crate::error::SparseError;
use crate::permutation::Permutation;
use std::collections::VecDeque;

/// Computes the reverse Cuthill–McKee ordering of a square structurally
/// symmetric matrix. Returns a permutation mapping new indices to old.
///
/// Each connected component is ordered starting from a pseudo-peripheral
/// vertex found by repeated breadth-first searches.
///
/// # Errors
///
/// Returns [`SparseError::NotSquare`] for rectangular input.
pub fn rcm(a: &CscMatrix) -> Result<Permutation, SparseError> {
    if a.nrows() != a.ncols() {
        return Err(SparseError::NotSquare {
            nrows: a.nrows(),
            ncols: a.ncols(),
        });
    }
    let n = a.ncols();
    // Adjacency (excluding the diagonal) and degrees.
    let mut adj: Vec<Vec<usize>> = vec![Vec::new(); n];
    for j in 0..n {
        for &i in a.column_rows(j) {
            if i != j {
                adj[j].push(i);
            }
        }
    }
    for list in &mut adj {
        list.sort_unstable();
        list.dedup();
    }
    let degree: Vec<usize> = adj.iter().map(|l| l.len()).collect();

    let mut visited = vec![false; n];
    let mut order: Vec<usize> = Vec::with_capacity(n);

    for seed in 0..n {
        if visited[seed] {
            continue;
        }
        let start = pseudo_peripheral(seed, &adj, &degree);
        // Cuthill–McKee BFS from `start`, visiting neighbours by increasing degree.
        let mut queue = VecDeque::new();
        visited[start] = true;
        queue.push_back(start);
        while let Some(v) = queue.pop_front() {
            order.push(v);
            let mut next: Vec<usize> = adj[v].iter().copied().filter(|&u| !visited[u]).collect();
            next.sort_unstable_by_key(|&u| (degree[u], u));
            for u in next {
                if !visited[u] {
                    visited[u] = true;
                    queue.push_back(u);
                }
            }
        }
    }
    // Reverse for RCM.
    order.reverse();
    Permutation::from_new_to_old(order)
}

/// Finds a pseudo-peripheral vertex of the component containing `seed` by
/// iterating breadth-first searches towards the farthest low-degree vertex.
fn pseudo_peripheral(seed: usize, adj: &[Vec<usize>], degree: &[usize]) -> usize {
    let mut current = seed;
    let mut current_ecc = 0usize;
    for _ in 0..4 {
        let (farthest, ecc) = bfs_farthest(current, adj, degree);
        if ecc <= current_ecc {
            break;
        }
        current_ecc = ecc;
        current = farthest;
    }
    current
}

/// BFS returning the farthest vertex (ties broken by lowest degree) and the
/// eccentricity of the start vertex within its component.
fn bfs_farthest(start: usize, adj: &[Vec<usize>], degree: &[usize]) -> (usize, usize) {
    let n = adj.len();
    let mut dist = vec![usize::MAX; n];
    dist[start] = 0;
    let mut queue = VecDeque::new();
    queue.push_back(start);
    let mut best = (start, 0usize);
    while let Some(v) = queue.pop_front() {
        for &u in &adj[v] {
            if dist[u] == usize::MAX {
                dist[u] = dist[v] + 1;
                queue.push_back(u);
                let better = dist[u] > best.1 || (dist[u] == best.1 && degree[u] < degree[best.0]);
                if better {
                    best = (u, dist[u]);
                }
            }
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::coo::TripletMatrix;
    use crate::symbolic::SymbolicCholesky;

    fn grid_laplacian(rows: usize, cols: usize) -> CscMatrix {
        let idx = |r: usize, c: usize| r * cols + c;
        let n = rows * cols;
        let mut t = TripletMatrix::new(n, n);
        for r in 0..rows {
            for c in 0..cols {
                if c + 1 < cols {
                    t.add_laplacian_edge(idx(r, c), idx(r, c + 1), 1.0);
                }
                if r + 1 < rows {
                    t.add_laplacian_edge(idx(r, c), idx(r + 1, c), 1.0);
                }
            }
        }
        for i in 0..n {
            t.push(i, i, 1e-3);
        }
        t.to_csc()
    }

    #[test]
    fn produces_valid_permutation() {
        let a = grid_laplacian(6, 5);
        let p = rcm(&a).expect("square");
        assert_eq!(p.len(), 30);
        let mut seen = [false; 30];
        for i in 0..30 {
            assert!(!seen[p.old(i)]);
            seen[p.old(i)] = true;
        }
    }

    #[test]
    fn path_graph_gets_contiguous_ordering() {
        // On a path graph the RCM ordering must produce a tridiagonal profile
        // (zero fill-in).
        let n = 20;
        let mut t = TripletMatrix::new(n, n);
        for i in 0..n - 1 {
            t.add_laplacian_edge(i, i + 1, 1.0);
        }
        for i in 0..n {
            t.push(i, i, 1e-3);
        }
        let a = t.to_csc();
        let p = rcm(&a).expect("square");
        let permuted = a.permute_symmetric(&p).expect("square");
        let fill = SymbolicCholesky::analyze(&permuted)
            .expect("square")
            .fill_in(&permuted);
        assert_eq!(fill, 0);
    }

    #[test]
    fn handles_disconnected_components() {
        // Two disjoint triangles.
        let mut t = TripletMatrix::new(6, 6);
        for &(i, j) in &[(0, 1), (1, 2), (0, 2), (3, 4), (4, 5), (3, 5)] {
            t.add_laplacian_edge(i, j, 1.0);
        }
        for i in 0..6 {
            t.push(i, i, 1e-3);
        }
        let p = rcm(&t.to_csc()).expect("square");
        assert_eq!(p.len(), 6);
    }

    #[test]
    fn rejects_rectangular() {
        assert!(rcm(&CscMatrix::zeros(2, 3)).is_err());
    }
}
