//! Symbolic Cholesky analysis.
//!
//! The symbolic phase computes, from the sparsity pattern alone, everything
//! the numeric factorization needs: the elimination tree, the per-column
//! nonzero counts and the total fill. It can be reused across matrices with
//! the same pattern (e.g. repeated factorizations during incremental
//! power-grid analysis).

use crate::csc::CscMatrix;
use crate::error::SparseError;
use crate::etree::{self, NO_PARENT};

/// Result of the symbolic Cholesky analysis of a sparse symmetric matrix.
#[derive(Debug, Clone)]
pub struct SymbolicCholesky {
    /// Order of the matrix.
    n: usize,
    /// Elimination-tree parent of each column ([`NO_PARENT`] for roots).
    parent: Vec<usize>,
    /// Number of nonzeros in each column of the factor (diagonal included).
    column_counts: Vec<usize>,
}

impl SymbolicCholesky {
    /// Analyzes the pattern of a square structurally symmetric matrix.
    ///
    /// # Errors
    ///
    /// Returns [`SparseError::NotSquare`] for rectangular input.
    pub fn analyze(a: &CscMatrix) -> Result<Self, SparseError> {
        if a.nrows() != a.ncols() {
            return Err(SparseError::NotSquare {
                nrows: a.nrows(),
                ncols: a.ncols(),
            });
        }
        let parent = etree::etree(a);
        let column_counts = etree::column_counts(a, &parent);
        Ok(SymbolicCholesky {
            n: a.ncols(),
            parent,
            column_counts,
        })
    }

    /// Order of the analyzed matrix.
    pub fn order(&self) -> usize {
        self.n
    }

    /// Elimination-tree parent array.
    pub fn parent(&self) -> &[usize] {
        &self.parent
    }

    /// Per-column nonzero counts of the factor (diagonal included).
    pub fn column_counts(&self) -> &[usize] {
        &self.column_counts
    }

    /// Total number of nonzeros in the factor.
    pub fn factor_nnz(&self) -> usize {
        self.column_counts.iter().sum()
    }

    /// Fill-in: factor nonzeros minus the nonzeros of the lower triangle of
    /// the analyzed matrix pattern. Useful for comparing orderings.
    pub fn fill_in(&self, a: &CscMatrix) -> usize {
        let lower_nnz = a
            .colptr()
            .windows(2)
            .enumerate()
            .map(|(j, w)| a.rowidx()[w[0]..w[1]].iter().filter(|&&i| i >= j).count())
            .sum::<usize>();
        self.factor_nnz().saturating_sub(lower_nnz)
    }

    /// Number of root columns in the elimination forest.
    pub fn root_count(&self) -> usize {
        self.parent.iter().filter(|&&p| p == NO_PARENT).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::coo::TripletMatrix;

    fn grid_laplacian(rows: usize, cols: usize) -> CscMatrix {
        let idx = |r: usize, c: usize| r * cols + c;
        let n = rows * cols;
        let mut t = TripletMatrix::new(n, n);
        for r in 0..rows {
            for c in 0..cols {
                if c + 1 < cols {
                    t.add_laplacian_edge(idx(r, c), idx(r, c + 1), 1.0);
                }
                if r + 1 < rows {
                    t.add_laplacian_edge(idx(r, c), idx(r + 1, c), 1.0);
                }
            }
        }
        for i in 0..n {
            t.push(i, i, 1e-6);
        }
        t.to_csc()
    }

    #[test]
    fn analyze_path_counts_bidiagonal_factor() {
        let mut t = TripletMatrix::new(4, 4);
        for i in 0..3 {
            t.add_laplacian_edge(i, i + 1, 1.0);
        }
        for i in 0..4 {
            t.push(i, i, 1e-6);
        }
        let a = t.to_csc();
        let sym = SymbolicCholesky::analyze(&a).expect("square");
        assert_eq!(sym.factor_nnz(), 7);
        assert_eq!(sym.fill_in(&a), 0);
        assert_eq!(sym.root_count(), 1);
    }

    #[test]
    fn grid_has_fill_in() {
        let a = grid_laplacian(4, 4);
        let sym = SymbolicCholesky::analyze(&a).expect("square");
        assert!(
            sym.fill_in(&a) > 0,
            "a 2-D grid in natural order must fill in"
        );
        assert_eq!(sym.order(), 16);
    }

    #[test]
    fn rejects_rectangular() {
        let a = CscMatrix::zeros(2, 3);
        assert!(SymbolicCholesky::analyze(&a).is_err());
    }
}
