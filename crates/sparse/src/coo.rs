//! Triplet (coordinate) sparse matrix used for assembly.
//!
//! A [`TripletMatrix`] is an unordered list of `(row, col, value)` entries;
//! duplicate entries are summed when converting to a compressed format. This
//! is the natural format for stamping circuit elements into a system matrix
//! or accumulating a graph Laplacian edge by edge.

use crate::csc::CscMatrix;
use crate::csr::CsrMatrix;
use crate::error::SparseError;

/// A sparse matrix in triplet (COO) form, used for incremental assembly.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct TripletMatrix {
    nrows: usize,
    ncols: usize,
    rows: Vec<usize>,
    cols: Vec<usize>,
    values: Vec<f64>,
}

impl TripletMatrix {
    /// Creates an empty triplet matrix with the given shape.
    pub fn new(nrows: usize, ncols: usize) -> Self {
        TripletMatrix {
            nrows,
            ncols,
            rows: Vec::new(),
            cols: Vec::new(),
            values: Vec::new(),
        }
    }

    /// Creates an empty triplet matrix with preallocated capacity for `cap` entries.
    pub fn with_capacity(nrows: usize, ncols: usize, cap: usize) -> Self {
        TripletMatrix {
            nrows,
            ncols,
            rows: Vec::with_capacity(cap),
            cols: Vec::with_capacity(cap),
            values: Vec::with_capacity(cap),
        }
    }

    /// Number of rows.
    pub fn nrows(&self) -> usize {
        self.nrows
    }

    /// Number of columns.
    pub fn ncols(&self) -> usize {
        self.ncols
    }

    /// Number of stored entries (duplicates included).
    pub fn nnz(&self) -> usize {
        self.values.len()
    }

    /// Appends the entry `(row, col, value)`.
    ///
    /// Zero values are kept; duplicates are summed on conversion.
    ///
    /// # Panics
    ///
    /// Panics if `row` or `col` is out of bounds.
    pub fn push(&mut self, row: usize, col: usize, value: f64) {
        assert!(
            row < self.nrows && col < self.ncols,
            "triplet entry ({row}, {col}) out of bounds for {}x{}",
            self.nrows,
            self.ncols
        );
        self.rows.push(row);
        self.cols.push(col);
        self.values.push(value);
    }

    /// Fallible version of [`TripletMatrix::push`].
    ///
    /// # Errors
    ///
    /// Returns [`SparseError::IndexOutOfBounds`] when the entry does not fit.
    pub fn try_push(&mut self, row: usize, col: usize, value: f64) -> Result<(), SparseError> {
        if row >= self.nrows || col >= self.ncols {
            return Err(SparseError::IndexOutOfBounds {
                row,
                col,
                nrows: self.nrows,
                ncols: self.ncols,
            });
        }
        self.rows.push(row);
        self.cols.push(col);
        self.values.push(value);
        Ok(())
    }

    /// Adds a symmetric pair of off-diagonal entries and the corresponding
    /// diagonal contributions of a (weighted) graph Laplacian edge:
    /// `A[i][i] += w`, `A[j][j] += w`, `A[i][j] -= w`, `A[j][i] -= w`.
    ///
    /// # Panics
    ///
    /// Panics if `i` or `j` is out of bounds or `i == j`.
    pub fn add_laplacian_edge(&mut self, i: usize, j: usize, w: f64) {
        assert_ne!(i, j, "Laplacian edge endpoints must differ");
        self.push(i, i, w);
        self.push(j, j, w);
        self.push(i, j, -w);
        self.push(j, i, -w);
    }

    /// Iterates over the stored `(row, col, value)` triplets.
    pub fn iter(&self) -> impl Iterator<Item = (usize, usize, f64)> + '_ {
        self.rows
            .iter()
            .zip(&self.cols)
            .zip(&self.values)
            .map(|((&r, &c), &v)| (r, c, v))
    }

    /// Converts to compressed sparse column form, summing duplicates and
    /// dropping entries that sum to exactly zero is *not* performed (explicit
    /// zeros are kept so structural patterns remain predictable).
    pub fn to_csc(&self) -> CscMatrix {
        CscMatrix::from_triplets(self.nrows, self.ncols, &self.rows, &self.cols, &self.values)
    }

    /// Converts to compressed sparse row form, summing duplicates.
    pub fn to_csr(&self) -> CsrMatrix {
        self.to_csc().to_csr()
    }
}

impl Extend<(usize, usize, f64)> for TripletMatrix {
    fn extend<T: IntoIterator<Item = (usize, usize, f64)>>(&mut self, iter: T) {
        for (r, c, v) in iter {
            self.push(r, c, v);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_and_convert_sums_duplicates() {
        let mut t = TripletMatrix::new(2, 2);
        t.push(0, 0, 1.0);
        t.push(0, 0, 2.0);
        t.push(1, 0, 4.0);
        let a = t.to_csc();
        assert_eq!(a.get(0, 0), 3.0);
        assert_eq!(a.get(1, 0), 4.0);
        assert_eq!(a.get(1, 1), 0.0);
    }

    #[test]
    fn try_push_rejects_out_of_bounds() {
        let mut t = TripletMatrix::new(2, 2);
        assert!(t.try_push(2, 0, 1.0).is_err());
        assert!(t.try_push(0, 5, 1.0).is_err());
        assert!(t.try_push(1, 1, 1.0).is_ok());
    }

    #[test]
    fn laplacian_edge_stamps_four_entries() {
        let mut t = TripletMatrix::new(3, 3);
        t.add_laplacian_edge(0, 2, 2.5);
        let a = t.to_csc();
        assert_eq!(a.get(0, 0), 2.5);
        assert_eq!(a.get(2, 2), 2.5);
        assert_eq!(a.get(0, 2), -2.5);
        assert_eq!(a.get(2, 0), -2.5);
        assert_eq!(a.get(1, 1), 0.0);
    }

    #[test]
    fn extend_collects_triplets() {
        let mut t = TripletMatrix::new(2, 2);
        t.extend(vec![(0, 1, 1.0), (1, 0, 2.0)]);
        assert_eq!(t.nnz(), 2);
        let collected: Vec<_> = t.iter().collect();
        assert_eq!(collected, vec![(0, 1, 1.0), (1, 0, 2.0)]);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn push_panics_out_of_bounds() {
        let mut t = TripletMatrix::new(1, 1);
        t.push(1, 0, 1.0);
    }
}
