//! Triangular solves with sparse lower factors.
//!
//! All routines operate on a lower-triangular matrix stored in CSC format
//! with the diagonal entry present in every column (as produced by
//! [`crate::cholesky`] and [`crate::ichol`]).

use crate::csc::CscMatrix;
use crate::sparse_vec::SparseVec;

/// Solves `L x = b` in place for a lower-triangular CSC matrix `L`.
///
/// # Panics
///
/// Panics if `L` is not square, `b` has the wrong length, or a diagonal entry
/// is missing or zero.
pub fn solve_lower(l: &CscMatrix, b: &mut [f64]) {
    let n = l.ncols();
    assert_eq!(l.nrows(), n, "solve_lower requires a square matrix");
    assert_eq!(b.len(), n, "solve_lower: rhs length mismatch");
    for j in 0..n {
        let rows = l.column_rows(j);
        let vals = l.column_values(j);
        let dpos = rows
            .binary_search(&j)
            .expect("lower factor must store its diagonal");
        let diag = vals[dpos];
        assert!(diag != 0.0, "zero diagonal in lower factor");
        let xj = b[j] / diag;
        b[j] = xj;
        for (p, &i) in rows.iter().enumerate() {
            if i > j {
                b[i] -= vals[p] * xj;
            }
        }
    }
}

/// Solves `L^T x = b` in place for a lower-triangular CSC matrix `L`.
///
/// # Panics
///
/// Panics if `L` is not square, `b` has the wrong length, or a diagonal entry
/// is missing or zero.
pub fn solve_lower_transpose(l: &CscMatrix, b: &mut [f64]) {
    let n = l.ncols();
    assert_eq!(
        l.nrows(),
        n,
        "solve_lower_transpose requires a square matrix"
    );
    assert_eq!(b.len(), n, "solve_lower_transpose: rhs length mismatch");
    for j in (0..n).rev() {
        let rows = l.column_rows(j);
        let vals = l.column_values(j);
        let dpos = rows
            .binary_search(&j)
            .expect("lower factor must store its diagonal");
        let diag = vals[dpos];
        assert!(diag != 0.0, "zero diagonal in lower factor");
        let mut s = b[j];
        for (p, &i) in rows.iter().enumerate() {
            if i > j {
                s -= vals[p] * b[i];
            }
        }
        b[j] = s / diag;
    }
}

/// Solves `L L^T x = b`, overwriting `b` with the solution.
///
/// # Panics
///
/// See [`solve_lower`] and [`solve_lower_transpose`].
pub fn solve_cholesky(l: &CscMatrix, b: &mut [f64]) {
    solve_lower(l, b);
    solve_lower_transpose(l, b);
}

/// Solves `L x = e_j` (a unit right-hand side) exploiting sparsity of the
/// solution: only the rows reachable from `j` in the directed graph of `L`
/// are touched. Returns the solution as a [`SparseVec`].
///
/// The solution pattern is exactly the set of descendants of `j` in the
/// filled graph, so this routine is the exact counterpart of one column of
/// `L^{-1}` and is used as a reference for the approximate inverse.
///
/// # Panics
///
/// Panics if `L` is not square, `j` is out of bounds, or a diagonal entry is
/// missing or zero.
pub fn solve_lower_unit_sparse(l: &CscMatrix, j: usize) -> SparseVec {
    let n = l.ncols();
    assert_eq!(
        l.nrows(),
        n,
        "solve_lower_unit_sparse requires a square matrix"
    );
    assert!(j < n, "unit index out of bounds");
    // Discover the reach of j in the graph of L (edges j -> i for L(i, j) != 0,
    // i > j) with an iterative depth-first search.
    let mut visited = vec![false; n];
    let mut order = Vec::new();
    let mut stack = vec![j];
    while let Some(node) = stack.pop() {
        if visited[node] {
            continue;
        }
        visited[node] = true;
        order.push(node);
        for &i in l.column_rows(node) {
            if i > node && !visited[i] {
                stack.push(i);
            }
        }
    }
    order.sort_unstable();
    // Forward substitution restricted to the reach.
    let mut x = vec![0.0; n];
    x[j] = 1.0;
    for &col in &order {
        let rows = l.column_rows(col);
        let vals = l.column_values(col);
        let dpos = rows
            .binary_search(&col)
            .expect("lower factor must store its diagonal");
        let diag = vals[dpos];
        assert!(diag != 0.0, "zero diagonal in lower factor");
        let xc = x[col] / diag;
        x[col] = xc;
        for (p, &i) in rows.iter().enumerate() {
            if i > col {
                x[i] -= vals[p] * xc;
            }
        }
    }
    let indices: Vec<usize> = order.iter().copied().filter(|&i| x[i] != 0.0).collect();
    let values: Vec<f64> = indices.iter().map(|&i| x[i]).collect();
    SparseVec::from_sorted(n, indices, values)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::coo::TripletMatrix;

    /// A small lower-triangular matrix with unit structure:
    /// L = [2 0 0; -1 3 0; 0 -2 4].
    fn sample_lower() -> CscMatrix {
        let mut t = TripletMatrix::new(3, 3);
        t.push(0, 0, 2.0);
        t.push(1, 0, -1.0);
        t.push(1, 1, 3.0);
        t.push(2, 1, -2.0);
        t.push(2, 2, 4.0);
        t.to_csc()
    }

    #[test]
    fn forward_solve_matches_dense() {
        let l = sample_lower();
        let b = [2.0, 5.0, 4.0];
        let mut x = b;
        solve_lower(&l, &mut x);
        // Check L x = b.
        let lx = l.matvec(&x);
        for (a, bi) in lx.iter().zip(&b) {
            assert!((a - bi).abs() < 1e-14);
        }
    }

    #[test]
    fn transpose_solve_matches_dense() {
        let l = sample_lower();
        let b = [1.0, 2.0, 3.0];
        let mut x = b;
        solve_lower_transpose(&l, &mut x);
        let ltx = l.transpose().matvec(&x);
        for (a, bi) in ltx.iter().zip(&b) {
            assert!((a - bi).abs() < 1e-14);
        }
    }

    #[test]
    fn cholesky_solve_round_trip() {
        let l = sample_lower();
        // A = L L^T.
        let a = l.matmul(&l.transpose()).expect("shapes");
        let b = [1.0, -2.0, 0.5];
        let mut x = b;
        solve_cholesky(&l, &mut x);
        assert!(a.residual_inf_norm(&x, &b) < 1e-12);
    }

    #[test]
    fn sparse_unit_solve_matches_dense_unit_solve() {
        let l = sample_lower();
        for j in 0..3 {
            let mut e = vec![0.0; 3];
            e[j] = 1.0;
            let mut dense = e.clone();
            solve_lower(&l, &mut dense);
            let sparse = solve_lower_unit_sparse(&l, j);
            for i in 0..3 {
                assert!((sparse.get(i) - dense[i]).abs() < 1e-14);
            }
        }
    }

    #[test]
    fn sparse_unit_solve_has_local_support_for_block_diagonal() {
        // Two decoupled 2x2 blocks: solving for a unit vector in the first
        // block must not touch the second block.
        let mut t = TripletMatrix::new(4, 4);
        t.push(0, 0, 1.0);
        t.push(1, 0, -0.5);
        t.push(1, 1, 1.0);
        t.push(2, 2, 1.0);
        t.push(3, 2, -0.5);
        t.push(3, 3, 1.0);
        let l = t.to_csc();
        let x = solve_lower_unit_sparse(&l, 0);
        assert!(x.indices().iter().all(|&i| i < 2));
        let y = solve_lower_unit_sparse(&l, 2);
        assert!(y.indices().iter().all(|&i| i >= 2));
    }

    #[test]
    #[should_panic(expected = "diagonal")]
    fn missing_diagonal_panics() {
        let mut t = TripletMatrix::new(2, 2);
        t.push(0, 0, 1.0);
        t.push(1, 0, 1.0);
        // No (1,1) entry.
        let l = t.to_csc();
        let mut b = [1.0, 1.0];
        solve_lower(&l, &mut b);
    }
}
