//! Compressed sparse column (CSC) matrices.
//!
//! CSC is the working format of the crate: the sparse Cholesky and incomplete
//! Cholesky factorizations, triangular solves and the approximate-inverse
//! algorithm all walk matrices column by column.

use crate::csr::CsrMatrix;
use crate::dense::DenseMatrix;
use crate::error::SparseError;
use crate::permutation::Permutation;

/// A sparse matrix in compressed sparse column format.
///
/// Row indices within each column are stored in strictly increasing order and
/// duplicates are not allowed (construction from triplets sums duplicates).
#[derive(Debug, Clone, PartialEq)]
pub struct CscMatrix {
    nrows: usize,
    ncols: usize,
    colptr: Vec<usize>,
    rowidx: Vec<usize>,
    values: Vec<f64>,
}

impl CscMatrix {
    /// Creates an empty (all-zero) matrix with the given shape.
    pub fn zeros(nrows: usize, ncols: usize) -> Self {
        CscMatrix {
            nrows,
            ncols,
            colptr: vec![0; ncols + 1],
            rowidx: Vec::new(),
            values: Vec::new(),
        }
    }

    /// Creates an identity matrix of order `n`.
    pub fn identity(n: usize) -> Self {
        CscMatrix {
            nrows: n,
            ncols: n,
            colptr: (0..=n).collect(),
            rowidx: (0..n).collect(),
            values: vec![1.0; n],
        }
    }

    /// Builds a CSC matrix from raw compressed arrays.
    ///
    /// # Errors
    ///
    /// Returns an error if the arrays are inconsistent: `colptr` must have
    /// `ncols + 1` monotonically nondecreasing entries ending at
    /// `rowidx.len()`, `rowidx` and `values` must have equal length, and row
    /// indices must be strictly increasing within each column and in bounds.
    pub fn from_raw(
        nrows: usize,
        ncols: usize,
        colptr: Vec<usize>,
        rowidx: Vec<usize>,
        values: Vec<f64>,
    ) -> Result<Self, SparseError> {
        if colptr.len() != ncols + 1 {
            return Err(SparseError::DimensionMismatch {
                context: "CscMatrix::from_raw colptr length",
                expected: ncols + 1,
                found: colptr.len(),
            });
        }
        if rowidx.len() != values.len() {
            return Err(SparseError::DimensionMismatch {
                context: "CscMatrix::from_raw rowidx/values length",
                expected: rowidx.len(),
                found: values.len(),
            });
        }
        if *colptr.last().expect("nonempty colptr") != rowidx.len() {
            return Err(SparseError::DimensionMismatch {
                context: "CscMatrix::from_raw colptr end",
                expected: rowidx.len(),
                found: *colptr.last().expect("nonempty colptr"),
            });
        }
        for j in 0..ncols {
            if colptr[j] > colptr[j + 1] {
                return Err(SparseError::InvalidParameter {
                    name: "colptr",
                    message: "column pointers must be nondecreasing",
                });
            }
            let mut prev: Option<usize> = None;
            for p in colptr[j]..colptr[j + 1] {
                let r = rowidx[p];
                if r >= nrows {
                    return Err(SparseError::IndexOutOfBounds {
                        row: r,
                        col: j,
                        nrows,
                        ncols,
                    });
                }
                if let Some(pr) = prev {
                    if r <= pr {
                        return Err(SparseError::InvalidParameter {
                            name: "rowidx",
                            message: "row indices must be strictly increasing within a column",
                        });
                    }
                }
                prev = Some(r);
            }
        }
        Ok(CscMatrix {
            nrows,
            ncols,
            colptr,
            rowidx,
            values,
        })
    }

    /// Builds a CSC matrix from parallel triplet arrays, summing duplicates.
    ///
    /// # Panics
    ///
    /// Panics if the triplet arrays have different lengths or contain
    /// out-of-bounds indices.
    pub fn from_triplets(
        nrows: usize,
        ncols: usize,
        rows: &[usize],
        cols: &[usize],
        vals: &[f64],
    ) -> Self {
        assert_eq!(rows.len(), cols.len(), "triplet arrays must match");
        assert_eq!(rows.len(), vals.len(), "triplet arrays must match");
        // Count entries per column.
        let mut count = vec![0usize; ncols];
        for (&r, &c) in rows.iter().zip(cols) {
            assert!(r < nrows && c < ncols, "triplet entry out of bounds");
            count[c] += 1;
        }
        let mut colptr = vec![0usize; ncols + 1];
        for j in 0..ncols {
            colptr[j + 1] = colptr[j] + count[j];
        }
        let nnz = colptr[ncols];
        let mut rowidx = vec![0usize; nnz];
        let mut values = vec![0.0f64; nnz];
        let mut next = colptr.clone();
        for ((&r, &c), &v) in rows.iter().zip(cols).zip(vals) {
            let p = next[c];
            rowidx[p] = r;
            values[p] = v;
            next[c] += 1;
        }
        // Sort each column by row index and sum duplicates.
        let mut out_colptr = vec![0usize; ncols + 1];
        let mut out_rowidx = Vec::with_capacity(nnz);
        let mut out_values = Vec::with_capacity(nnz);
        let mut scratch: Vec<(usize, f64)> = Vec::new();
        for j in 0..ncols {
            scratch.clear();
            for p in colptr[j]..colptr[j + 1] {
                scratch.push((rowidx[p], values[p]));
            }
            scratch.sort_unstable_by_key(|&(r, _)| r);
            let mut i = 0;
            while i < scratch.len() {
                let r = scratch[i].0;
                let mut v = scratch[i].1;
                let mut k = i + 1;
                while k < scratch.len() && scratch[k].0 == r {
                    v += scratch[k].1;
                    k += 1;
                }
                out_rowidx.push(r);
                out_values.push(v);
                i = k;
            }
            out_colptr[j + 1] = out_rowidx.len();
        }
        CscMatrix {
            nrows,
            ncols,
            colptr: out_colptr,
            rowidx: out_rowidx,
            values: out_values,
        }
    }

    /// Number of rows.
    pub fn nrows(&self) -> usize {
        self.nrows
    }

    /// Number of columns.
    pub fn ncols(&self) -> usize {
        self.ncols
    }

    /// Number of explicitly stored entries.
    pub fn nnz(&self) -> usize {
        self.rowidx.len()
    }

    /// Column pointer array (`ncols + 1` entries).
    pub fn colptr(&self) -> &[usize] {
        &self.colptr
    }

    /// Row index array.
    pub fn rowidx(&self) -> &[usize] {
        &self.rowidx
    }

    /// Value array.
    pub fn values(&self) -> &[f64] {
        &self.values
    }

    /// Mutable access to the value array (the pattern stays fixed).
    pub fn values_mut(&mut self) -> &mut [f64] {
        &mut self.values
    }

    /// Iterates over the `(row_index, value)` pairs of column `j`.
    ///
    /// # Panics
    ///
    /// Panics if `j >= self.ncols()`.
    pub fn column(&self, j: usize) -> impl Iterator<Item = (usize, f64)> + '_ {
        assert!(j < self.ncols, "column index out of bounds");
        let range = self.colptr[j]..self.colptr[j + 1];
        self.rowidx[range.clone()]
            .iter()
            .zip(&self.values[range])
            .map(|(&r, &v)| (r, v))
    }

    /// Row indices of column `j`.
    ///
    /// # Panics
    ///
    /// Panics if `j >= self.ncols()`.
    pub fn column_rows(&self, j: usize) -> &[usize] {
        assert!(j < self.ncols, "column index out of bounds");
        &self.rowidx[self.colptr[j]..self.colptr[j + 1]]
    }

    /// Values of column `j`.
    ///
    /// # Panics
    ///
    /// Panics if `j >= self.ncols()`.
    pub fn column_values(&self, j: usize) -> &[f64] {
        assert!(j < self.ncols, "column index out of bounds");
        &self.values[self.colptr[j]..self.colptr[j + 1]]
    }

    /// Value at `(row, col)`, or `0.0` if the entry is not stored.
    ///
    /// # Panics
    ///
    /// Panics if the indices are out of bounds.
    pub fn get(&self, row: usize, col: usize) -> f64 {
        assert!(row < self.nrows && col < self.ncols, "index out of bounds");
        let range = self.colptr[col]..self.colptr[col + 1];
        match self.rowidx[range.clone()].binary_search(&row) {
            Ok(pos) => self.values[range.start + pos],
            Err(_) => 0.0,
        }
    }

    /// Matrix-vector product `y = A x`.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != self.ncols()`.
    pub fn matvec(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(x.len(), self.ncols, "matvec: length mismatch");
        let mut y = vec![0.0; self.nrows];
        self.matvec_into(x, &mut y);
        y
    }

    /// Matrix-vector product into a preallocated output buffer (`y` is overwritten).
    ///
    /// # Panics
    ///
    /// Panics if the buffer lengths do not match the matrix shape.
    pub fn matvec_into(&self, x: &[f64], y: &mut [f64]) {
        assert_eq!(x.len(), self.ncols, "matvec: x length mismatch");
        assert_eq!(y.len(), self.nrows, "matvec: y length mismatch");
        y.fill(0.0);
        for j in 0..self.ncols {
            let xj = x[j];
            if xj == 0.0 {
                continue;
            }
            for p in self.colptr[j]..self.colptr[j + 1] {
                y[self.rowidx[p]] += self.values[p] * xj;
            }
        }
    }

    /// Transposed matrix-vector product `y = A^T x`.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != self.nrows()`.
    pub fn matvec_transpose(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(x.len(), self.nrows, "matvec_transpose: length mismatch");
        let mut y = vec![0.0; self.ncols];
        for j in 0..self.ncols {
            let mut s = 0.0;
            for p in self.colptr[j]..self.colptr[j + 1] {
                s += self.values[p] * x[self.rowidx[p]];
            }
            y[j] = s;
        }
        y
    }

    /// Infinity norm of the residual `A x - b`; convenience for tests and
    /// solution checks.
    ///
    /// # Panics
    ///
    /// Panics if the lengths are inconsistent with the matrix shape.
    pub fn residual_inf_norm(&self, x: &[f64], b: &[f64]) -> f64 {
        assert_eq!(b.len(), self.nrows, "residual: b length mismatch");
        let ax = self.matvec(x);
        ax.iter()
            .zip(b)
            .fold(0.0_f64, |m, (a, bi)| m.max((a - bi).abs()))
    }

    /// Transposed copy.
    pub fn transpose(&self) -> CscMatrix {
        // Transposing a CSC matrix is the same as interpreting it as CSR of
        // the transpose; we count row occurrences to build the new columns.
        let mut count = vec![0usize; self.nrows];
        for &r in &self.rowidx {
            count[r] += 1;
        }
        let mut colptr = vec![0usize; self.nrows + 1];
        for i in 0..self.nrows {
            colptr[i + 1] = colptr[i] + count[i];
        }
        let mut rowidx = vec![0usize; self.nnz()];
        let mut values = vec![0.0; self.nnz()];
        let mut next = colptr.clone();
        for j in 0..self.ncols {
            for p in self.colptr[j]..self.colptr[j + 1] {
                let r = self.rowidx[p];
                let q = next[r];
                rowidx[q] = j;
                values[q] = self.values[p];
                next[r] += 1;
            }
        }
        CscMatrix {
            nrows: self.ncols,
            ncols: self.nrows,
            colptr,
            rowidx,
            values,
        }
    }

    /// Converts to compressed sparse row format.
    pub fn to_csr(&self) -> CsrMatrix {
        let t = self.transpose();
        CsrMatrix::from_csc_transpose(t)
    }

    /// Converts to a dense matrix (intended for small matrices and tests).
    pub fn to_dense(&self) -> DenseMatrix {
        let mut d = DenseMatrix::zeros(self.nrows, self.ncols);
        for j in 0..self.ncols {
            for p in self.colptr[j]..self.colptr[j + 1] {
                d.set(self.rowidx[p], j, self.values[p]);
            }
        }
        d
    }

    /// Extracts the lower triangular part (including the diagonal).
    pub fn lower_triangle(&self) -> CscMatrix {
        self.filter(|r, c, _| r >= c)
    }

    /// Extracts the upper triangular part (including the diagonal).
    pub fn upper_triangle(&self) -> CscMatrix {
        self.filter(|r, c, _| r <= c)
    }

    /// Returns a copy keeping only entries for which the predicate holds.
    pub fn filter<F: Fn(usize, usize, f64) -> bool>(&self, keep: F) -> CscMatrix {
        let mut colptr = vec![0usize; self.ncols + 1];
        let mut rowidx = Vec::new();
        let mut values = Vec::new();
        for j in 0..self.ncols {
            for p in self.colptr[j]..self.colptr[j + 1] {
                let r = self.rowidx[p];
                let v = self.values[p];
                if keep(r, j, v) {
                    rowidx.push(r);
                    values.push(v);
                }
            }
            colptr[j + 1] = rowidx.len();
        }
        CscMatrix {
            nrows: self.nrows,
            ncols: self.ncols,
            colptr,
            rowidx,
            values,
        }
    }

    /// Drops stored entries with absolute value at or below `threshold`
    /// (diagonal entries are always kept).
    pub fn drop_small(&self, threshold: f64) -> CscMatrix {
        self.filter(|r, c, v| r == c || v.abs() > threshold)
    }

    /// Scaled sum `alpha * A + beta * B`.
    ///
    /// # Errors
    ///
    /// Returns [`SparseError::DimensionMismatch`] when shapes differ.
    pub fn add_scaled(
        &self,
        alpha: f64,
        other: &CscMatrix,
        beta: f64,
    ) -> Result<CscMatrix, SparseError> {
        if self.nrows != other.nrows || self.ncols != other.ncols {
            return Err(SparseError::DimensionMismatch {
                context: "CscMatrix::add_scaled",
                expected: self.nrows,
                found: other.nrows,
            });
        }
        let mut colptr = vec![0usize; self.ncols + 1];
        let mut rowidx = Vec::new();
        let mut values = Vec::new();
        for j in 0..self.ncols {
            let mut pa = self.colptr[j];
            let mut pb = other.colptr[j];
            let ea = self.colptr[j + 1];
            let eb = other.colptr[j + 1];
            while pa < ea || pb < eb {
                let (r, v) = if pb >= eb || (pa < ea && self.rowidx[pa] < other.rowidx[pb]) {
                    let out = (self.rowidx[pa], alpha * self.values[pa]);
                    pa += 1;
                    out
                } else if pa >= ea || other.rowidx[pb] < self.rowidx[pa] {
                    let out = (other.rowidx[pb], beta * other.values[pb]);
                    pb += 1;
                    out
                } else {
                    let out = (
                        self.rowidx[pa],
                        alpha * self.values[pa] + beta * other.values[pb],
                    );
                    pa += 1;
                    pb += 1;
                    out
                };
                rowidx.push(r);
                values.push(v);
            }
            colptr[j + 1] = rowidx.len();
        }
        Ok(CscMatrix {
            nrows: self.nrows,
            ncols: self.ncols,
            colptr,
            rowidx,
            values,
        })
    }

    /// Symmetric permutation `P A P^T` for a square matrix, where row and
    /// column `i` of the result correspond to row and column `perm.old(i)`
    /// of the original (i.e. `perm` maps new indices to old indices).
    ///
    /// # Errors
    ///
    /// Returns [`SparseError::NotSquare`] for rectangular matrices and
    /// [`SparseError::DimensionMismatch`] if the permutation length differs
    /// from the matrix order.
    pub fn permute_symmetric(&self, perm: &Permutation) -> Result<CscMatrix, SparseError> {
        if self.nrows != self.ncols {
            return Err(SparseError::NotSquare {
                nrows: self.nrows,
                ncols: self.ncols,
            });
        }
        if perm.len() != self.nrows {
            return Err(SparseError::DimensionMismatch {
                context: "CscMatrix::permute_symmetric",
                expected: self.nrows,
                found: perm.len(),
            });
        }
        let n = self.nrows;
        let mut rows = Vec::with_capacity(self.nnz());
        let mut cols = Vec::with_capacity(self.nnz());
        let mut vals = Vec::with_capacity(self.nnz());
        for new_j in 0..n {
            let old_j = perm.old(new_j);
            for p in self.colptr[old_j]..self.colptr[old_j + 1] {
                let old_i = self.rowidx[p];
                let new_i = perm.new(old_i);
                rows.push(new_i);
                cols.push(new_j);
                vals.push(self.values[p]);
            }
        }
        Ok(CscMatrix::from_triplets(n, n, &rows, &cols, &vals))
    }

    /// Checks symmetry within an absolute tolerance.
    pub fn is_symmetric(&self, tol: f64) -> bool {
        if self.nrows != self.ncols {
            return false;
        }
        let t = self.transpose();
        if t.nnz() != self.nnz() {
            // Patterns can legitimately differ by explicit zeros; fall back to
            // a value comparison through the dense check for small matrices
            // and an entry walk otherwise.
        }
        for j in 0..self.ncols {
            for p in self.colptr[j]..self.colptr[j + 1] {
                let i = self.rowidx[p];
                if (self.values[p] - self.get(j, i)).abs() > tol {
                    return false;
                }
            }
        }
        true
    }

    /// Extracts the principal submatrix indexed by `keep` (rows and columns),
    /// renumbering indices to `0..keep.len()` in the order given.
    ///
    /// # Panics
    ///
    /// Panics if any index in `keep` is out of bounds or repeated.
    pub fn principal_submatrix(&self, keep: &[usize]) -> CscMatrix {
        assert_eq!(
            self.nrows, self.ncols,
            "principal submatrix requires a square matrix"
        );
        let n = self.nrows;
        let mut map = vec![usize::MAX; n];
        for (new, &old) in keep.iter().enumerate() {
            assert!(old < n, "submatrix index out of bounds");
            assert!(map[old] == usize::MAX, "submatrix index repeated");
            map[old] = new;
        }
        let mut rows = Vec::new();
        let mut cols = Vec::new();
        let mut vals = Vec::new();
        for (new_j, &old_j) in keep.iter().enumerate() {
            for p in self.colptr[old_j]..self.colptr[old_j + 1] {
                let old_i = self.rowidx[p];
                let new_i = map[old_i];
                if new_i != usize::MAX {
                    rows.push(new_i);
                    cols.push(new_j);
                    vals.push(self.values[p]);
                }
            }
        }
        CscMatrix::from_triplets(keep.len(), keep.len(), &rows, &cols, &vals)
    }

    /// Extracts the rectangular submatrix with the given rows and columns
    /// (renumbered in the order given).
    ///
    /// # Panics
    ///
    /// Panics if any index is out of bounds or repeated within its list.
    pub fn submatrix(&self, rows_keep: &[usize], cols_keep: &[usize]) -> CscMatrix {
        let mut row_map = vec![usize::MAX; self.nrows];
        for (new, &old) in rows_keep.iter().enumerate() {
            assert!(old < self.nrows, "row index out of bounds");
            assert!(row_map[old] == usize::MAX, "row index repeated");
            row_map[old] = new;
        }
        let mut rows = Vec::new();
        let mut cols = Vec::new();
        let mut vals = Vec::new();
        for (new_j, &old_j) in cols_keep.iter().enumerate() {
            assert!(old_j < self.ncols, "column index out of bounds");
            for p in self.colptr[old_j]..self.colptr[old_j + 1] {
                let new_i = row_map[self.rowidx[p]];
                if new_i != usize::MAX {
                    rows.push(new_i);
                    cols.push(new_j);
                    vals.push(self.values[p]);
                }
            }
        }
        CscMatrix::from_triplets(rows_keep.len(), cols_keep.len(), &rows, &cols, &vals)
    }

    /// Diagonal entries as a vector (missing diagonal entries are zero).
    pub fn diagonal(&self) -> Vec<f64> {
        let n = self.nrows.min(self.ncols);
        let mut d = vec![0.0; n];
        for j in 0..n {
            d[j] = self.get(j, j);
        }
        d
    }

    /// Sparse matrix product `A * B`.
    ///
    /// # Errors
    ///
    /// Returns [`SparseError::DimensionMismatch`] if the inner dimensions differ.
    pub fn matmul(&self, other: &CscMatrix) -> Result<CscMatrix, SparseError> {
        if self.ncols != other.nrows {
            return Err(SparseError::DimensionMismatch {
                context: "CscMatrix::matmul",
                expected: self.ncols,
                found: other.nrows,
            });
        }
        let mut colptr = vec![0usize; other.ncols + 1];
        let mut rowidx = Vec::new();
        let mut values = Vec::new();
        // Sparse accumulator.
        let mut mark = vec![usize::MAX; self.nrows];
        let mut accum = vec![0.0f64; self.nrows];
        let mut pattern: Vec<usize> = Vec::new();
        for j in 0..other.ncols {
            pattern.clear();
            for p in other.colptr[j]..other.colptr[j + 1] {
                let k = other.rowidx[p];
                let bkj = other.values[p];
                for q in self.colptr[k]..self.colptr[k + 1] {
                    let i = self.rowidx[q];
                    if mark[i] != j {
                        mark[i] = j;
                        accum[i] = 0.0;
                        pattern.push(i);
                    }
                    accum[i] += self.values[q] * bkj;
                }
            }
            pattern.sort_unstable();
            for &i in &pattern {
                rowidx.push(i);
                values.push(accum[i]);
            }
            colptr[j + 1] = rowidx.len();
        }
        Ok(CscMatrix {
            nrows: self.nrows,
            ncols: other.ncols,
            colptr,
            rowidx,
            values,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::coo::TripletMatrix;

    fn sample() -> CscMatrix {
        // [ 2 -1  0 ]
        // [-1  2 -1 ]
        // [ 0 -1  2 ]
        let mut t = TripletMatrix::new(3, 3);
        for (i, j, v) in [
            (0, 0, 2.0),
            (1, 1, 2.0),
            (2, 2, 2.0),
            (0, 1, -1.0),
            (1, 0, -1.0),
            (1, 2, -1.0),
            (2, 1, -1.0),
        ] {
            t.push(i, j, v);
        }
        t.to_csc()
    }

    #[test]
    fn get_and_nnz() {
        let a = sample();
        assert_eq!(a.nnz(), 7);
        assert_eq!(a.get(0, 0), 2.0);
        assert_eq!(a.get(0, 2), 0.0);
        assert_eq!(a.get(2, 1), -1.0);
    }

    #[test]
    fn matvec_matches_dense() {
        let a = sample();
        let x = [1.0, 2.0, 3.0];
        assert_eq!(a.matvec(&x), a.to_dense().matvec(&x));
    }

    #[test]
    fn matvec_transpose_of_symmetric_equals_matvec() {
        let a = sample();
        let x = [1.0, -2.0, 0.5];
        let y1 = a.matvec(&x);
        let y2 = a.matvec_transpose(&x);
        for (a, b) in y1.iter().zip(&y2) {
            assert!((a - b).abs() < 1e-15);
        }
    }

    #[test]
    fn transpose_twice_is_identity() {
        let a = sample();
        assert_eq!(a.transpose().transpose(), a);
    }

    #[test]
    fn triangles_partition_entries() {
        let a = sample();
        let low = a.lower_triangle();
        let up = a.upper_triangle();
        // Diagonal counted twice.
        assert_eq!(low.nnz() + up.nnz(), a.nnz() + 3);
    }

    #[test]
    fn add_scaled_subtracts_to_zero() {
        let a = sample();
        let z = a.add_scaled(1.0, &a, -1.0).expect("same shape");
        assert!(z.values().iter().all(|&v| v == 0.0));
    }

    #[test]
    fn symmetric_permutation_preserves_values() {
        let a = sample();
        let perm = Permutation::from_new_to_old(vec![2, 0, 1]).expect("valid");
        let b = a.permute_symmetric(&perm).expect("square");
        for new_i in 0..3 {
            for new_j in 0..3 {
                assert_eq!(b.get(new_i, new_j), a.get(perm.old(new_i), perm.old(new_j)));
            }
        }
    }

    #[test]
    fn principal_submatrix_picks_block() {
        let a = sample();
        let s = a.principal_submatrix(&[0, 2]);
        assert_eq!(s.get(0, 0), 2.0);
        assert_eq!(s.get(1, 1), 2.0);
        assert_eq!(s.get(0, 1), 0.0);
    }

    #[test]
    fn submatrix_rectangular() {
        let a = sample();
        let s = a.submatrix(&[1], &[0, 1, 2]);
        assert_eq!(s.nrows(), 1);
        assert_eq!(s.ncols(), 3);
        assert_eq!(s.get(0, 0), -1.0);
        assert_eq!(s.get(0, 1), 2.0);
        assert_eq!(s.get(0, 2), -1.0);
    }

    #[test]
    fn matmul_matches_dense() {
        let a = sample();
        let b = sample();
        let c = a.matmul(&b).expect("shapes");
        let dense = a.to_dense().matmul(&b.to_dense()).expect("shapes");
        assert!(c.to_dense().max_abs_diff(&dense) < 1e-14);
    }

    #[test]
    fn from_raw_validates() {
        assert!(CscMatrix::from_raw(2, 2, vec![0, 1], vec![0, 1], vec![1.0, 1.0]).is_err());
        assert!(CscMatrix::from_raw(2, 2, vec![0, 1, 2], vec![0, 5], vec![1.0, 1.0]).is_err());
        assert!(CscMatrix::from_raw(2, 2, vec![0, 2, 2], vec![1, 0], vec![1.0, 1.0]).is_err());
        assert!(CscMatrix::from_raw(2, 2, vec![0, 1, 2], vec![0, 1], vec![1.0, 1.0]).is_ok());
    }

    #[test]
    fn is_symmetric_detects_asymmetry() {
        let a = sample();
        assert!(a.is_symmetric(1e-12));
        let mut t = TripletMatrix::new(2, 2);
        t.push(0, 1, 1.0);
        assert!(!t.to_csc().is_symmetric(1e-12));
    }

    #[test]
    fn drop_small_keeps_diagonal() {
        let mut t = TripletMatrix::new(2, 2);
        t.push(0, 0, 1e-12);
        t.push(1, 0, 1e-12);
        t.push(1, 1, 1.0);
        let a = t.to_csc().drop_small(1e-6);
        assert_eq!(a.get(0, 0), 1e-12);
        assert_eq!(a.get(1, 0), 0.0);
    }

    #[test]
    fn identity_matvec() {
        let eye = CscMatrix::identity(3);
        assert_eq!(eye.matvec(&[1.0, 2.0, 3.0]), vec![1.0, 2.0, 3.0]);
    }

    #[test]
    fn diagonal_extraction() {
        let a = sample();
        assert_eq!(a.diagonal(), vec![2.0, 2.0, 2.0]);
        let rect = CscMatrix::zeros(2, 3);
        assert_eq!(rect.diagonal(), vec![0.0, 0.0]);
    }

    #[test]
    fn matvec_into_reuses_buffer() {
        let a = sample();
        let mut y = vec![7.0; 3];
        a.matvec_into(&[1.0, 0.0, -1.0], &mut y);
        assert_eq!(y, a.matvec(&[1.0, 0.0, -1.0]));
    }

    #[test]
    fn residual_inf_norm_is_zero_for_exact_solution() {
        let a = CscMatrix::identity(4);
        let x = [1.0, -2.0, 3.0, 0.5];
        assert_eq!(a.residual_inf_norm(&x, &x), 0.0);
        assert!(a.residual_inf_norm(&x, &[0.0; 4]) > 2.9);
    }

    #[test]
    fn column_accessors_agree() {
        let a = sample();
        for j in 0..3 {
            let pairs: Vec<(usize, f64)> = a.column(j).collect();
            let rows = a.column_rows(j);
            let vals = a.column_values(j);
            assert_eq!(pairs.len(), rows.len());
            for ((p, v), (&r, &w)) in pairs.iter().zip(rows.iter().zip(vals)) {
                assert_eq!(*p, r);
                assert_eq!(*v, w);
            }
        }
    }
}
