//! Incomplete Cholesky factorization with threshold dropping (ICT).
//!
//! The paper's Alg. 3 uses an incomplete Cholesky factorization of the
//! grounded Laplacian (drop tolerance 1e-3 in the experiments) as the input
//! of the approximate-inverse construction. This module implements a
//! left-looking column factorization that drops computed entries whose
//! magnitude falls below `drop_tolerance` times the 1-norm of the
//! corresponding column of `A`, mirroring MATLAB's `ichol(..., 'ict')`.
//!
//! For the symmetric diagonally dominant M-matrices arising from graph
//! Laplacians the incomplete factorization cannot break down (Meijerink–van
//! der Vorst); a small diagonal compensation is applied defensively if a
//! nonpositive pivot is ever produced by round-off.

use crate::csc::CscMatrix;
use crate::error::SparseError;

/// Options controlling the incomplete Cholesky factorization.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct IcholOptions {
    /// Relative drop tolerance: an entry of the working column is dropped if
    /// its magnitude is at most `drop_tolerance * ||A(:, j)||_1`.
    ///
    /// A value of `0.0` keeps every entry and reproduces the full
    /// factorization (with its fill).
    pub drop_tolerance: f64,
    /// Hard cap on the number of off-diagonal entries kept per column
    /// (`usize::MAX` disables the cap). The largest-magnitude entries win.
    pub max_fill_per_column: usize,
    /// Multiplicative diagonal boost applied when a nonpositive pivot is
    /// encountered; the pivot is replaced by
    /// `breakdown_shift * |A(j, j)|` (plus a tiny absolute floor).
    pub breakdown_shift: f64,
    /// Diagonal compensation heuristic (in the spirit of modified incomplete
    /// Cholesky): the mass of the dropped entries of each working column is
    /// added to that column's pivot before scaling. For Laplacian-like (SDD
    /// M-)matrices the dropped entries are nonpositive, so compensation
    /// counteracts the systematic stiffening that plain dropping introduces.
    pub diagonal_compensation: bool,
}

impl Default for IcholOptions {
    fn default() -> Self {
        IcholOptions {
            drop_tolerance: 1e-3,
            max_fill_per_column: usize::MAX,
            breakdown_shift: 1e-3,
            diagonal_compensation: false,
        }
    }
}

impl IcholOptions {
    /// Creates options with the given drop tolerance and defaults elsewhere.
    ///
    /// # Errors
    ///
    /// Returns [`SparseError::InvalidParameter`] for negative or non-finite
    /// tolerances.
    pub fn with_drop_tolerance(drop_tolerance: f64) -> Result<Self, SparseError> {
        if !(drop_tolerance >= 0.0) || !drop_tolerance.is_finite() {
            return Err(SparseError::InvalidParameter {
                name: "drop_tolerance",
                message: "must be finite and nonnegative",
            });
        }
        Ok(IcholOptions {
            drop_tolerance,
            ..IcholOptions::default()
        })
    }
}

/// Summary statistics of an incomplete factorization.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct IcholStats {
    /// Number of entries dropped by the threshold rule.
    pub dropped: usize,
    /// Number of columns whose pivot needed a breakdown shift.
    pub shifted_pivots: usize,
    /// Number of nonzeros in the factor (diagonal included).
    pub factor_nnz: usize,
}

/// An incomplete Cholesky factor `L` with `L L^T ≈ A`.
#[derive(Debug, Clone)]
pub struct IncompleteCholesky {
    l: CscMatrix,
    stats: IcholStats,
}

impl IncompleteCholesky {
    /// Computes the incomplete factorization of a sparse symmetric matrix
    /// using the given options. Only the lower triangle of `a` is referenced.
    ///
    /// # Errors
    ///
    /// Returns [`SparseError::NotSquare`] for rectangular input and
    /// [`SparseError::InvalidParameter`] for invalid options.
    pub fn factor(a: &CscMatrix, options: IcholOptions) -> Result<Self, SparseError> {
        if a.nrows() != a.ncols() {
            return Err(SparseError::NotSquare {
                nrows: a.nrows(),
                ncols: a.ncols(),
            });
        }
        if !(options.drop_tolerance >= 0.0) || !options.drop_tolerance.is_finite() {
            return Err(SparseError::InvalidParameter {
                name: "drop_tolerance",
                message: "must be finite and nonnegative",
            });
        }
        if !(options.breakdown_shift > 0.0) {
            return Err(SparseError::InvalidParameter {
                name: "breakdown_shift",
                message: "must be positive",
            });
        }
        let n = a.ncols();
        // 1-norms of the lower-triangular part of each column of A, the
        // reference magnitude of the drop rule (as in MATLAB's `ichol` with
        // the `ict` option).
        let mut col_norm1 = vec![0.0f64; n];
        for j in 0..n {
            col_norm1[j] = a
                .column(j)
                .filter(|&(i, _)| i >= j)
                .map(|(_, v)| v.abs())
                .sum();
        }

        // Growing factor columns.
        let mut col_rows: Vec<Vec<usize>> = vec![Vec::new(); n];
        let mut col_vals: Vec<Vec<f64>> = vec![Vec::new(); n];

        // Linked lists for the left-looking update: for each row j,
        // `row_heads[j]` is a list of columns k < j whose next unprocessed
        // entry has row index j. `col_next[k]` is the position of that entry
        // within column k.
        let mut row_heads: Vec<Vec<usize>> = vec![Vec::new(); n];
        let mut col_next: Vec<usize> = vec![0; n];

        // Dense workspace.
        let mut w = vec![0.0f64; n];
        let mut pattern: Vec<usize> = Vec::new();
        let mut in_pattern = vec![false; n];

        let mut stats = IcholStats::default();

        for j in 0..n {
            // Scatter the lower part of column j of A.
            pattern.clear();
            for (i, v) in a.column(j) {
                if i >= j {
                    if !in_pattern[i] {
                        in_pattern[i] = true;
                        pattern.push(i);
                    }
                    w[i] += v;
                }
            }
            // Left-looking updates from all columns k with L(j, k) != 0.
            let updaters = std::mem::take(&mut row_heads[j]);
            for k in updaters {
                let pos = col_next[k];
                let ljk = col_vals[k][pos];
                // Apply w(j:n) -= ljk * L(j:n, k).
                for (p, &i) in col_rows[k].iter().enumerate().skip(pos) {
                    if !in_pattern[i] {
                        in_pattern[i] = true;
                        pattern.push(i);
                        w[i] = 0.0;
                    }
                    w[i] -= ljk * col_vals[k][p];
                }
                // Advance column k's cursor to its next row and re-enqueue.
                if pos + 1 < col_rows[k].len() {
                    col_next[k] = pos + 1;
                    row_heads[col_rows[k][pos + 1]].push(k);
                }
            }

            // Collect the off-diagonal entries of the working column and
            // split them into kept and dropped sets.
            let threshold = options.drop_tolerance * col_norm1[j];
            let mut kept: Vec<(usize, f64)> = Vec::new();
            let mut dropped_sum = 0.0;
            let pivot_accum = w[j];
            for &i in &pattern {
                in_pattern[i] = false;
                let v = w[i];
                w[i] = 0.0;
                if i == j {
                    continue;
                }
                if v.abs() > threshold {
                    kept.push((i, v));
                } else {
                    dropped_sum += v;
                    stats.dropped += 1;
                }
            }
            if kept.len() > options.max_fill_per_column {
                kept.sort_unstable_by(|a, b| {
                    b.1.abs()
                        .partial_cmp(&a.1.abs())
                        .expect("factor entries are finite")
                });
                for &(_, v) in &kept[options.max_fill_per_column..] {
                    dropped_sum += v;
                }
                stats.dropped += kept.len() - options.max_fill_per_column;
                kept.truncate(options.max_fill_per_column);
            }
            kept.sort_unstable_by_key(|&(i, _)| i);

            // Pivot, optionally compensated by the dropped mass so that the
            // row sums of L Lᵀ track those of A (modified incomplete Cholesky).
            let mut d = pivot_accum;
            if options.diagonal_compensation {
                d += dropped_sum;
            }
            if d <= 0.0 {
                let shift = options.breakdown_shift * a.get(j, j).abs() + f64::EPSILON;
                d = shift.max(f64::EPSILON);
                stats.shifted_pivots += 1;
            }
            let diag = d.sqrt();

            // Store column j: diagonal first, then the scaled kept off-diagonals.
            col_rows[j].push(j);
            col_vals[j].push(diag);
            for (i, v) in kept {
                col_rows[j].push(i);
                col_vals[j].push(v / diag);
            }
            // Register column j for the left-looking update of its first
            // off-diagonal row.
            if col_rows[j].len() > 1 {
                col_next[j] = 1;
                row_heads[col_rows[j][1]].push(j);
            }
        }

        // Assemble the CSC factor.
        let mut colptr = vec![0usize; n + 1];
        for j in 0..n {
            colptr[j + 1] = colptr[j] + col_rows[j].len();
        }
        let mut rowidx = Vec::with_capacity(colptr[n]);
        let mut values = Vec::with_capacity(colptr[n]);
        for j in 0..n {
            rowidx.extend_from_slice(&col_rows[j]);
            values.extend_from_slice(&col_vals[j]);
        }
        stats.factor_nnz = rowidx.len();
        let l = CscMatrix::from_raw(n, n, colptr, rowidx, values)?;
        Ok(IncompleteCholesky { l, stats })
    }

    /// Computes the incomplete factorization with default options and the
    /// given drop tolerance.
    ///
    /// # Errors
    ///
    /// See [`IncompleteCholesky::factor`].
    pub fn with_drop_tolerance(a: &CscMatrix, drop_tolerance: f64) -> Result<Self, SparseError> {
        Self::factor(a, IcholOptions::with_drop_tolerance(drop_tolerance)?)
    }

    /// The incomplete lower-triangular factor.
    pub fn factor_l(&self) -> &CscMatrix {
        &self.l
    }

    /// Consumes the factorization and returns the factor.
    pub fn into_factor(self) -> CscMatrix {
        self.l
    }

    /// Statistics gathered during the factorization.
    pub fn stats(&self) -> IcholStats {
        self.stats
    }

    /// Number of nonzeros in the factor.
    pub fn nnz(&self) -> usize {
        self.l.nnz()
    }

    /// Applies the preconditioner: solves `L L^T z = r`.
    ///
    /// # Panics
    ///
    /// Panics if `r.len()` differs from the factor order.
    pub fn apply(&self, r: &[f64]) -> Vec<f64> {
        let mut z = r.to_vec();
        crate::trisolve::solve_cholesky(&self.l, &mut z);
        z
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cholesky::CholeskyFactor;
    use crate::coo::TripletMatrix;

    fn grid_laplacian(rows: usize, cols: usize, shift: f64) -> CscMatrix {
        let idx = |r: usize, c: usize| r * cols + c;
        let n = rows * cols;
        let mut t = TripletMatrix::new(n, n);
        for r in 0..rows {
            for c in 0..cols {
                if c + 1 < cols {
                    t.add_laplacian_edge(idx(r, c), idx(r, c + 1), 1.0);
                }
                if r + 1 < rows {
                    t.add_laplacian_edge(idx(r, c), idx(r + 1, c), 1.0);
                }
            }
        }
        for i in 0..n {
            t.push(i, i, shift);
        }
        t.to_csc()
    }

    #[test]
    fn zero_drop_tolerance_reproduces_full_factor() {
        let a = grid_laplacian(4, 4, 0.3);
        let full = CholeskyFactor::factor(&a).expect("spd");
        let inc = IncompleteCholesky::with_drop_tolerance(&a, 0.0).expect("spd");
        assert!(
            inc.factor_l()
                .to_dense()
                .max_abs_diff(&full.factor_l().to_dense())
                < 1e-12
        );
        assert_eq!(inc.stats().dropped, 0);
        assert_eq!(inc.stats().shifted_pivots, 0);
    }

    #[test]
    fn dropping_reduces_fill() {
        let a = grid_laplacian(8, 8, 1e-3);
        let full = IncompleteCholesky::with_drop_tolerance(&a, 0.0).expect("spd");
        let dropped = IncompleteCholesky::with_drop_tolerance(&a, 0.05).expect("spd");
        assert!(dropped.nnz() < full.nnz());
        assert!(dropped.stats().dropped > 0);
    }

    #[test]
    fn factor_is_a_useful_preconditioner() {
        let a = grid_laplacian(6, 6, 1e-2);
        let inc = IncompleteCholesky::with_drop_tolerance(&a, 1e-3).expect("spd");
        // L L^T should approximate A: check the relative Frobenius error is small.
        let l = inc.factor_l();
        let llt = l.matmul(&l.transpose()).expect("shapes");
        let diff = llt.add_scaled(1.0, &a, -1.0).expect("same shape");
        let rel = diff.to_dense().frobenius_norm() / a.to_dense().frobenius_norm();
        assert!(rel < 0.05, "relative error {rel} too large");
    }

    #[test]
    fn max_fill_cap_is_respected() {
        let a = grid_laplacian(6, 6, 1e-3);
        let opts = IcholOptions {
            drop_tolerance: 0.0,
            max_fill_per_column: 2,
            ..IcholOptions::default()
        };
        let inc = IncompleteCholesky::factor(&a, opts).expect("spd");
        let l = inc.factor_l();
        for j in 0..l.ncols() {
            assert!(l.column_rows(j).len() <= 3, "column {j} exceeds cap");
        }
    }

    #[test]
    fn laplacian_factor_keeps_sign_structure() {
        // Lemma 1 requires positive diagonal and nonpositive off-diagonals.
        let a = grid_laplacian(5, 5, 1e-3);
        let inc = IncompleteCholesky::with_drop_tolerance(&a, 1e-2).expect("spd");
        let l = inc.factor_l();
        for j in 0..l.ncols() {
            for (i, v) in l.column(j) {
                if i == j {
                    assert!(v > 0.0);
                } else {
                    assert!(v <= 0.0);
                }
            }
        }
    }

    #[test]
    fn diagonal_compensation_softens_the_factor() {
        // Plain dropping stiffens the factored operator (dropped entries of an
        // M-matrix column are negative, so pivots come out too large);
        // compensation folds the dropped mass back into the pivot, so every
        // compensated pivot is at most the plain one and the row sums of
        // L Lᵀ move closer to those of A.
        let a = grid_laplacian(8, 8, 0.5);
        let plain_opts = IcholOptions {
            drop_tolerance: 5e-2,
            ..IcholOptions::default()
        };
        let comp_opts = IcholOptions {
            diagonal_compensation: true,
            ..plain_opts
        };
        let plain = IncompleteCholesky::factor(&a, plain_opts).expect("spd");
        let comp = IncompleteCholesky::factor(&a, comp_opts).expect("spd");
        assert!(plain.stats().dropped > 0, "test requires actual dropping");
        let n = a.ncols();
        for j in 0..n {
            assert!(comp.factor_l().get(j, j) <= plain.factor_l().get(j, j) + 1e-14);
        }
        let ones = vec![1.0; n];
        let row_sum_error = |ic: &IncompleteCholesky| -> f64 {
            let l = ic.factor_l();
            let llt_ones = l.matvec(&l.matvec_transpose(&ones));
            let a_ones = a.matvec(&ones);
            llt_ones
                .iter()
                .zip(&a_ones)
                .map(|(x, y)| (x - y).abs())
                .sum()
        };
        assert!(row_sum_error(&comp) < row_sum_error(&plain));
    }

    #[test]
    fn invalid_options_rejected() {
        let a = grid_laplacian(2, 2, 1.0);
        assert!(IcholOptions::with_drop_tolerance(-1.0).is_err());
        assert!(IcholOptions::with_drop_tolerance(f64::NAN).is_err());
        let bad = IcholOptions {
            drop_tolerance: 0.1,
            breakdown_shift: 0.0,
            ..IcholOptions::default()
        };
        assert!(IncompleteCholesky::factor(&a, bad).is_err());
    }

    #[test]
    fn rectangular_rejected() {
        let a = CscMatrix::zeros(2, 3);
        assert!(IncompleteCholesky::with_drop_tolerance(&a, 0.1).is_err());
    }
}
