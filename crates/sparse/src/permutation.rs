//! Permutations of `0..n`, used for fill-reducing orderings.

use crate::error::SparseError;

/// A permutation of `0..n` stored in both directions.
///
/// The convention follows sparse direct solvers: `old(i)` gives the original
/// index placed at position `i` of the permuted ordering, and `new(j)` gives
/// the position of original index `j` in the permuted ordering.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Permutation {
    new_to_old: Vec<usize>,
    old_to_new: Vec<usize>,
}

impl Permutation {
    /// The identity permutation on `0..n`.
    pub fn identity(n: usize) -> Self {
        Permutation {
            new_to_old: (0..n).collect(),
            old_to_new: (0..n).collect(),
        }
    }

    /// Builds a permutation from the "new index -> old index" map.
    ///
    /// # Errors
    ///
    /// Returns [`SparseError::InvalidParameter`] if `new_to_old` is not a
    /// permutation of `0..n`.
    pub fn from_new_to_old(new_to_old: Vec<usize>) -> Result<Self, SparseError> {
        let n = new_to_old.len();
        let mut old_to_new = vec![usize::MAX; n];
        for (new, &old) in new_to_old.iter().enumerate() {
            if old >= n || old_to_new[old] != usize::MAX {
                return Err(SparseError::InvalidParameter {
                    name: "new_to_old",
                    message: "not a permutation of 0..n",
                });
            }
            old_to_new[old] = new;
        }
        Ok(Permutation {
            new_to_old,
            old_to_new,
        })
    }

    /// Builds a permutation from the "old index -> new index" map.
    ///
    /// # Errors
    ///
    /// Returns [`SparseError::InvalidParameter`] if `old_to_new` is not a
    /// permutation of `0..n`.
    pub fn from_old_to_new(old_to_new: Vec<usize>) -> Result<Self, SparseError> {
        let n = old_to_new.len();
        let mut new_to_old = vec![usize::MAX; n];
        for (old, &new) in old_to_new.iter().enumerate() {
            if new >= n || new_to_old[new] != usize::MAX {
                return Err(SparseError::InvalidParameter {
                    name: "old_to_new",
                    message: "not a permutation of 0..n",
                });
            }
            new_to_old[new] = old;
        }
        Ok(Permutation {
            new_to_old,
            old_to_new,
        })
    }

    /// Length of the permutation.
    pub fn len(&self) -> usize {
        self.new_to_old.len()
    }

    /// Whether the permutation is empty.
    pub fn is_empty(&self) -> bool {
        self.new_to_old.is_empty()
    }

    /// Original index placed at permuted position `new`.
    ///
    /// # Panics
    ///
    /// Panics if `new >= self.len()`.
    #[inline]
    pub fn old(&self, new: usize) -> usize {
        self.new_to_old[new]
    }

    /// Permuted position of original index `old`.
    ///
    /// # Panics
    ///
    /// Panics if `old >= self.len()`.
    // The name is domain vocabulary (`old` -> `new` index), not a constructor.
    #[allow(clippy::new_ret_no_self)]
    #[inline]
    pub fn new(&self, old: usize) -> usize {
        self.old_to_new[old]
    }

    /// The "new index -> old index" map.
    pub fn new_to_old(&self) -> &[usize] {
        &self.new_to_old
    }

    /// The "old index -> new index" map.
    pub fn old_to_new(&self) -> &[usize] {
        &self.old_to_new
    }

    /// The inverse permutation.
    pub fn inverse(&self) -> Permutation {
        Permutation {
            new_to_old: self.old_to_new.clone(),
            old_to_new: self.new_to_old.clone(),
        }
    }

    /// Applies the permutation to a dense vector indexed by old indices,
    /// producing the vector in permuted order: `out[new] = x[old(new)]`.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != self.len()`.
    pub fn apply(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(x.len(), self.len(), "length mismatch");
        self.new_to_old.iter().map(|&old| x[old]).collect()
    }

    /// Applies the inverse permutation to a vector in permuted order,
    /// recovering the vector in original order: `out[old] = x[new(old)]`.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != self.len()`.
    pub fn apply_inverse(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(x.len(), self.len(), "length mismatch");
        self.old_to_new.iter().map(|&new| x[new]).collect()
    }

    /// Whether this is the identity permutation.
    pub fn is_identity(&self) -> bool {
        self.new_to_old.iter().enumerate().all(|(i, &v)| i == v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_is_identity() {
        let p = Permutation::identity(4);
        assert!(p.is_identity());
        assert_eq!(p.apply(&[1.0, 2.0, 3.0, 4.0]), vec![1.0, 2.0, 3.0, 4.0]);
    }

    #[test]
    fn old_new_are_inverse_maps() {
        let p = Permutation::from_new_to_old(vec![2, 0, 1]).expect("valid");
        for new in 0..3 {
            assert_eq!(p.new(p.old(new)), new);
        }
        for old in 0..3 {
            assert_eq!(p.old(p.new(old)), old);
        }
        assert_eq!(p.inverse().inverse(), p);
    }

    #[test]
    fn apply_and_apply_inverse_round_trip() {
        let p = Permutation::from_new_to_old(vec![2, 0, 1]).expect("valid");
        let x = vec![10.0, 20.0, 30.0];
        let permuted = p.apply(&x);
        assert_eq!(permuted, vec![30.0, 10.0, 20.0]);
        assert_eq!(p.apply_inverse(&permuted), x);
    }

    #[test]
    fn from_old_to_new_consistent_with_from_new_to_old() {
        let a = Permutation::from_new_to_old(vec![2, 0, 1]).expect("valid");
        let b = Permutation::from_old_to_new(a.old_to_new().to_vec()).expect("valid");
        assert_eq!(a, b);
    }

    #[test]
    fn invalid_permutations_rejected() {
        assert!(Permutation::from_new_to_old(vec![0, 0]).is_err());
        assert!(Permutation::from_new_to_old(vec![0, 5]).is_err());
        assert!(Permutation::from_old_to_new(vec![1, 1]).is_err());
    }
}
