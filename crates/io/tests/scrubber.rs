//! Integrity-scrubber tests: `scrub_page` re-validates an on-disk page with
//! the same checks the serving fetch path uses (including the one automatic
//! re-fetch), without inserting into the LRU; rotten pages are quarantined —
//! evicted from the cache, counted, and re-fetched on the next touch. The
//! cumulative `ScrubStats` counters survive batch stat windows.

use effres::column_store::ColumnStore;
use effres::EffresError;
use effres_io::paged::{open_paged, open_paged_with_faults, PagedOptions};
use effres_io::{FaultPlan, RetryPolicy};
use std::path::PathBuf;
use std::time::Duration;

fn fixture(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name)
}

/// Small pages so corruption confinement is observable per page.
fn small_pages() -> PagedOptions {
    PagedOptions {
        columns_per_page: 4,
        cache_pages: 8,
        cache_shards: 1,
        ..PagedOptions::default()
    }
}

fn fast_retry(max_retries: u32) -> RetryPolicy {
    RetryPolicy {
        max_retries,
        backoff: Duration::from_micros(1),
    }
}

#[test]
fn scrubbing_a_clean_snapshot_finds_nothing_and_counts_every_page() {
    let paged = open_paged(fixture("v3_grid12.snap"), &small_pages()).expect("open");
    let pages = paged.store.page_count();
    for pid in 0..pages {
        paged.store.scrub_page(pid).expect("clean page scrubs");
    }
    let stats = paged.store.scrub_stats();
    assert_eq!(stats.pages_scrubbed, pages as u64);
    assert_eq!(stats.scrub_failures, 0);
    assert_eq!(stats.quarantined, 0);
}

#[test]
fn at_rest_rot_is_detected_quarantined_and_confined() {
    let clean = open_paged(fixture("v3_grid12.snap"), &small_pages()).expect("clean open");
    // Rot two value bytes of a mid-file column at rest: both the fetch and
    // the scrubber's re-fetch see the same bad bytes.
    let victim = 57;
    let offset = clean.store.column_value_byte_offset(victim) + 6;
    let rotten_page = clean.store.page_of_column(victim);
    let plan = FaultPlan::new(0).poison(offset, 2);
    let paged = open_paged_with_faults(
        fixture("v3_grid12.snap"),
        &small_pages().with_retry(fast_retry(2)),
        plan,
    )
    .expect("faulted open");

    for pid in 0..paged.store.page_count() {
        let result = paged.store.scrub_page(pid);
        if pid == rotten_page {
            assert!(result.is_err(), "the rotten page must fail the scrub");
        } else {
            result.expect("healthy pages scrub clean");
        }
    }
    let stats = paged.store.scrub_stats();
    assert_eq!(stats.pages_scrubbed, paged.store.page_count() as u64);
    assert_eq!(stats.scrub_failures, 1, "exactly one page is rotten");
    assert_eq!(stats.quarantined, 1, "the rotten page was quarantined");

    // The quarantined page is re-fetched on the next touch — and, the rot
    // being at rest, fails typed rather than serving garbage.
    let err = paged
        .store
        .with_column(victim, |_| ())
        .expect_err("persistent rot must not serve");
    assert!(matches!(err, EffresError::StoreFailure { .. }), "{err:?}");
}

#[test]
fn in_transit_rot_clears_on_the_scrubbers_refetch() {
    // Corruption only on first-fetch attempts (rot in transit): the scrub's
    // automatic re-fetch reads clean bytes, so the page passes and nothing
    // is quarantined.
    let clean = open_paged(fixture("v3_grid12.snap"), &small_pages()).expect("clean open");
    let offset = clean.store.column_value_byte_offset(57) + 6;
    let plan = FaultPlan::new(0).poison_until_refetch(offset, 2);
    let paged = open_paged_with_faults(
        fixture("v3_grid12.snap"),
        &small_pages().with_retry(fast_retry(2)),
        plan,
    )
    .expect("faulted open");

    for pid in 0..paged.store.page_count() {
        paged.store.scrub_page(pid).expect("re-fetch recovers");
    }
    let stats = paged.store.scrub_stats();
    assert_eq!(stats.scrub_failures, 0);
    assert_eq!(stats.quarantined, 0);
    assert!(
        paged.store.page_cache_stats().retries > 0,
        "the recovery was not free"
    );
}

#[test]
fn quarantine_evicts_a_cached_page_and_the_next_touch_refetches() {
    let paged = open_paged(fixture("v3_grid12.snap"), &small_pages()).expect("open");
    let reference = paged
        .store
        .with_column(0, |col| {
            (
                col.indices().to_vec(),
                col.values().iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
            )
        })
        .expect("first read");
    let pid = paged.store.page_of_column(0);
    assert!(paged.store.quarantine_page(pid), "page was cached");
    assert!(
        !paged.store.quarantine_page(pid),
        "second quarantine finds nothing to evict"
    );
    let misses_before = paged.store.page_cache_stats().misses;
    let reread = paged
        .store
        .with_column(0, |col| {
            (
                col.indices().to_vec(),
                col.values().iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
            )
        })
        .expect("re-fetch after quarantine");
    assert_eq!(reread, reference, "the re-fetched page is bit-identical");
    assert!(
        paged.store.page_cache_stats().misses > misses_before,
        "the touch after quarantine must be a cache miss"
    );
    assert_eq!(paged.store.scrub_stats().quarantined, 2);
}
