//! Fault-injection integration tests: the paged store against a seeded
//! [`FaultPlan`] behind its positioned-read seam, pinned on the committed
//! `v3_grid12.snap` fixture.
//!
//! The invariants under test: transient faults (I/O errors, short reads,
//! in-transit corruption) are absorbed by bounded retry and the re-fetch
//! pass with **bit-identical** answers and observable `retries` counters;
//! persistent corruption fails validation deterministically and confines
//! the damage to the page it lives on; and an exhausted retry budget
//! surfaces a typed [`EffresError::StoreFailure`], never a panic or a
//! wrong answer.

use effres::column_store::ColumnStore;
use effres::EffresError;
use effres_io::paged::{open_paged, open_paged_with_faults, PagedOptions, PagedSnapshot};
use effres_io::{FaultPlan, RetryPolicy};
use std::path::PathBuf;
use std::time::Duration;

fn fixture(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name)
}

/// Small pages + small cache: every column read goes through the injected
/// read seam instead of hiding in one giant cached page.
fn churny_options() -> PagedOptions {
    PagedOptions {
        columns_per_page: 4,
        cache_pages: 2,
        cache_shards: 1,
        ..PagedOptions::default()
    }
}

/// Fast test backoff: exercises the retry loop without sleeping for real.
fn fast_retry(max_retries: u32) -> RetryPolicy {
    RetryPolicy {
        max_retries,
        backoff: Duration::from_micros(1),
    }
}

/// Every column of `store`, decoded to owned `(rows, value bits)` — the
/// canonical form for bitwise comparison across fault configurations.
fn dump_columns(store: &PagedSnapshot) -> Vec<(Vec<u32>, Vec<u64>)> {
    (0..store.store.order())
        .map(|j| {
            store
                .store
                .with_column(j, |col| {
                    (
                        col.indices().to_vec(),
                        col.values().iter().map(|v| v.to_bits()).collect(),
                    )
                })
                .expect("fault-free or recovered column read")
        })
        .collect()
}

#[test]
fn transient_faults_are_absorbed_bit_identically() {
    let path = fixture("v3_grid12.snap");
    let clean = open_paged(&path, &churny_options()).expect("fault-free open");
    let reference = dump_columns(&clean);

    // 3% transient errors + 1% short reads per read attempt: with a small
    // cache every page is fetched (and re-fetched after eviction) many
    // times, so plenty of attempts fault — and bounded retry absorbs every
    // one of them.
    let plan = FaultPlan::new(0xFA17)
        .with_transient_errors(30_000)
        .with_short_reads(10_000);
    let faulted = open_paged_with_faults(&path, &churny_options().with_retry(fast_retry(3)), plan)
        .expect("faulted open");
    let survived = dump_columns(&faulted);

    assert_eq!(reference.len(), survived.len());
    for (j, (clean_col, survived_col)) in reference.iter().zip(&survived).enumerate() {
        assert_eq!(clean_col, survived_col, "column {j} must be bit-identical");
    }
    let stats = faulted.store.page_cache_stats();
    assert!(
        stats.retries > 0,
        "a 4% fault rate must be visible in the retry counter: {stats:?}"
    );
    assert!(
        stats.faulted_reads >= stats.retries,
        "every retry was provoked by an observed fault: {stats:?}"
    );
}

#[test]
fn exhausted_retries_surface_a_typed_store_failure() {
    let path = fixture("v3_grid12.snap");
    // Every read attempt faults and there is no retry budget: the very
    // first column fetch must fail with a typed error, not a panic.
    let plan = FaultPlan::new(9).with_transient_errors(1_000_000);
    let faulted = open_paged_with_faults(
        &path,
        &churny_options().with_retry(RetryPolicy::none()),
        plan,
    )
    .expect("open-time reads are not injected");
    let result = faulted.store.with_column(0, |col| col.indices().len());
    match result {
        Err(EffresError::StoreFailure { column, .. }) => {
            assert_eq!(column, 0, "the failure names the column that asked")
        }
        other => panic!("expected a typed store failure, got {other:?}"),
    }
    let stats = faulted.store.page_cache_stats();
    assert!(stats.faulted_reads > 0);
    assert_eq!(stats.retries, 0, "no retry budget means no retries");
}

#[test]
fn persistent_poison_fails_only_the_page_it_lives_on() {
    let path = fixture("v3_grid12.snap");
    let clean = open_paged(&path, &churny_options()).expect("fault-free open");
    let reference = dump_columns(&clean);

    // Rot the two high bytes of a mid-file value: they decode as NaN, page
    // validation rejects the page on fetch *and* on the re-fetch pass, and
    // the typed failure is confined to the columns of that one page.
    let victim = 57;
    let offset = clean.store.column_value_byte_offset(victim) + 6;
    let poisoned_page = clean.store.page_of_column(victim);
    let columns_per_page = clean.store.columns_per_page();
    let plan = FaultPlan::new(0).poison(offset, 2);
    let faulted = open_paged_with_faults(&path, &churny_options().with_retry(fast_retry(2)), plan)
        .expect("faulted open");

    for j in 0..faulted.store.order() {
        let result = faulted.store.with_column(j, |col| {
            (
                col.indices().to_vec(),
                col.values().iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
            )
        });
        if faulted.store.page_of_column(j) == poisoned_page {
            assert!(
                matches!(result, Err(EffresError::StoreFailure { .. })),
                "column {j} shares the rotten page (columns/page {columns_per_page}) \
                 and must fail typed, got {result:?}"
            );
        } else {
            assert_eq!(
                result.expect("untouched page serves"),
                reference[j],
                "column {j} is off the rotten page and must be bit-identical"
            );
        }
    }
    let stats = faulted.store.page_cache_stats();
    assert!(
        stats.retries > 0,
        "each validation failure re-fetches once before giving up: {stats:?}"
    );
}

#[test]
fn transient_poison_clears_on_the_refetch_pass() {
    let path = fixture("v3_grid12.snap");
    let clean = open_paged(&path, &churny_options()).expect("fault-free open");
    let reference = dump_columns(&clean);

    // Same corruption shape, but only on first-fetch attempts (rot in
    // transit, not at rest): the automatic re-fetch reads clean bytes and
    // every answer is bit-identical — the recovery is visible only in the
    // retry counter.
    let offset = clean.store.column_value_byte_offset(57) + 6;
    let plan = FaultPlan::new(0).poison_until_refetch(offset, 2);
    let faulted = open_paged_with_faults(&path, &churny_options().with_retry(fast_retry(2)), plan)
        .expect("faulted open");
    let recovered = dump_columns(&faulted);
    assert_eq!(reference, recovered, "re-fetch must recover every bit");
    let stats = faulted.store.page_cache_stats();
    assert!(stats.retries > 0, "the recovery was not free: {stats:?}");
    assert!(stats.faulted_reads > 0);
}
