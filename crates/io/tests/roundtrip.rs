//! Property tests of the persistence layer: writing any graph and reading it
//! back must reproduce it exactly, through every format — edge lists, Matrix
//! Market, the gzip wrapper and binary snapshots.

use effres::{EffectiveResistanceEstimator, EffresConfig};
use effres_graph::Graph;
use effres_io::dataset::IngestOptions;
use effres_io::{edge_list, gzip, matrix_market, pairs, snapshot};
use proptest::prelude::*;
use std::io::Cursor;

/// Strategy: a connected weighted graph with `2..=60` nodes and weights that
/// print/parse exactly (dyadic rationals survive the decimal round trip).
fn connected_graph() -> impl Strategy<Value = Graph> {
    (2usize..60, any::<u64>()).prop_map(|(n, seed)| {
        let mut graph = Graph::new(n);
        let mut state = seed | 1;
        let mut next = move || {
            state ^= state >> 12;
            state ^= state << 25;
            state ^= state >> 27;
            state.wrapping_mul(0x2545_F491_4F6C_DD1D)
        };
        let weight = |next: &mut dyn FnMut() -> u64| 0.25 + (next() % 64) as f64 * 0.125;
        for i in 1..n {
            let j = (next() as usize) % i;
            let w = weight(&mut next);
            graph.add_edge(i, j, w).expect("valid edge");
        }
        for _ in 0..n / 2 {
            let a = (next() as usize) % n;
            let b = (next() as usize) % n;
            if a != b {
                let w = weight(&mut next);
                graph.add_edge(a, b, w).expect("valid edge");
            }
        }
        // The readers merge duplicates, so compare against the merged form.
        graph.coalesced()
    })
}

fn keep_everything() -> IngestOptions {
    IngestOptions {
        keep_largest_component: false,
        ..IngestOptions::default()
    }
}

/// A graph as a sorted list of `(u, v, w)` triples under original node ids —
/// the representation that is invariant under the reader's dense renumbering
/// (`labels` maps dense ids back to the file's ids).
fn canonical(graph: &Graph, labels: Option<&[u64]>) -> Vec<(u64, u64, f64)> {
    let mut edges: Vec<(u64, u64, f64)> = graph
        .edges()
        .map(|(_, e)| {
            let (a, b) = match labels {
                Some(labels) => (labels[e.u], labels[e.v]),
                None => (e.u as u64, e.v as u64),
            };
            (a.min(b), a.max(b), e.weight)
        })
        .collect();
    edges.sort_by(|x, y| x.partial_cmp(y).expect("finite weights"));
    edges
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    #[test]
    fn edge_list_write_read_is_identity(graph in connected_graph()) {
        let mut bytes = Vec::new();
        edge_list::write_edge_list(&mut bytes, &graph, None).expect("write");
        let ds = edge_list::read_edge_list(Cursor::new(bytes), &keep_everything()).expect("read");
        prop_assert_eq!(ds.graph.node_count(), graph.node_count());
        prop_assert_eq!(canonical(&ds.graph, Some(&ds.labels)), canonical(&graph, None));
    }

    #[test]
    fn matrix_market_write_read_is_identity(graph in connected_graph()) {
        let mut bytes = Vec::new();
        matrix_market::write_matrix_market(&mut bytes, &graph).expect("write");
        let ds = matrix_market::read_matrix_market(Cursor::new(bytes), &keep_everything())
            .expect("read");
        prop_assert_eq!(&ds.graph, &graph);
    }

    #[test]
    fn gzipped_edge_list_round_trips(graph in connected_graph()) {
        let mut bytes = Vec::new();
        edge_list::write_edge_list(&mut bytes, &graph, None).expect("write");
        let gz = gzip::gzip_stored(&bytes);
        let decoded = gzip::gunzip(&gz).expect("gunzip");
        prop_assert_eq!(&decoded, &bytes);
        let ds = edge_list::read_edge_list(Cursor::new(decoded), &keep_everything()).expect("read");
        prop_assert_eq!(canonical(&ds.graph, Some(&ds.labels)), canonical(&graph, None));
    }

    #[test]
    fn snapshot_round_trip_preserves_every_query(graph in connected_graph()) {
        let estimator = EffectiveResistanceEstimator::build(&graph, &EffresConfig::default())
            .expect("build");
        let mut bytes = Vec::new();
        snapshot::write_snapshot(&mut bytes, &estimator, None).expect("write");
        let restored = snapshot::read_snapshot(&mut bytes.as_slice()).expect("read");
        let n = graph.node_count();
        for p in 0..n.min(8) {
            let q = n - 1 - p.min(n - 1);
            let a = estimator.query(p, q).expect("query");
            let b = restored.estimator.query(p, q).expect("query");
            prop_assert_eq!(a, b, "({}, {})", p, q);
        }
        prop_assert_eq!(restored.estimator.stats(), estimator.stats());
    }

    #[test]
    fn pair_files_round_trip(graph in connected_graph()) {
        let n = graph.node_count() as u64;
        let pair_list: Vec<(u64, u64)> = (0..n).map(|i| (i, (i * 7 + 1) % n)).collect();
        let mut bytes = Vec::new();
        pairs::write_pairs(&mut bytes, &pair_list).expect("write");
        let back = pairs::read_pairs(Cursor::new(bytes)).expect("read");
        prop_assert_eq!(back, pair_list);
    }
}
