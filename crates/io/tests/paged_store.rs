//! The paged column store against the resident arena, pinned on the
//! committed `v2_grid12.snap` and `v3_grid12.snap` fixtures (same estimator,
//! two on-disk encodings): every query answer must be **bit-identical**
//! between the backends for every page geometry and cache size (including a
//! one-page cache that evicts on every page switch), and hostile files —
//! including corrupt v3 varint and norms blocks — must produce typed errors
//! *before* corrupt data can serve a query.

use effres::column_store::{self, ColumnStore};
use effres::EffresError;
use effres_io::paged::{open_paged, PagedOptions, PagedSnapshot};
use effres_io::snapshot::load_snapshot;
use effres_io::{IoError, Snapshot};
use proptest::prelude::*;
use std::path::PathBuf;
use std::sync::OnceLock;

fn fixture(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name)
}

/// The page geometries the property test sweeps: the default, a one-column /
/// one-page configuration (maximum eviction churn), an odd page size with a
/// tiny cache, and a page size larger than the whole fixture.
fn paged_configs() -> &'static [PagedOptions] {
    static CONFIGS: OnceLock<Vec<PagedOptions>> = OnceLock::new();
    CONFIGS.get_or_init(|| {
        vec![
            PagedOptions::default(),
            PagedOptions {
                columns_per_page: 1,
                cache_pages: 1,
                cache_shards: 1,
                ..PagedOptions::default()
            },
            PagedOptions {
                columns_per_page: 7,
                cache_pages: 2,
                cache_shards: 1,
                ..PagedOptions::default()
            },
            PagedOptions {
                columns_per_page: 1024,
                cache_pages: 4,
                cache_shards: 2,
                ..PagedOptions::default()
            },
        ]
    })
}

fn resident() -> &'static Snapshot {
    static RESIDENT: OnceLock<Snapshot> = OnceLock::new();
    RESIDENT.get_or_init(|| load_snapshot(fixture("v2_grid12.snap")).expect("v2 fixture loads"))
}

fn resident_norms() -> &'static [f64] {
    static NORMS: OnceLock<Vec<f64>> = OnceLock::new();
    NORMS.get_or_init(|| {
        resident()
            .estimator
            .approximate_inverse()
            .column_norms_squared()
    })
}

/// Every page geometry over every paged-capable fixture encoding: indices
/// `0..4` are the v2 file (raw rows, per-page norms), `4..8` the v3 file
/// (varint rows, persisted norms).
fn paged_stores() -> &'static [PagedSnapshot] {
    static STORES: OnceLock<Vec<PagedSnapshot>> = OnceLock::new();
    STORES.get_or_init(|| {
        ["v2_grid12.snap", "v3_grid12.snap"]
            .iter()
            .flat_map(|name| {
                paged_configs()
                    .iter()
                    .map(|options| open_paged(fixture(name), options).expect("fixture opens"))
            })
            .collect()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(400))]

    /// Random pairs through the fill-reducing permutation, across every page
    /// geometry and both paged encodings (v2 raw, v3 varint): the paged
    /// store must reproduce the resident arena's distance, norm-table
    /// distance and per-column norms bit for bit.
    #[test]
    fn paged_queries_match_resident_bitwise(
        (p, q, which) in (0usize..144, 0usize..144, 0usize..8),
    ) {
        let snapshot = resident();
        let inverse = snapshot.estimator.approximate_inverse();
        let permutation = snapshot.estimator.permutation();
        let paged = &paged_stores()[which];
        prop_assert_eq!(ColumnStore::order(&paged.store), inverse.order());
        prop_assert_eq!(ColumnStore::nnz(&paged.store), inverse.nnz());

        let pp = permutation.new(p);
        let qq = permutation.new(q);
        // Full union-merge distance.
        let resident_distance = inverse.column_distance_squared(pp, qq);
        let paged_distance = column_store::column_distance_squared(&paged.store, pp, qq)
            .expect("healthy fixture");
        prop_assert_eq!(resident_distance.to_bits(), paged_distance.to_bits());
        // Norm-table distance (the engine's hot path): the resident side
        // uses the precomputed table, the paged side per-column norms off
        // the decoded pages.
        let paged_norms = (
            paged.store.column_norm_squared(pp).expect("healthy fixture"),
            paged.store.column_norm_squared(qq).expect("healthy fixture"),
        );
        prop_assert_eq!(resident_norms()[pp].to_bits(), paged_norms.0.to_bits());
        prop_assert_eq!(resident_norms()[qq].to_bits(), paged_norms.1.to_bits());
        let resident_fast =
            inverse.column_distance_squared_with_norms(pp, qq, resident_norms());
        let paged_fast = column_store::column_distance_squared_with_norms(
            &paged.store,
            pp,
            qq,
            resident_norms(),
        )
        .expect("healthy fixture");
        prop_assert_eq!(resident_fast.to_bits(), paged_fast.to_bits());
    }
}

#[test]
fn one_page_cache_evicts_on_every_page_switch_and_stays_bit_identical() {
    // The degenerate cache: one page of one column. Walking all columns
    // forward and backward forces an eviction on every access after the
    // first repeat; answers must not change.
    let snapshot = resident();
    let inverse = snapshot.estimator.approximate_inverse();
    let paged = open_paged(
        fixture("v2_grid12.snap"),
        &PagedOptions {
            columns_per_page: 1,
            cache_pages: 1,
            cache_shards: 1,
            ..PagedOptions::default()
        },
    )
    .expect("fixture opens");
    assert_eq!(paged.store.cache_capacity_pages(), 1);
    let forward: Vec<u64> = (0..inverse.order())
        .map(|j| paged.store.column_norm_squared(j).expect("fetch").to_bits())
        .collect();
    let backward: Vec<u64> = (0..inverse.order())
        .rev()
        .map(|j| paged.store.column_norm_squared(j).expect("fetch").to_bits())
        .collect();
    for j in 0..inverse.order() {
        let expected = inverse.column(j).norm2_squared().to_bits();
        assert_eq!(forward[j], expected, "forward col {j}");
        assert_eq!(
            backward[inverse.order() - 1 - j],
            expected,
            "backward col {j}"
        );
    }
    let stats = paged.store.page_cache_stats();
    // Two full sweeps over distinct single-column pages: every access but
    // the back-to-back repeat at the turnaround misses.
    assert_eq!(stats.hits + stats.misses, 2 * inverse.order() as u64);
    assert!(
        stats.misses >= 2 * inverse.order() as u64 - 1,
        "expected eviction churn, got {stats:?}"
    );
}

#[test]
fn paged_metadata_matches_the_resident_loader() {
    let snapshot = resident();
    let paged = open_paged(fixture("v2_grid12.snap"), &PagedOptions::default()).expect("opens");
    assert_eq!(paged.stats, snapshot.estimator.stats());
    assert_eq!(paged.labels, snapshot.labels);
    assert_eq!(
        paged.permutation.new_to_old(),
        snapshot.estimator.permutation().new_to_old()
    );
    assert_eq!(
        paged.epsilon,
        snapshot.estimator.approximate_inverse().epsilon()
    );
}

/// Byte offsets of the v2 layout for the 144-node labeled fixture, used to
/// craft hostile mutations at precise positions:
/// magic+version (12) | n,eps (16) | stats (48) | counters (16) | perm (4n)
/// | nnz (8) | col_ptr (8(n+1)) | rows (4·nnz) | vals (8·nnz) | labels | crc.
const N: usize = 144;
const COL_PTR_OFFSET: usize = 12 + 16 + 48 + 16 + 4 * N + 8;
const ROWS_OFFSET: usize = COL_PTR_OFFSET + 8 * (N + 1);

fn hostile_copy(mutate: impl FnOnce(&mut Vec<u8>)) -> PathBuf {
    let mut bytes = std::fs::read(fixture("v2_grid12.snap")).expect("fixture bytes");
    mutate(&mut bytes);
    let dir = std::env::temp_dir().join("effres-paged-hostile");
    std::fs::create_dir_all(&dir).expect("temp dir");
    // One file per test invocation is fine; tests overwrite their own name.
    let path = dir.join(format!("hostile_{}.snap", bytes.len()));
    std::fs::write(&path, bytes).expect("write hostile");
    path
}

#[test]
fn non_monotone_col_ptr_is_rejected_by_both_loaders_before_serving() {
    // Make col_ptr[1] larger than col_ptr[2]: the prefix sums go backwards.
    let path = hostile_copy(|bytes| {
        let at = COL_PTR_OFFSET + 8 * 2;
        let next = u64::from_le_bytes(bytes[at..at + 8].try_into().unwrap());
        let at1 = COL_PTR_OFFSET + 8;
        bytes[at1..at1 + 8].copy_from_slice(&(next + 1).to_le_bytes());
    });
    // The paged opener validates the whole col_ptr block up front...
    let err = open_paged(&path, &PagedOptions::default()).expect_err("must reject");
    assert!(err.to_string().contains("monotone"), "{err}");
    // ...and the resident loader rejects it while streaming, before the
    // rows/vals blocks are allocated.
    assert!(matches!(load_snapshot(&path), Err(IoError::Format(_))));
}

#[test]
fn out_of_range_row_is_a_typed_store_failure_at_page_decode() {
    // Corrupt the first row index to point past the 144-node order. The
    // paged opener cannot see it (rows stay on disk), but decoding the
    // page that contains it must fail with a typed error — never serve it.
    let path = hostile_copy(|bytes| {
        bytes[ROWS_OFFSET..ROWS_OFFSET + 4].copy_from_slice(&500u32.to_le_bytes());
    });
    let paged = open_paged(&path, &PagedOptions::default()).expect("open skips row blocks");
    let err = paged
        .store
        .with_column(0, |_| ())
        .expect_err("corrupt page must not serve");
    assert!(
        matches!(err, EffresError::StoreFailure { .. }),
        "unexpected error: {err}"
    );
    // The resident loader rejects the same bytes while streaming the rows.
    assert!(matches!(load_snapshot(&path), Err(IoError::Format(_))));
}

#[test]
fn col_ptr_past_the_declared_nnz_is_rejected() {
    // Push the last col_ptr entry past nnz: both the "exceeds" and the
    // "must end at nnz" guards protect the offset arithmetic the paged
    // reads rely on.
    let path = hostile_copy(|bytes| {
        let at = COL_PTR_OFFSET + 8 * N;
        let last = u64::from_le_bytes(bytes[at..at + 8].try_into().unwrap());
        bytes[at..at + 8].copy_from_slice(&(last + 4).to_le_bytes());
    });
    assert!(matches!(
        open_paged(&path, &PagedOptions::default()),
        Err(IoError::Format(_))
    ));
    assert!(matches!(load_snapshot(&path), Err(IoError::Format(_))));
}

#[test]
fn truncated_column_data_is_rejected_at_open_not_at_query_time() {
    // Cut the file in the middle of the value block: the resident loader
    // hits EOF; the paged opener must notice via the layout-implied length
    // check at open — before a query could fail half-way through a batch.
    let path = {
        let bytes = std::fs::read(fixture("v2_grid12.snap")).expect("fixture bytes");
        let dir = std::env::temp_dir().join("effres-paged-hostile");
        std::fs::create_dir_all(&dir).expect("temp dir");
        let path = dir.join("truncated.snap");
        std::fs::write(&path, &bytes[..bytes.len() - 100]).expect("write");
        path
    };
    assert!(matches!(
        open_paged(&path, &PagedOptions::default()),
        Err(IoError::Format(_))
    ));
    assert!(load_snapshot(&path).is_err());
}

#[test]
fn zero_columns_per_page_is_rejected() {
    let options = PagedOptions::default().with_columns_per_page(0);
    assert!(matches!(
        open_paged(fixture("v2_grid12.snap"), &options),
        Err(IoError::Format(_))
    ));
}

/// Byte offsets of the v3 layout for the 144-node labeled fixture (the
/// fixture negotiates the varint codec):
/// magic+version (12) | n,eps (16) | stats (48) | counters (16) | perm (4n)
/// | nnz (8) | col_ptr (8(n+1)) | codec (1) | rows_bytes (8)
/// | row_off (8(n+1)) | varint rows | vals (8·nnz) | norms (8n)
/// | labels (1 + 8n) | crc (4).
const V3_CODEC_OFFSET: usize = COL_PTR_OFFSET + 8 * (N + 1);
const V3_ROW_OFF_OFFSET: usize = V3_CODEC_OFFSET + 1 + 8;
const V3_ROWS_OFFSET: usize = V3_ROW_OFF_OFFSET + 8 * (N + 1);
/// Offset of the norms block, counted from the END of the file (crc, then
/// the labeled fixture's label block, then norms).
const V3_NORMS_FROM_END: usize = 4 + (1 + 8 * N) + 8 * N;

fn hostile_v3_copy(name: &str, mutate: impl FnOnce(&mut Vec<u8>)) -> PathBuf {
    let mut bytes = std::fs::read(fixture("v3_grid12.snap")).expect("fixture bytes");
    assert_eq!(bytes[V3_CODEC_OFFSET], 1, "fixture uses the varint codec");
    mutate(&mut bytes);
    let dir = std::env::temp_dir().join("effres-paged-hostile");
    std::fs::create_dir_all(&dir).expect("temp dir");
    let path = dir.join(format!("hostile_v3_{name}.snap"));
    std::fs::write(&path, bytes).expect("write hostile");
    path
}

#[test]
fn corrupt_varint_rows_are_a_typed_store_failure_at_page_decode() {
    // Zero the first column's varint bytes: the second entry decodes as a
    // zero gap — rows no longer strictly increasing. The paged opener
    // cannot see it (rows stay on disk), but the page must refuse to serve.
    let path = hostile_v3_copy("zero_gap", |bytes| {
        bytes[V3_ROWS_OFFSET] = 0;
        bytes[V3_ROWS_OFFSET + 1] = 0;
    });
    let paged = open_paged(&path, &PagedOptions::default()).expect("open skips row bytes");
    let err = paged
        .store
        .with_column(0, |_| ())
        .expect_err("corrupt varint must not serve");
    assert!(
        matches!(err, EffresError::StoreFailure { .. }),
        "unexpected error: {err}"
    );
    // The resident loader rejects the same bytes while streaming.
    assert!(matches!(load_snapshot(&path), Err(IoError::Format(_))));
}

#[test]
fn truncated_varint_column_is_rejected_wherever_it_is_noticed() {
    // A continuation bit with no terminator: decoding the column overruns
    // its declared byte span.
    let path = hostile_v3_copy("dangling_continuation", |bytes| {
        bytes[V3_ROWS_OFFSET] |= 0x80;
    });
    let paged = open_paged(&path, &PagedOptions::default()).expect("open skips row bytes");
    assert!(paged.store.with_column(0, |_| ()).is_err());
    assert!(load_snapshot(&path).is_err());
}

#[test]
fn non_monotone_row_off_is_rejected_by_both_loaders_before_serving() {
    // Make row_off[1] overshoot row_off[2]: the byte offsets go backwards,
    // which would misplace every later positioned read.
    let path = hostile_v3_copy("row_off", |bytes| {
        let at2 = V3_ROW_OFF_OFFSET + 8 * 2;
        let next = u64::from_le_bytes(bytes[at2..at2 + 8].try_into().unwrap());
        let at1 = V3_ROW_OFF_OFFSET + 8;
        bytes[at1..at1 + 8].copy_from_slice(&(next + 1).to_le_bytes());
    });
    let err = open_paged(&path, &PagedOptions::default()).expect_err("must reject at open");
    assert!(matches!(err, IoError::Format(_)), "{err}");
    assert!(matches!(load_snapshot(&path), Err(IoError::Format(_))));
}

#[test]
fn non_finite_norms_are_rejected_by_both_loaders() {
    let path = hostile_v3_copy("nan_norm", |bytes| {
        let at = bytes.len() - V3_NORMS_FROM_END;
        bytes[at..at + 8].copy_from_slice(&f64::NAN.to_le_bytes());
    });
    let err = open_paged(&path, &PagedOptions::default()).expect_err("must reject at open");
    assert!(err.to_string().contains("norms"), "{err}");
    assert!(matches!(load_snapshot(&path), Err(IoError::Format(_))));
}

#[test]
fn truncated_norms_block_is_rejected_at_open() {
    // Cut the file in the middle of the norms block: the paged opener's
    // layout-implied length check must notice before serving.
    let bytes = std::fs::read(fixture("v3_grid12.snap")).expect("fixture bytes");
    let cut = bytes.len() - V3_NORMS_FROM_END + 8 * (N / 2);
    let dir = std::env::temp_dir().join("effres-paged-hostile");
    std::fs::create_dir_all(&dir).expect("temp dir");
    let path = dir.join("hostile_v3_truncated_norms.snap");
    std::fs::write(&path, &bytes[..cut]).expect("write");
    assert!(matches!(
        open_paged(&path, &PagedOptions::default()),
        Err(IoError::Format(_))
    ));
    assert!(load_snapshot(&path).is_err());
}

#[test]
fn v3_fixture_serves_persisted_norms_bit_identical_to_resident() {
    let snapshot = resident();
    let paged = open_paged(fixture("v3_grid12.snap"), &PagedOptions::default()).expect("opens");
    let norms = paged.norms().expect("v3 carries norms");
    assert_eq!(norms.len(), 144);
    for (j, norm) in norms.iter().enumerate() {
        assert_eq!(
            norm.to_bits(),
            snapshot
                .estimator
                .approximate_inverse()
                .column(j)
                .norm2_squared()
                .to_bits(),
            "col {j}"
        );
    }
    // And the store never touched a page to produce them.
    let stats = paged.store.page_cache_stats();
    assert_eq!((stats.hits, stats.misses, stats.bytes_read), (0, 0, 0));
}

/// The f64 resident estimator narrowed to f32 — the reference the paged
/// f32 mode must match bit for bit.
fn resident_f32() -> &'static effres::EffectiveResistanceEstimator {
    static NARROW: OnceLock<effres::EffectiveResistanceEstimator> = OnceLock::new();
    NARROW.get_or_init(|| {
        load_snapshot(fixture("v2_grid12.snap"))
            .expect("v2 fixture loads")
            .estimator
            .with_value_mode(effres::ValueMode::F32)
            .expect("narrowing a healthy arena succeeds")
    })
}

/// Both paged-capable encodings decoded in f32 mode, across the same page
/// geometries the f64 property sweeps.
fn paged_f32_stores() -> &'static [PagedSnapshot] {
    static STORES: OnceLock<Vec<PagedSnapshot>> = OnceLock::new();
    STORES.get_or_init(|| {
        ["v2_grid12.snap", "v3_grid12.snap"]
            .iter()
            .flat_map(|name| {
                paged_configs().iter().map(|options| {
                    let options = (*options).with_value_mode(effres::ValueMode::F32);
                    open_paged(fixture(name), &options).expect("fixture opens")
                })
            })
            .collect()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(200))]

    /// Pair sequences through the grouped multi-pair kernel on the paged
    /// store: bit for bit the pairwise batch reference on the *resident*
    /// arena, for every page geometry and both encodings, with and
    /// without the persisted norm table, on a reused (dirty) scratch.
    #[test]
    fn paged_grouped_kernel_matches_resident_pairwise_bitwise(
        (pairs, which) in (
            proptest::collection::vec((0usize..144, 0usize..144), 0..24),
            0usize..8,
        ),
    ) {
        let inverse = resident().estimator.approximate_inverse();
        let paged = &paged_stores()[which];
        let reference = column_store::column_distances_squared_batch(
            inverse,
            &pairs,
            Some(resident_norms()),
        )
        .expect("resident store never fails");
        let mut scratch = column_store::HubScratch::new(ColumnStore::order(&paged.store));
        for _ in 0..2 {
            let grouped = column_store::column_distances_squared_grouped(
                &paged.store,
                &pairs,
                paged.norms(),
                &mut scratch,
            )
            .expect("healthy fixture");
            prop_assert_eq!(reference.len(), grouped.len());
            for (r, g) in reference.iter().zip(&grouped) {
                prop_assert_eq!(r.to_bits(), g.to_bits());
            }
        }
    }

    /// The f32 decode mode: every paged geometry and encoding must serve
    /// queries and per-column norms bit-identical to the **resident f32**
    /// estimator (narrow-at-load and narrow-at-page-decode agree exactly),
    /// including on the v3 file whose persisted f64 norm table must be
    /// ignored in this mode.
    #[test]
    fn paged_f32_matches_resident_f32_bitwise(
        (p, q, which) in (0usize..144, 0usize..144, 0usize..8),
    ) {
        let narrow = resident_f32().approximate_inverse();
        let paged = &paged_f32_stores()[which];
        prop_assert!(paged.norms().is_none(), "f32 mode drops the persisted f64 norms");
        let resident_distance = column_store::column_distance_squared(narrow, p, q)
            .expect("resident store never fails");
        let paged_distance = column_store::column_distance_squared(&paged.store, p, q)
            .expect("healthy fixture");
        prop_assert_eq!(resident_distance.to_bits(), paged_distance.to_bits());
        let resident_norm = narrow.column_norm_squared(p).expect("resident norm");
        let paged_norm = paged.store.column_norm_squared(p).expect("paged norm");
        prop_assert_eq!(resident_norm.to_bits(), paged_norm.to_bits());
    }
}

#[test]
fn narrowed_estimators_are_rejected_by_every_snapshot_writer() {
    use effres_io::snapshot::{
        save_snapshot, write_snapshot, write_snapshot_v1, write_snapshot_v2,
    };
    let narrow = resident_f32();
    let dir = std::env::temp_dir().join("effres-f32-reject");
    std::fs::create_dir_all(&dir).expect("temp dir");
    let path = dir.join("narrowed.snap");
    let mut sink = Vec::new();
    for (name, result) in [
        ("save_snapshot", save_snapshot(&path, narrow, None)),
        ("write_snapshot", write_snapshot(&mut sink, narrow, None)),
        (
            "write_snapshot_v1",
            write_snapshot_v1(&mut sink, narrow, None),
        ),
        (
            "write_snapshot_v2",
            write_snapshot_v2(&mut sink, narrow, None),
        ),
    ] {
        let err = result.expect_err(name);
        assert!(
            matches!(err, IoError::Format(ref m) if m.contains("f64-canonical")),
            "{name}: {err}"
        );
    }
    assert!(sink.is_empty(), "no writer may emit bytes first");
    assert!(!path.exists(), "no writer may leave a file behind");
}
