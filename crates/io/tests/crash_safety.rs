//! Crash-safety tests of the snapshot writer: `save_snapshot` commits via
//! staging file + fsync + atomic rename, so a crash at **any** byte of the
//! write must leave the destination either bit-identical to the previous
//! snapshot or absent (when there was none) — never torn. The crash-point
//! harness (`save_snapshot_crashing_at`) runs the exact production staging
//! path and kills the write after a byte budget, leaving the truncated
//! staging file behind just like a real crash would.

use effres::{EffectiveResistanceEstimator, EffresConfig};
use effres_graph::generators;
use effres_io::snapshot::{
    load_snapshot, save_snapshot, save_snapshot_crashing_at, write_snapshot,
};
use std::path::PathBuf;

fn estimator(seed: u64) -> EffectiveResistanceEstimator {
    let graph = generators::grid_2d(8, 8, 0.5, 2.0, seed).expect("generator");
    EffectiveResistanceEstimator::build(&graph, &EffresConfig::default()).expect("build")
}

fn temp_path(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join("effres-crash-safety");
    std::fs::create_dir_all(&dir).expect("temp dir");
    dir.join(name)
}

/// Crash points covering every 512-byte block boundary (the granularity a
/// real torn write lands on) plus the format's edges: inside the magic,
/// right after it, after the version word, mid-file and the very last byte.
fn crash_points(total: u64) -> Vec<u64> {
    let mut points = vec![0, 1, 7, 8, 12, total / 2, total - 1];
    let mut at = 512;
    while at < total {
        points.push(at - 1);
        points.push(at);
        at += 512;
    }
    points.retain(|&k| k < total);
    points.sort_unstable();
    points.dedup();
    points
}

#[test]
fn no_crash_point_tears_an_existing_snapshot() {
    let dest = temp_path("atomic.snap");
    let _ = std::fs::remove_file(&dest);
    let old = estimator(5);
    let new = estimator(11);
    let labels: Vec<u64> = (0..new.node_count() as u64).map(|i| i * 3 + 1).collect();

    save_snapshot(&dest, &old, Some(&labels)).expect("initial save");
    let committed = std::fs::read(&dest).expect("committed bytes");

    // The new snapshot's full length bounds the crash points to try.
    let mut replacement = Vec::new();
    write_snapshot(&mut replacement, &new, Some(&labels)).expect("serialize");
    let total = replacement.len() as u64;
    assert!(total > 1024, "fixture too small to cover block boundaries");

    for crash_after in crash_points(total) {
        let done = save_snapshot_crashing_at(&dest, &new, Some(&labels), crash_after)
            .expect("only the simulated crash may fail");
        assert!(!done, "budget {crash_after} of {total} must crash");
        let on_disk = std::fs::read(&dest).expect("destination must survive");
        assert_eq!(
            on_disk, committed,
            "crash after {crash_after} bytes tore the destination"
        );
    }
    // And the survivor is not just bit-identical but still loadable.
    let snapshot = load_snapshot(&dest).expect("survivor loads");
    assert_eq!(snapshot.estimator.stats(), old.stats());

    // A budget past the end commits the replacement exactly as the normal
    // save would — same staging path, fsync, rename.
    let done =
        save_snapshot_crashing_at(&dest, &new, Some(&labels), total + 1).expect("clean commit");
    assert!(done);
    assert_eq!(std::fs::read(&dest).expect("new bytes"), replacement);
}

#[test]
fn crash_with_no_preexisting_snapshot_leaves_no_file() {
    let dest = temp_path("fresh.snap");
    let _ = std::fs::remove_file(&dest);
    let est = estimator(7);
    let done =
        save_snapshot_crashing_at(&dest, &est, None, 64).expect("simulated crash is not an error");
    assert!(!done);
    assert!(
        !dest.exists(),
        "a crashed first save must not leave a destination file"
    );
}

#[test]
fn stale_staging_leftovers_do_not_break_the_next_save() {
    let dest = temp_path("retry.snap");
    let _ = std::fs::remove_file(&dest);
    let est = estimator(13);
    // Crash once: the truncated staging sibling is left behind, as after a
    // real crash...
    assert!(!save_snapshot_crashing_at(&dest, &est, None, 100).expect("crash run"));
    // ...and the next save truncates it, commits, and loads.
    save_snapshot(&dest, &est, None).expect("save over leftovers");
    let snapshot = load_snapshot(&dest).expect("loads");
    assert_eq!(snapshot.estimator.stats(), est.stats());
}
