//! Dataset ingestion and persistence for the `effres` workspace.
//!
//! The paper's subject is effective resistances on *large real graphs*, and
//! this crate is how those graphs get into the system:
//!
//! * [`edge_list`] — SNAP-style whitespace edge lists (`u v [weight]`, `#`
//!   comments), with sparse node ids remapped densely;
//! * [`matrix_market`] — NIST Matrix Market coordinate files (`.mtx`), the
//!   SuiteSparse exchange format, read as undirected graphs;
//! * [`gzip`] — pure-std gzip decoding (and a stored-block encoder), so
//!   `.txt.gz` downloads feed straight into the parsers;
//! * [`dataset`] — the ingestion pipeline: file-type dispatch, duplicate and
//!   self-loop handling, largest-connected-component extraction and the
//!   [`dataset::IngestStats`] report;
//! * [`snapshot`] — a compact, checksummed binary format persisting a built
//!   [`EffectiveResistanceEstimator`](effres::EffectiveResistanceEstimator)
//!   (the pruned approximate-inverse columns and the permutation) so query
//!   services restart without refactorizing;
//! * [`paged`] — the out-of-core column store: serving queries *directly
//!   from* a v2 snapshot file via positioned reads and an LRU page cache,
//!   without ever materializing the column arena in memory;
//! * [`fault`] — deterministic fault injection ([`FaultPlan`]) and the
//!   positioned-read retry policy ([`RetryPolicy`]) behind the paged store's
//!   failure tolerance;
//! * [`pairs`] — query-pair files driving batched workloads.
//!
//! # Quick start
//!
//! ```
//! use effres::{EffectiveResistanceEstimator, EffresConfig};
//! use effres_io::dataset::{load_graph, IngestOptions};
//! use std::io::Write;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! // A small SNAP-style file: comments, duplicates, two components.
//! let dir = std::env::temp_dir();
//! let path = dir.join("effres_io_doc_example.txt");
//! let mut f = std::fs::File::create(&path)?;
//! writeln!(f, "# toy graph")?;
//! writeln!(f, "0 1\n1 0\n1 2\n2 3\n3 0\n7 8")?;
//! drop(f);
//!
//! let ds = load_graph(&path, &IngestOptions::default())?;
//! // The {7, 8} component was dropped, the duplicate merged.
//! assert_eq!(ds.graph.node_count(), 4);
//! assert_eq!(ds.stats.duplicates, 1);
//! let est = EffectiveResistanceEstimator::build(&ds.graph, &EffresConfig::default())?;
//! assert!(est.query(0, 2)? > 0.0);
//! # std::fs::remove_file(&path).ok();
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod dataset;
pub mod edge_list;
pub mod error;
pub mod fault;
pub mod gzip;
pub mod matrix_market;
pub mod paged;
pub mod pairs;
pub mod snapshot;

pub use dataset::{load_graph, Dataset, IngestOptions, IngestStats};
pub use error::IoError;
pub use fault::{FaultPlan, RetryPolicy};
pub use paged::{
    open_paged, open_paged_with_faults, PageCacheStats, PagedColumnStore, PagedOptions,
    PagedSnapshot, PinnedPages, PinnedReader, RowCodec, ScrubStats,
};
pub use snapshot::{load_snapshot, save_snapshot, save_snapshot_crashing_at, Snapshot};
