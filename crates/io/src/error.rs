//! Error type of the ingestion and persistence layer.

use effres::EffresError;
use effres_graph::GraphError;
use std::fmt;

/// Errors produced while reading or writing datasets and snapshots.
#[derive(Debug)]
pub enum IoError {
    /// An underlying operating-system I/O failure.
    Io(std::io::Error),
    /// A malformed line in a text dataset, with its 1-based line number.
    Parse {
        /// 1-based line number in the input.
        line: usize,
        /// What was wrong with it.
        message: String,
    },
    /// A structurally invalid file (bad magic, truncated payload, bad
    /// checksum, unsupported version...).
    Format(String),
    /// A corrupt or unsupported DEFLATE/gzip stream.
    Compression(String),
    /// The parsed records did not form a valid graph.
    Graph(GraphError),
    /// Rebuilding an estimator from a snapshot failed.
    Effres(EffresError),
}

impl fmt::Display for IoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IoError::Io(e) => write!(f, "i/o error: {e}"),
            IoError::Parse { line, message } => write!(f, "parse error at line {line}: {message}"),
            IoError::Format(m) => write!(f, "invalid file format: {m}"),
            IoError::Compression(m) => write!(f, "compression error: {m}"),
            IoError::Graph(e) => write!(f, "graph error: {e}"),
            IoError::Effres(e) => write!(f, "estimator error: {e}"),
        }
    }
}

impl std::error::Error for IoError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            IoError::Io(e) => Some(e),
            IoError::Graph(e) => Some(e),
            IoError::Effres(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for IoError {
    fn from(e: std::io::Error) -> Self {
        IoError::Io(e)
    }
}

impl From<GraphError> for IoError {
    fn from(e: GraphError) -> Self {
        IoError::Graph(e)
    }
}

impl From<EffresError> for IoError {
    fn from(e: EffresError) -> Self {
        IoError::Effres(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_sources() {
        use std::error::Error;
        let e = IoError::Parse {
            line: 7,
            message: "bad token".into(),
        };
        assert!(e.to_string().contains("line 7"));
        assert!(e.source().is_none());
        let io: IoError = std::io::Error::new(std::io::ErrorKind::NotFound, "gone").into();
        assert!(io.source().is_some());
        let g: IoError = GraphError::SelfLoop { node: 1 }.into();
        assert!(g.to_string().contains("graph"));
    }
}
