//! Out-of-core column store: serving queries straight from a v2 snapshot
//! file.
//!
//! The whole point of the paper's approximate inverse is that `Z̃` is sparse
//! enough to *keep around* — but keeping it around does not have to mean
//! keeping it in RAM. The v2 snapshot layout already stores the arena as
//! three contiguous bulk blocks (`col_ptr`, `rows`, `vals`; see
//! [`crate::snapshot`]), so any column is two positioned reads away:
//!
//! ```text
//! rows of column j:  file[rows_offset + 4·col_ptr[j] .. rows_offset + 4·col_ptr[j+1]]
//! vals of column j:  file[vals_offset + 8·col_ptr[j] .. vals_offset + 8·col_ptr[j+1]]
//! ```
//!
//! [`PagedColumnStore`] keeps only the `col_ptr` block (and the permutation
//! and labels, via [`PagedSnapshot`]) resident and fetches column data on
//! demand with positioned reads — plain `pread`
//! (`std::os::unix::fs::FileExt::read_exact_at`) on Unix, `seek_read` on
//! Windows, no mmap, no platform crates. Columns are fetched in *pages* (a fixed
//! range of consecutive columns, [`PagedOptions::columns_per_page`]) and
//! decoded pages live in a sharded slab-LRU cache (the same intrusive-list
//! idiom as the service layer's pair cache) behind `Arc`s, so hot columns
//! are served from memory while cold ones stream from disk and eviction can
//! never invalidate a view a query is still reading.
//!
//! Trust model: the file is untrusted. The `col_ptr` block is fully
//! validated at [`open_paged`] time (monotone, spanning exactly the declared
//! nonzeros — *before* anything is served), the file length must match the
//! layout the header implies, and every page is validated as it is decoded
//! (strictly increasing lower-triangular row indices in range, finite
//! values) — a corrupt page is a typed
//! [`EffresError::StoreFailure`](effres::EffresError), never a panic and
//! never silently wrong answers. The whole-payload crc32 is *not* checked
//! (that would require streaming the entire file, defeating the
//! milliseconds-to-first-query cold start); corruption the structural
//! checks cannot see — flipped value bytes that stay finite — is caught by
//! the resident loader, not this one.
//!
//! Answers are **bit-identical** to the resident arena's for every page
//! geometry and cache size: pages decode the same little-endian bytes the
//! resident loader reads, per-column norms are summed in the same order, and
//! the kernels are the same generic code (`effres::column_store`).

use crate::error::IoError;
use crate::snapshot::{
    read_col_ptr_block, read_payload_header, CrcReader, PayloadHeader, MAGIC, VERSION_V1,
    VERSION_V2,
};
use effres::approx_inverse::{ensure_u32_indexable, ArenaFootprint, ColumnView};
use effres::column_store::ColumnStore;
use effres::error::EffresError;
use effres::estimator::EstimatorStats;
use effres_sparse::Permutation;
use std::collections::HashMap;
use std::fs::File;
use std::io::{BufReader, Read};
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Positioned reads over a shared [`File`], std-only on every platform:
/// `pread` on Unix and `seek_read` on Windows never touch a shared cursor,
/// so concurrent readers need no coordination; other targets fall back to a
/// mutex-serialized seek-then-read on the same handle.
#[derive(Debug)]
struct PositionedFile {
    file: File,
    #[cfg(not(any(unix, windows)))]
    cursor: Mutex<()>,
}

impl PositionedFile {
    fn new(file: File) -> Self {
        PositionedFile {
            file,
            #[cfg(not(any(unix, windows)))]
            cursor: Mutex::new(()),
        }
    }

    fn metadata(&self) -> std::io::Result<std::fs::Metadata> {
        self.file.metadata()
    }

    #[cfg(unix)]
    fn read_exact_at(&self, buf: &mut [u8], offset: u64) -> std::io::Result<()> {
        std::os::unix::fs::FileExt::read_exact_at(&self.file, buf, offset)
    }

    #[cfg(windows)]
    fn read_exact_at(&self, mut buf: &mut [u8], mut offset: u64) -> std::io::Result<()> {
        use std::os::windows::fs::FileExt;
        while !buf.is_empty() {
            match self.file.seek_read(buf, offset) {
                Ok(0) => {
                    return Err(std::io::Error::new(
                        std::io::ErrorKind::UnexpectedEof,
                        "positioned read past end of file",
                    ))
                }
                Ok(n) => {
                    buf = &mut buf[n..];
                    offset += n as u64;
                }
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
                Err(e) => return Err(e),
            }
        }
        Ok(())
    }

    #[cfg(not(any(unix, windows)))]
    fn read_exact_at(&self, buf: &mut [u8], offset: u64) -> std::io::Result<()> {
        use std::io::{Read as _, Seek, SeekFrom};
        let _guard = self.cursor.lock().expect("file cursor lock poisoned");
        let mut file = &self.file;
        file.seek(SeekFrom::Start(offset))?;
        file.read_exact(buf)
    }
}

/// Geometry and budget of the page cache of a [`PagedColumnStore`].
///
/// Every setting trades disk traffic for memory only — answers are
/// bit-identical across all of them.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PagedOptions {
    /// Consecutive columns decoded per page. Larger pages amortize the
    /// `pread` syscall over more columns (good for scans and sorted
    /// batches); smaller pages waste less memory on isolated lookups.
    pub columns_per_page: usize,
    /// Total decoded pages kept resident across all cache shards (at least
    /// one per shard). This is the store's memory budget knob, surfaced as
    /// `EffresConfig::page_cache_pages` / `effres-cli --page-cache`.
    pub cache_pages: usize,
    /// Number of cache shards (rounded up to a power of two); more shards
    /// mean less lock contention between parallel query workers.
    pub cache_shards: usize,
}

impl Default for PagedOptions {
    fn default() -> Self {
        PagedOptions {
            columns_per_page: 64,
            cache_pages: effres::config::DEFAULT_PAGE_CACHE_PAGES,
            cache_shards: 8,
        }
    }
}

impl PagedOptions {
    /// Sets the total decoded-page budget (see [`PagedOptions::cache_pages`]).
    pub fn with_cache_pages(mut self, pages: usize) -> Self {
        self.cache_pages = pages;
        self
    }

    /// Sets the page size in columns (see
    /// [`PagedOptions::columns_per_page`]).
    pub fn with_columns_per_page(mut self, columns: usize) -> Self {
        self.columns_per_page = columns;
        self
    }
}

/// Cumulative page-cache counters of a [`PagedColumnStore`] (monotonic over
/// the store's lifetime). A **hit** served a column from a resident decoded
/// page; a **miss** paid a disk read and a decode.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct PageCacheStats {
    /// Page lookups answered from the cache.
    pub hits: u64,
    /// Page lookups that read and decoded from disk.
    pub misses: u64,
}

/// One decoded page: the row/value data of a contiguous column range, plus
/// the per-column squared norms (summed in index order at decode time, so
/// they are bit-identical to the resident norm table).
#[derive(Debug)]
struct Page {
    /// First column covered by the page.
    first_col: usize,
    /// `col_ptr[first_col]` — the entry offset the page's buffers start at.
    base: u64,
    rows: Vec<u32>,
    vals: Vec<f64>,
    norms: Vec<f64>,
}

const NIL: u32 = u32::MAX;

#[derive(Debug)]
struct PageNode {
    key: usize,
    page: Arc<Page>,
    prev: u32,
    next: u32,
}

/// One shard of the page cache: the same intrusive-list-over-a-slab LRU as
/// the service layer's pair cache, holding `Arc<Page>`s so a page can be
/// evicted while a reader still borrows from it.
#[derive(Debug)]
struct PageShard {
    map: HashMap<usize, u32>,
    slab: Vec<PageNode>,
    head: u32,
    tail: u32,
    capacity: usize,
}

impl PageShard {
    fn new(capacity: usize) -> Self {
        PageShard {
            map: HashMap::with_capacity(capacity.min(1 << 16)),
            slab: Vec::new(),
            head: NIL,
            tail: NIL,
            capacity,
        }
    }

    fn unlink(&mut self, index: u32) {
        let (prev, next) = {
            let node = &self.slab[index as usize];
            (node.prev, node.next)
        };
        match prev {
            NIL => self.head = next,
            p => self.slab[p as usize].next = next,
        }
        match next {
            NIL => self.tail = prev,
            n => self.slab[n as usize].prev = prev,
        }
    }

    fn push_front(&mut self, index: u32) {
        let old_head = self.head;
        {
            let node = &mut self.slab[index as usize];
            node.prev = NIL;
            node.next = old_head;
        }
        if old_head != NIL {
            self.slab[old_head as usize].prev = index;
        }
        self.head = index;
        if self.tail == NIL {
            self.tail = index;
        }
    }

    fn get(&mut self, key: usize) -> Option<Arc<Page>> {
        let index = *self.map.get(&key)?;
        if self.head != index {
            self.unlink(index);
            self.push_front(index);
        }
        Some(Arc::clone(&self.slab[index as usize].page))
    }

    fn insert(&mut self, key: usize, page: Arc<Page>) {
        if let Some(&index) = self.map.get(&key) {
            // A concurrent miss decoded the same page; keep the resident one
            // fresh (both decodes hold identical bits).
            self.slab[index as usize].page = page;
            if self.head != index {
                self.unlink(index);
                self.push_front(index);
            }
            return;
        }
        let index = if self.map.len() >= self.capacity {
            let victim = self.tail;
            self.unlink(victim);
            let node = &mut self.slab[victim as usize];
            self.map.remove(&node.key);
            node.key = key;
            node.page = page;
            victim
        } else {
            self.slab.push(PageNode {
                key,
                page,
                prev: NIL,
                next: NIL,
            });
            (self.slab.len() - 1) as u32
        };
        self.map.insert(key, index);
        self.push_front(index);
    }
}

/// A sharded LRU of decoded pages keyed by page id.
#[derive(Debug)]
struct PageLru {
    shards: Vec<Mutex<PageShard>>,
    mask: u64,
    per_shard: usize,
}

impl PageLru {
    fn new(pages: usize, shards: usize) -> Self {
        let shard_count = shards.max(1).next_power_of_two();
        let per_shard = pages.div_ceil(shard_count).max(1);
        PageLru {
            shards: (0..shard_count)
                .map(|_| Mutex::new(PageShard::new(per_shard)))
                .collect(),
            mask: shard_count as u64 - 1,
            per_shard,
        }
    }

    fn shard(&self, key: usize) -> &Mutex<PageShard> {
        // SplitMix64 finalizer spreads consecutive page ids across shards.
        let mut h = (key as u64).wrapping_add(0x9e37_79b9_7f4a_7c15);
        h = (h ^ (h >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        h = (h ^ (h >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        h ^= h >> 31;
        &self.shards[(h & self.mask) as usize]
    }

    fn get(&self, key: usize) -> Option<Arc<Page>> {
        self.shard(key)
            .lock()
            .expect("page cache shard poisoned")
            .get(key)
    }

    fn insert(&self, key: usize, page: Arc<Page>) {
        self.shard(key)
            .lock()
            .expect("page cache shard poisoned")
            .insert(key, page);
    }

    fn capacity(&self) -> usize {
        self.shards.len() * self.per_shard
    }
}

/// A column store serving the approximate inverse directly from a v2
/// snapshot file through a page cache (see the module docs).
///
/// The store is `Send + Sync`: positioned reads do not touch a shared file
/// cursor, the cache shards are independently locked, and decoded pages are
/// shared behind `Arc`s — parallel batch workers hit it concurrently just
/// like the resident arena.
#[derive(Debug)]
pub struct PagedColumnStore {
    file: PositionedFile,
    order: usize,
    nnz: usize,
    /// The resident `col_ptr` block (entry offsets, as stored on disk).
    col_ptr: Vec<u64>,
    rows_offset: u64,
    vals_offset: u64,
    columns_per_page: usize,
    cache: PageLru,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl PagedColumnStore {
    /// Number of pages the column space divides into.
    pub fn page_count(&self) -> usize {
        self.order.div_ceil(self.columns_per_page)
    }

    /// Columns decoded per page.
    pub fn columns_per_page(&self) -> usize {
        self.columns_per_page
    }

    /// Total decoded-page capacity of the cache (after shard rounding).
    pub fn cache_capacity_pages(&self) -> usize {
        self.cache.capacity()
    }

    /// Cumulative page-cache hit/miss counters.
    pub fn page_cache_stats(&self) -> PageCacheStats {
        PageCacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
        }
    }

    /// Bytes this store keeps permanently resident (the `col_ptr` block) —
    /// the part of the arena that did *not* stay on disk. Decoded pages come
    /// and go within the cache budget on top of this.
    pub fn resident_bytes(&self) -> usize {
        self.col_ptr.len() * std::mem::size_of::<u64>()
    }

    /// On-disk footprint of the three arena blocks, in the same shape the
    /// resident arena reports its memory footprint (the row block is `u32`
    /// on disk exactly as in memory).
    pub fn footprint(&self) -> ArenaFootprint {
        ArenaFootprint {
            col_ptr_bytes: self.col_ptr.len() * 8,
            rows_bytes: self.nnz * 4,
            vals_bytes: self.nnz * 8,
            index_width_bytes: 4,
        }
    }

    /// The decoded page covering column `j`, from the cache or from disk.
    fn page_for(&self, j: usize) -> Result<Arc<Page>, EffresError> {
        let pid = j / self.columns_per_page;
        if let Some(page) = self.cache.get(pid) {
            self.hits.fetch_add(1, Ordering::Relaxed);
            return Ok(page);
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        let page = Arc::new(self.decode_page(pid)?);
        self.cache.insert(pid, Arc::clone(&page));
        Ok(page)
    }

    /// Reads and validates one page from disk. Two threads may race to
    /// decode the same page; both produce identical bits and the cache keeps
    /// one of them — correctness is unaffected, only a read is duplicated.
    fn decode_page(&self, pid: usize) -> Result<Page, EffresError> {
        let first_col = pid * self.columns_per_page;
        let last_col = (first_col + self.columns_per_page).min(self.order);
        let base = self.col_ptr[first_col];
        let end = self.col_ptr[last_col];
        let count = (end - base) as usize;
        let failed = |message: String| EffresError::StoreFailure {
            column: first_col,
            message,
        };

        let mut row_bytes = vec![0u8; count * 4];
        self.file
            .read_exact_at(&mut row_bytes, self.rows_offset + base * 4)
            .map_err(|e| failed(format!("reading the row block: {e}")))?;
        let mut val_bytes = vec![0u8; count * 8];
        self.file
            .read_exact_at(&mut val_bytes, self.vals_offset + base * 8)
            .map_err(|e| failed(format!("reading the value block: {e}")))?;

        let rows: Vec<u32> = row_bytes
            .chunks_exact(4)
            .map(|b| u32::from_le_bytes(b.try_into().expect("4-byte chunk")))
            .collect();
        let vals: Vec<f64> = val_bytes
            .chunks_exact(8)
            .map(|b| f64::from_le_bytes(b.try_into().expect("8-byte chunk")))
            .collect();

        // Validate every column of the page before it can serve a query:
        // the on-disk data is untrusted and the kernels rely on sorted
        // lower-triangular columns.
        let mut norms = Vec::with_capacity(last_col - first_col);
        for j in first_col..last_col {
            let lo = (self.col_ptr[j] - base) as usize;
            let hi = (self.col_ptr[j + 1] - base) as usize;
            let column = &rows[lo..hi];
            let corrupt = |message: String| EffresError::StoreFailure { column: j, message };
            if !column.windows(2).all(|w| w[0] < w[1])
                || column.last().is_some_and(|&i| i as usize >= self.order)
            {
                return Err(corrupt(format!(
                    "row indices are not strictly increasing within 0..{}",
                    self.order
                )));
            }
            if column.first().is_some_and(|&i| (i as usize) < j) {
                return Err(corrupt(
                    "column has an entry above the diagonal; \
                     inverse columns must be supported on the diagonal suffix"
                        .to_string(),
                ));
            }
            let values = &vals[lo..hi];
            if !values.iter().all(|v| v.is_finite()) {
                return Err(corrupt("non-finite value".to_string()));
            }
            // Same summation order as the resident norm table: bit-identical.
            norms.push(values.iter().map(|v| v * v).sum());
        }
        Ok(Page {
            first_col,
            base,
            rows,
            vals,
            norms,
        })
    }
}

impl ColumnStore for PagedColumnStore {
    fn order(&self) -> usize {
        self.order
    }

    fn nnz(&self) -> usize {
        self.nnz
    }

    fn with_column<R>(
        &self,
        j: usize,
        f: impl FnOnce(ColumnView<'_>) -> R,
    ) -> Result<R, EffresError> {
        assert!(
            j < self.order,
            "column {j} out of bounds for order {}",
            self.order
        );
        let page = self.page_for(j)?;
        let lo = (self.col_ptr[j] - page.base) as usize;
        let hi = (self.col_ptr[j + 1] - page.base) as usize;
        Ok(f(ColumnView::from_slices(
            self.order,
            &page.rows[lo..hi],
            &page.vals[lo..hi],
        )))
    }

    fn column_norm_squared(&self, j: usize) -> Result<f64, EffresError> {
        assert!(
            j < self.order,
            "column {j} out of bounds for order {}",
            self.order
        );
        let page = self.page_for(j)?;
        Ok(page.norms[j - page.first_col])
    }
}

/// Everything a query service needs from a v2 snapshot, opened for paged
/// serving: the out-of-core column [`store`](PagedSnapshot::store) plus the
/// resident metadata (permutation, build statistics, dataset labels) the
/// header carries.
#[derive(Debug)]
pub struct PagedSnapshot {
    /// The disk-backed column store.
    pub store: PagedColumnStore,
    /// Fill-reducing permutation (original node id → column of `Z̃`).
    pub permutation: Permutation,
    /// Build statistics recorded by the estimator that wrote the snapshot.
    pub stats: EstimatorStats,
    /// Pruning threshold the inverse was built with.
    pub epsilon: f64,
    /// Original dataset ids of the dense nodes, if the snapshot was written
    /// from an ingested dataset.
    pub labels: Option<Vec<u64>>,
}

impl PagedSnapshot {
    /// Number of nodes served.
    pub fn node_count(&self) -> usize {
        self.stats.node_count
    }
}

/// Opens a v2 snapshot for paged serving: reads and validates the header,
/// the permutation, the full `col_ptr` block and the labels — never the
/// rows/vals blocks, which stay on disk until queries page them in.
///
/// Cold-start cost is proportional to the *node* count, not the nonzero
/// count: on large graphs the rows/vals blocks dominate the file and are
/// exactly what this skips.
///
/// # Errors
///
/// Returns [`IoError::Format`] for files that are not v2 snapshots (v1
/// files name the re-encode path), have a non-monotone or out-of-span
/// `col_ptr`, or whose length disagrees with the layout the header implies
/// (truncation is caught here, before serving); [`IoError::Io`] on read
/// failure.
pub fn open_paged(
    path: impl AsRef<Path>,
    options: &PagedOptions,
) -> Result<PagedSnapshot, IoError> {
    if options.columns_per_page == 0 {
        return Err(IoError::Format(
            "columns_per_page must be at least 1".into(),
        ));
    }
    let file = File::open(path)?;
    let mut reader = BufReader::new(&file);
    let mut magic = [0u8; 8];
    reader
        .read_exact(&mut magic)
        .map_err(|_| IoError::Format("truncated snapshot (no magic)".into()))?;
    if &magic != MAGIC {
        return Err(IoError::Format("not an effres snapshot (bad magic)".into()));
    }
    let mut version = [0u8; 4];
    reader
        .read_exact(&mut version)
        .map_err(|_| IoError::Format("truncated snapshot (no version)".into()))?;
    match u32::from_le_bytes(version) {
        VERSION_V2 => {}
        VERSION_V1 => {
            return Err(IoError::Format(
                "version 1 snapshots store per-column records and cannot be served paged; \
                 load and re-save the snapshot to re-encode it as version 2 (bulk arena blocks)"
                    .into(),
            ))
        }
        other => {
            return Err(IoError::Format(format!(
                "unsupported snapshot version {other} (paged serving reads {VERSION_V2})"
            )))
        }
    }

    let mut input = CrcReader::new(&mut reader);
    let PayloadHeader {
        n,
        epsilon,
        stats,
        inv_stats: _,
        permutation,
    } = read_payload_header(&mut input)?;
    ensure_u32_indexable(n)?;
    let nnz = input.take_u64()?;
    let col_ptr = read_col_ptr_block(&mut input, n, nnz)?;
    // 12 header bytes (magic + version) precede the crc-tracked payload.
    let rows_offset = 12 + input.consumed();
    drop(input);
    drop(reader);
    let file = PositionedFile::new(file);

    let overflow = || IoError::Format("arena block sizes overflow the file offset space".into());
    let rows_bytes = nnz.checked_mul(4).ok_or_else(overflow)?;
    let vals_bytes = nnz.checked_mul(8).ok_or_else(overflow)?;
    let vals_offset = rows_offset.checked_add(rows_bytes).ok_or_else(overflow)?;
    let labels_offset = vals_offset.checked_add(vals_bytes).ok_or_else(overflow)?;

    let truncated =
        |_| IoError::Format("truncated snapshot (labels block out of range)".to_string());
    let mut flag = [0u8; 1];
    file.read_exact_at(&mut flag, labels_offset)
        .map_err(truncated)?;
    let labels = match flag[0] {
        0 => None,
        1 => {
            let mut bytes = vec![0u8; n * 8];
            file.read_exact_at(&mut bytes, labels_offset + 1)
                .map_err(truncated)?;
            Some(
                bytes
                    .chunks_exact(8)
                    .map(|b| u64::from_le_bytes(b.try_into().expect("8-byte chunk")))
                    .collect::<Vec<u64>>(),
            )
        }
        other => return Err(IoError::Format(format!("invalid labels flag {other}"))),
    };
    // The file must end exactly where the layout says it does (labels, then
    // the 4-byte crc trailer): a truncated or padded rows/vals region is
    // rejected here, before a query can page it in.
    let expected_len = labels_offset
        .checked_add(1 + if labels.is_some() { n as u64 * 8 } else { 0 } + 4)
        .ok_or_else(overflow)?;
    let actual_len = file.metadata()?.len();
    if actual_len != expected_len {
        return Err(IoError::Format(format!(
            "snapshot is {actual_len} bytes but the v2 layout implies {expected_len}: \
             truncated or trailing garbage"
        )));
    }

    let store = PagedColumnStore {
        file,
        order: n,
        nnz: nnz as usize,
        col_ptr,
        rows_offset,
        vals_offset,
        columns_per_page: options.columns_per_page,
        cache: PageLru::new(options.cache_pages, options.cache_shards),
        hits: AtomicU64::new(0),
        misses: AtomicU64::new(0),
    };
    Ok(PagedSnapshot {
        store,
        permutation,
        stats,
        epsilon,
        labels,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::snapshot::{load_snapshot, write_snapshot};
    use effres::{EffectiveResistanceEstimator, EffresConfig};
    use effres_graph::generators;

    fn sample_estimator() -> EffectiveResistanceEstimator {
        let graph = generators::grid_2d(10, 10, 0.5, 2.0, 3).expect("generator");
        EffectiveResistanceEstimator::build(&graph, &EffresConfig::default()).expect("build")
    }

    fn temp_snapshot(name: &str, estimator: &EffectiveResistanceEstimator) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join("effres-paged-unit");
        std::fs::create_dir_all(&dir).expect("temp dir");
        let path = dir.join(name);
        let file = std::fs::File::create(&path).expect("create");
        let mut writer = std::io::BufWriter::new(file);
        write_snapshot(&mut writer, estimator, None).expect("write");
        use std::io::Write as _;
        writer.flush().expect("flush");
        path
    }

    #[test]
    fn paged_columns_match_the_resident_arena_bitwise() {
        let estimator = sample_estimator();
        let path = temp_snapshot("grid10.snap", &estimator);
        for options in [
            PagedOptions::default(),
            PagedOptions {
                columns_per_page: 1,
                cache_pages: 1,
                cache_shards: 1,
            },
            PagedOptions {
                columns_per_page: 7,
                cache_pages: 3,
                cache_shards: 2,
            },
        ] {
            let paged = open_paged(&path, &options).expect("open");
            let inverse = estimator.approximate_inverse();
            assert_eq!(ColumnStore::order(&paged.store), inverse.order());
            assert_eq!(ColumnStore::nnz(&paged.store), inverse.nnz());
            for j in 0..inverse.order() {
                let (rows, vals) = paged
                    .store
                    .with_column(j, |c| (c.indices().to_vec(), c.values().to_vec()))
                    .expect("fetch");
                assert_eq!(rows.as_slice(), inverse.column(j).indices(), "col {j}");
                let same = vals
                    .iter()
                    .zip(inverse.column(j).values())
                    .all(|(a, b)| a.to_bits() == b.to_bits());
                assert!(same, "col {j} values differ");
                assert_eq!(
                    paged.store.column_norm_squared(j).expect("norm").to_bits(),
                    inverse.column(j).norm2_squared().to_bits(),
                    "col {j} norm"
                );
            }
        }
    }

    #[test]
    fn open_reports_header_metadata_without_touching_column_blocks() {
        let estimator = sample_estimator();
        let path = temp_snapshot("grid10_meta.snap", &estimator);
        let paged = open_paged(&path, &PagedOptions::default()).expect("open");
        assert_eq!(paged.node_count(), estimator.node_count());
        assert_eq!(paged.stats, estimator.stats());
        assert_eq!(paged.epsilon, estimator.approximate_inverse().epsilon());
        assert_eq!(
            paged.permutation.new_to_old(),
            estimator.permutation().new_to_old()
        );
        assert!(paged.labels.is_none());
        // Nothing decoded yet.
        let s = paged.store.page_cache_stats();
        assert_eq!((s.hits, s.misses), (0, 0));
        assert!(paged.store.resident_bytes() < paged.store.footprint().total_bytes());
    }

    #[test]
    fn one_page_cache_churns_but_stays_correct() {
        let estimator = sample_estimator();
        let path = temp_snapshot("grid10_churn.snap", &estimator);
        let options = PagedOptions {
            columns_per_page: 4,
            cache_pages: 1,
            cache_shards: 1,
        };
        let paged = open_paged(&path, &options).expect("open");
        assert_eq!(paged.store.cache_capacity_pages(), 1);
        let inverse = estimator.approximate_inverse();
        // Two full sweeps: the second sweep misses again because each page
        // evicts the previous one.
        for _ in 0..2 {
            for j in 0..inverse.order() {
                assert_eq!(
                    paged.store.column_norm_squared(j).expect("norm").to_bits(),
                    inverse.column(j).norm2_squared().to_bits()
                );
            }
        }
        let s = paged.store.page_cache_stats();
        assert_eq!(s.misses as usize, 2 * paged.store.page_count());
        // Within a page, consecutive columns hit.
        assert!(s.hits > 0);
    }

    #[test]
    fn v1_snapshots_are_rejected_with_a_reencode_hint() {
        let estimator = sample_estimator();
        let dir = std::env::temp_dir().join("effres-paged-unit");
        std::fs::create_dir_all(&dir).expect("temp dir");
        let path = dir.join("grid10_v1.snap");
        let file = std::fs::File::create(&path).expect("create");
        let mut writer = std::io::BufWriter::new(file);
        crate::snapshot::write_snapshot_v1(&mut writer, &estimator, None).expect("write v1");
        use std::io::Write as _;
        writer.flush().expect("flush");
        let err = open_paged(&path, &PagedOptions::default()).expect_err("v1 must be rejected");
        assert!(err.to_string().contains("version 1"), "{err}");
        // The resident loader still reads it fine.
        assert!(load_snapshot(&path).is_ok());
    }

    #[test]
    fn truncated_files_are_rejected_at_open() {
        let estimator = sample_estimator();
        let path = temp_snapshot("grid10_trunc.snap", &estimator);
        let bytes = std::fs::read(&path).expect("read");
        let cut = bytes.len() - 9; // into the value block + crc
        std::fs::write(&path, &bytes[..cut]).expect("rewrite");
        assert!(matches!(
            open_paged(&path, &PagedOptions::default()),
            Err(IoError::Format(_))
        ));
    }
}
