//! Out-of-core column store: serving queries straight from a v2 or v3
//! snapshot file.
//!
//! The whole point of the paper's approximate inverse is that `Z̃` is sparse
//! enough to *keep around* — but keeping it around does not have to mean
//! keeping it in RAM. The v2/v3 snapshot layouts store the arena as
//! contiguous bulk blocks (`col_ptr`, `rows`, `vals`; see
//! [`crate::snapshot`]), so any column is two positioned reads away:
//!
//! ```text
//! rows of column j:  file[rows_offset + 4·col_ptr[j] ..]      (raw codec)
//!                    file[rows_offset + row_off[j] ..]        (varint codec, v3)
//! vals of column j:  file[vals_offset + 8·col_ptr[j] .. vals_offset + 8·col_ptr[j+1]]
//! ```
//!
//! [`PagedColumnStore`] keeps only the `col_ptr` block (plus, for v3, the
//! varint byte-offset table — and the permutation, labels and persisted
//! norms, via [`PagedSnapshot`]) resident and fetches column data on
//! demand with positioned reads — plain `pread`
//! (`std::os::unix::fs::FileExt::read_exact_at`) on Unix, `seek_read` on
//! Windows, no mmap, no platform crates. Columns are fetched in *pages* (a fixed
//! range of consecutive columns, [`PagedOptions::columns_per_page`]) and
//! decoded pages live in a sharded slab-LRU cache (the same intrusive-list
//! idiom as the service layer's pair cache) behind `Arc`s, so hot columns
//! are served from memory while cold ones stream from disk and eviction can
//! never invalidate a view a query is still reading. Batch schedulers use
//! the bulk path instead: [`PagedColumnStore::pin_pages`] fetches page sets
//! with **coalesced readahead** (adjacent missing pages merge into single
//! large positioned reads) into an [`PinnedPages`] set served through a
//! [`PinnedReader`], and [`PagedColumnStore::prefetch_columns`] is the
//! fire-and-forget cache warm-up hint.
//!
//! Decoded-page buffers are **recycled**, not churned: when the last `Arc`
//! to an evicted page drops, its row/value/norm vectors return to a
//! per-store free list (bounded by the cache budget) and the next decode
//! reuses their capacity, and the multi-megabyte coalesced read scratch is
//! pooled the same way. Without this, a cache-sized sweep allocates and
//! frees one page buffer per miss — gigabytes of allocator traffic per
//! large batch that glibc hands back to the kernel, turning a long-lived
//! server's steady state into a minor-page-fault storm. With the pool,
//! steady-state serving allocates nothing on the page path.
//!
//! Trust model: the file is untrusted. The `col_ptr` block is fully
//! validated at [`open_paged`] time (monotone, spanning exactly the declared
//! nonzeros — *before* anything is served), the file length must match the
//! layout the header implies, and every page is validated as it is decoded
//! (strictly increasing lower-triangular row indices in range, finite
//! values) — a corrupt page is a typed
//! [`EffresError::StoreFailure`](effres::EffresError), never a panic and
//! never silently wrong answers. The whole-payload crc32 is *not* checked
//! (that would require streaming the entire file, defeating the
//! milliseconds-to-first-query cold start); corruption the structural
//! checks cannot see — flipped value bytes that stay finite — is caught by
//! the resident loader, not this one.
//!
//! Answers are **bit-identical** to the resident arena's for every page
//! geometry and cache size: pages decode the same little-endian bytes the
//! resident loader reads, per-column norms are summed in the same order, and
//! the kernels are the same generic code (`effres::column_store`).

use crate::error::IoError;
use crate::fault::{FaultPlan, ReadFault, RetryPolicy, REFETCH_ATTEMPT_BASE};
use crate::snapshot::{
    decode_varint_column, read_col_ptr_block, read_payload_header, read_row_off_block, CrcReader,
    PayloadHeader, MAGIC, ROW_CODEC_RAW, ROW_CODEC_VARINT, VERSION_V1, VERSION_V2, VERSION_V3,
};
use effres::approx_inverse::{ensure_u32_indexable, ArenaFootprint, ColumnView};
use effres::column_store::ColumnStore;
use effres::error::EffresError;
use effres::estimator::EstimatorStats;
use effres::ValueMode;
use effres_sparse::Permutation;
use std::collections::HashMap;
use std::fs::File;
use std::io::{BufReader, Read};
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, Weak};

/// Positioned reads over a shared [`File`], std-only on every platform:
/// `pread` on Unix and `seek_read` on Windows never touch a shared cursor,
/// so concurrent readers need no coordination; other targets fall back to a
/// mutex-serialized seek-then-read on the same handle.
#[derive(Debug)]
struct PositionedFile {
    file: File,
    #[cfg(not(any(unix, windows)))]
    cursor: Mutex<()>,
}

impl PositionedFile {
    fn new(file: File) -> Self {
        PositionedFile {
            file,
            #[cfg(not(any(unix, windows)))]
            cursor: Mutex::new(()),
        }
    }

    fn metadata(&self) -> std::io::Result<std::fs::Metadata> {
        self.file.metadata()
    }

    #[cfg(unix)]
    fn read_exact_at(&self, buf: &mut [u8], offset: u64) -> std::io::Result<()> {
        std::os::unix::fs::FileExt::read_exact_at(&self.file, buf, offset)
    }

    #[cfg(windows)]
    fn read_exact_at(&self, mut buf: &mut [u8], mut offset: u64) -> std::io::Result<()> {
        use std::os::windows::fs::FileExt;
        while !buf.is_empty() {
            match self.file.seek_read(buf, offset) {
                Ok(0) => {
                    return Err(std::io::Error::new(
                        std::io::ErrorKind::UnexpectedEof,
                        "positioned read past end of file",
                    ))
                }
                Ok(n) => {
                    buf = &mut buf[n..];
                    offset += n as u64;
                }
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
                Err(e) => return Err(e),
            }
        }
        Ok(())
    }

    #[cfg(not(any(unix, windows)))]
    fn read_exact_at(&self, buf: &mut [u8], offset: u64) -> std::io::Result<()> {
        use std::io::{Read as _, Seek, SeekFrom};
        let _guard = self.cursor.lock().expect("file cursor lock poisoned");
        let mut file = &self.file;
        file.seek(SeekFrom::Start(offset))?;
        file.read_exact(buf)
    }
}

/// Geometry and budget of the page cache of a [`PagedColumnStore`].
///
/// Every setting trades disk traffic for memory only — answers are
/// bit-identical across all of them.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PagedOptions {
    /// Consecutive columns decoded per page. Larger pages amortize the
    /// `pread` syscall over more columns (good for scans and sorted
    /// batches); smaller pages waste less memory on isolated lookups.
    pub columns_per_page: usize,
    /// Total decoded pages kept resident across all cache shards (at least
    /// one per shard). This is the store's memory budget knob, surfaced as
    /// `EffresConfig::page_cache_pages` / `effres-cli --page-cache`.
    pub cache_pages: usize,
    /// Number of cache shards (rounded up to a power of two); more shards
    /// mean less lock contention between parallel query workers.
    pub cache_shards: usize,
    /// Bounded retry-with-backoff applied to every positioned read (see
    /// [`RetryPolicy`]): transient faults are absorbed and counted
    /// ([`PageCacheStats::retries`]) instead of failing the query.
    pub retry: RetryPolicy,
    /// Width of the *decoded* page values (see [`ValueMode`]). The on-disk
    /// file stays f64-canonical either way; `F32` narrows each value once at
    /// page-decode time, halving the decoded value stream in memory. Unlike
    /// the other knobs this one changes bits: answers match a resident
    /// estimator narrowed with the same mode, not the f64 answers. In `F32`
    /// mode a v3 file's persisted norm table is ignored and per-page norms
    /// are recomputed from the narrowed values, keeping paged answers
    /// bit-identical to resident f32 serving.
    pub value_mode: ValueMode,
}

impl Default for PagedOptions {
    fn default() -> Self {
        PagedOptions {
            columns_per_page: 64,
            cache_pages: effres::config::DEFAULT_PAGE_CACHE_PAGES,
            cache_shards: 8,
            retry: RetryPolicy::default(),
            value_mode: ValueMode::default(),
        }
    }
}

impl PagedOptions {
    /// Sets the total decoded-page budget (see [`PagedOptions::cache_pages`]).
    pub fn with_cache_pages(mut self, pages: usize) -> Self {
        self.cache_pages = pages;
        self
    }

    /// Sets the page size in columns (see
    /// [`PagedOptions::columns_per_page`]).
    pub fn with_columns_per_page(mut self, columns: usize) -> Self {
        self.columns_per_page = columns;
        self
    }

    /// Sets the positioned-read retry policy (see [`PagedOptions::retry`]).
    pub fn with_retry(mut self, retry: RetryPolicy) -> Self {
        self.retry = retry;
        self
    }

    /// Sets the decoded value width (see [`PagedOptions::value_mode`]).
    pub fn with_value_mode(mut self, value_mode: ValueMode) -> Self {
        self.value_mode = value_mode;
        self
    }
}

/// Page-cache counters of a [`PagedColumnStore`]. A **hit** served a column
/// from a resident decoded page; a **miss** paid a disk read and a decode.
///
/// All counters are relaxed atomics underneath: they are monotonic between
/// calls to [`PagedColumnStore::take_page_cache_stats`], which snapshots and
/// resets them so callers (the query engine's batch paths) can report
/// per-batch rates instead of process-lifetime totals.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct PageCacheStats {
    /// Page lookups answered from the cache (or an already-pinned page).
    pub hits: u64,
    /// Page lookups that read and decoded from disk.
    pub misses: u64,
    /// Bytes fetched from disk by page misses, bulk pins and prefetches.
    pub bytes_read: u64,
    /// Coalesced positioned reads issued by the bulk/prefetch paths — each
    /// one covers a run of adjacent pages that single-page misses would have
    /// fetched with one read (and one syscall) per page per block.
    pub readahead_reads: u64,
    /// Read attempts re-issued after a fault: transient-failure retries
    /// plus validation-failure page re-fetches. A fault-free store reports
    /// zero; a store surviving on retries reports how hard it is working.
    pub retries: u64,
    /// Faults observed on the read path: failed read attempts (before and
    /// including the one that exhausted the retry budget) and page
    /// validation failures. `faulted_reads > retries` means some faults
    /// burned through the whole retry budget and surfaced as errors.
    pub faulted_reads: u64,
}

/// Cumulative counters of the background integrity scrubber (see
/// [`PagedColumnStore::scrub_page`]). Unlike [`PageCacheStats`] these are
/// **never** reset by the per-batch stat windows: they describe the health
/// of the snapshot at rest over the store's whole lifetime, which is what a
/// health check wants to see.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ScrubStats {
    /// Pages fetched and revalidated by the scrubber.
    pub pages_scrubbed: u64,
    /// Scrub passes over a page that found it rotten (failed the same
    /// validation the serve path applies, after the one-shot re-fetch).
    pub scrub_failures: u64,
    /// Rotten pages evicted from the cache by
    /// [`PagedColumnStore::quarantine_page`] — the next query touching one
    /// re-fetches from disk and surfaces a typed error if the rot persists.
    pub quarantined: u64,
}

impl PageCacheStats {
    /// Counter-wise sum (both sides of a snapshot/reset cycle).
    #[must_use]
    pub fn merged(self, other: PageCacheStats) -> PageCacheStats {
        PageCacheStats {
            hits: self.hits + other.hits,
            misses: self.misses + other.misses,
            bytes_read: self.bytes_read + other.bytes_read,
            readahead_reads: self.readahead_reads + other.readahead_reads,
            retries: self.retries + other.retries,
            faulted_reads: self.faulted_reads + other.faulted_reads,
        }
    }
}

/// One decoded page: the row/value data of a contiguous column range, plus
/// the per-column squared norms (summed in index order at decode time, so
/// they are bit-identical to the resident norm table).
#[derive(Debug)]
struct Page {
    /// First column covered by the page.
    first_col: usize,
    /// `col_ptr[first_col]` — the entry offset the page's buffers start at.
    base: u64,
    rows: Vec<u32>,
    /// Decoded values in the store's [`ValueMode`]: exactly one of `vals`
    /// (f64 mode) and `vals32` (f32 mode) is populated, the other stays
    /// empty — a page never holds both widths.
    vals: Vec<f64>,
    vals32: Vec<f32>,
    norms: Vec<f64>,
    /// Where the buffers go when the last `Arc` drops (`Weak`: a store being
    /// torn down takes its pool with it and outstanding pages just free).
    pool: Weak<BufferPool>,
}

impl Drop for Page {
    fn drop(&mut self) {
        if let Some(pool) = self.pool.upgrade() {
            pool.put_page_buffers(PageBuffers {
                rows: std::mem::take(&mut self.rows),
                vals: std::mem::take(&mut self.vals),
                vals32: std::mem::take(&mut self.vals32),
                norms: std::mem::take(&mut self.norms),
            });
        }
    }
}

/// The recyclable allocations of one [`Page`], detached from its identity.
#[derive(Debug, Default)]
struct PageBuffers {
    rows: Vec<u32>,
    vals: Vec<f64>,
    vals32: Vec<f32>,
    norms: Vec<f64>,
}

impl PageBuffers {
    /// Entries the set can hold without reallocating (rows and values are
    /// always sized together; the min guards against them ever diverging).
    /// A store's pool only ever sees its own value mode, so whichever value
    /// vector that mode uses carries the capacity and the other stays empty.
    fn entry_capacity(&self) -> usize {
        self.rows
            .capacity()
            .min(self.vals.capacity().max(self.vals32.capacity()))
    }
}

/// Spare [`ReadScratch`] sets retained per store. Each is bounded by
/// [`MAX_COALESCED_BYTES`], so this caps retained read scratch at ~128 MiB
/// worst case — in exchange, up to four concurrent batches run their bulk
/// reads without touching the allocator.
const SCRATCH_SPARES: usize = 4;

/// Free lists of decoded-page and read-scratch buffers, shared between a
/// store (which pops on decode) and its pages (which push on drop, via a
/// `Weak` back-reference).
///
/// Page entry counts vary along the column profile, so recycling is by
/// **best fit**: the spare list stays sorted by capacity and a decode takes
/// the smallest spare that already holds the page (a too-small spare would
/// just reallocate inside `extend` — allocator churn with extra steps), and
/// fresh buffers are sized to power-of-two entry classes so the capacities
/// in circulation converge onto a few reusable classes instead of chasing
/// every page size.
///
/// The page free list is capped at the cache budget: eviction can never
/// park more spare buffer sets than the cache holds pages, so the pool at
/// worst doubles the decoded-page footprint transiently (the same order as
/// the pin overshoot [`PagedColumnStore::pin_pages`] documents) and in
/// steady state holds roughly one pin burst. Lock order: a page shard lock
/// may be held while a dropped page takes a pool lock (eviction), never the
/// reverse — decode pops before any shard lock is taken.
#[derive(Debug)]
struct BufferPool {
    /// Spare buffer sets, sorted ascending by entry capacity.
    pages: Mutex<Vec<PageBuffers>>,
    scratch: Mutex<Vec<ReadScratch>>,
    page_cap: usize,
    /// Decodes served from a recycled buffer set vs. a fresh allocation —
    /// the pool's hit/miss counters ([`PagedColumnStore::buffer_pool_stats`]).
    recycled: AtomicU64,
    fresh: AtomicU64,
}

impl BufferPool {
    fn new(page_cap: usize) -> Self {
        BufferPool {
            pages: Mutex::new(Vec::new()),
            scratch: Mutex::new(Vec::new()),
            page_cap: page_cap.max(8),
            recycled: AtomicU64::new(0),
            fresh: AtomicU64::new(0),
        }
    }

    /// A buffer set whose row/value capacity already covers `count` entries:
    /// the smallest fitting spare, or a fresh set in the next power-of-two
    /// entry class, with the value vector of the store's `mode` pre-sized
    /// (the other width stays empty so f32 stores never pay for f64-wide
    /// buffers).
    fn take_page_buffers(&self, count: usize, mode: ValueMode) -> PageBuffers {
        let fitting = {
            let mut spares = self.pages.lock().expect("buffer pool poisoned");
            let at = spares.partition_point(|b| b.entry_capacity() < count);
            (at < spares.len()).then(|| spares.remove(at))
        };
        match fitting {
            Some(buffers) => {
                self.recycled.fetch_add(1, Ordering::Relaxed);
                buffers
            }
            None => {
                self.fresh.fetch_add(1, Ordering::Relaxed);
                let class = count.next_power_of_two();
                let (vals, vals32) = match mode {
                    ValueMode::F64 => (Vec::with_capacity(class), Vec::new()),
                    ValueMode::F32 => (Vec::new(), Vec::with_capacity(class)),
                };
                PageBuffers {
                    rows: Vec::with_capacity(class),
                    vals,
                    vals32,
                    norms: Vec::new(),
                }
            }
        }
    }

    fn put_page_buffers(&self, buffers: PageBuffers) {
        let mut evicted = None;
        {
            let mut spares = self.pages.lock().expect("buffer pool poisoned");
            if spares.len() >= self.page_cap {
                // Full: keep the larger set — a big spare can serve any
                // smaller page, never the other way around.
                if spares[0].entry_capacity() >= buffers.entry_capacity() {
                    return; // `buffers` frees after the guard unlocks
                }
                evicted = Some(spares.remove(0));
            }
            let at = spares.partition_point(|b| b.entry_capacity() < buffers.entry_capacity());
            spares.insert(at, buffers);
        }
        drop(evicted); // outside the lock
    }

    fn take_scratch(&self) -> ReadScratch {
        self.scratch
            .lock()
            .expect("buffer pool poisoned")
            .pop()
            .unwrap_or_default()
    }

    fn put_scratch(&self, scratch: ReadScratch) {
        let mut spares = self.scratch.lock().expect("buffer pool poisoned");
        if spares.len() < SCRATCH_SPARES {
            spares.push(scratch);
        }
    }
}

const NIL: u32 = u32::MAX;

/// Upper bound on one coalesced readahead buffer (rows + values of a run of
/// adjacent pages). Big enough that sequential sweeps amortize the syscall
/// and decode setup over tens of pages; small enough that pinning a large
/// block never transiently doubles its memory in raw read buffers.
const MAX_COALESCED_BYTES: usize = 32 << 20;

/// Reusable raw-byte buffers for coalesced reads (one per bulk call, reused
/// across its chunks).
#[derive(Debug, Default)]
struct ReadScratch {
    rows: Vec<u8>,
    vals: Vec<u8>,
}

#[derive(Debug)]
struct PageNode {
    key: usize,
    /// `None` only while the slot sits on the free list (the page of a
    /// removed entry must drop immediately, not linger until slot reuse).
    page: Option<Arc<Page>>,
    prev: u32,
    next: u32,
}

/// One shard of the page cache: the same intrusive-list-over-a-slab LRU as
/// the service layer's pair cache, holding `Arc<Page>`s so a page can be
/// evicted while a reader still borrows from it.
#[derive(Debug)]
struct PageShard {
    map: HashMap<usize, u32>,
    slab: Vec<PageNode>,
    head: u32,
    tail: u32,
    capacity: usize,
    /// Slab slots vacated by [`PageShard::remove`] (quarantine), reused by
    /// the next inserts — eviction recycles its victim's slot in place, so
    /// only explicit removal ever frees one.
    free: Vec<u32>,
}

impl PageShard {
    fn new(capacity: usize) -> Self {
        PageShard {
            map: HashMap::with_capacity(capacity.min(1 << 16)),
            slab: Vec::new(),
            head: NIL,
            tail: NIL,
            capacity,
            free: Vec::new(),
        }
    }

    fn unlink(&mut self, index: u32) {
        let (prev, next) = {
            let node = &self.slab[index as usize];
            (node.prev, node.next)
        };
        match prev {
            NIL => self.head = next,
            p => self.slab[p as usize].next = next,
        }
        match next {
            NIL => self.tail = prev,
            n => self.slab[n as usize].prev = prev,
        }
    }

    fn push_front(&mut self, index: u32) {
        let old_head = self.head;
        {
            let node = &mut self.slab[index as usize];
            node.prev = NIL;
            node.next = old_head;
        }
        if old_head != NIL {
            self.slab[old_head as usize].prev = index;
        }
        self.head = index;
        if self.tail == NIL {
            self.tail = index;
        }
    }

    fn get(&mut self, key: usize) -> Option<Arc<Page>> {
        let index = *self.map.get(&key)?;
        if self.head != index {
            self.unlink(index);
            self.push_front(index);
        }
        Some(Arc::clone(
            self.slab[index as usize]
                .page
                .as_ref()
                .expect("mapped slot always holds a page"),
        ))
    }

    fn insert(&mut self, key: usize, page: Arc<Page>) {
        if let Some(&index) = self.map.get(&key) {
            // A concurrent miss decoded the same page; keep the resident one
            // fresh (both decodes hold identical bits).
            self.slab[index as usize].page = Some(page);
            if self.head != index {
                self.unlink(index);
                self.push_front(index);
            }
            return;
        }
        let index = if let Some(index) = self.free.pop() {
            let node = &mut self.slab[index as usize];
            node.key = key;
            node.page = Some(page);
            index
        } else if self.map.len() >= self.capacity {
            let victim = self.tail;
            self.unlink(victim);
            let node = &mut self.slab[victim as usize];
            self.map.remove(&node.key);
            node.key = key;
            node.page = Some(page);
            victim
        } else {
            self.slab.push(PageNode {
                key,
                page: Some(page),
                prev: NIL,
                next: NIL,
            });
            (self.slab.len() - 1) as u32
        };
        self.map.insert(key, index);
        self.push_front(index);
    }

    /// Drops `key` from the shard (quarantine), freeing its slab slot for
    /// reuse; the page's buffers recycle as soon as the last outside reader
    /// releases its `Arc`. Returns whether the key was resident.
    fn remove(&mut self, key: usize) -> bool {
        let Some(index) = self.map.remove(&key) else {
            return false;
        };
        self.unlink(index);
        let node = &mut self.slab[index as usize];
        node.page = None;
        node.prev = NIL;
        node.next = NIL;
        self.free.push(index);
        true
    }
}

/// A sharded LRU of decoded pages keyed by page id.
#[derive(Debug)]
struct PageLru {
    shards: Vec<Mutex<PageShard>>,
    mask: u64,
    per_shard: usize,
}

impl PageLru {
    fn new(pages: usize, shards: usize) -> Self {
        let shard_count = shards.max(1).next_power_of_two();
        let per_shard = pages.div_ceil(shard_count).max(1);
        PageLru {
            shards: (0..shard_count)
                .map(|_| Mutex::new(PageShard::new(per_shard)))
                .collect(),
            mask: shard_count as u64 - 1,
            per_shard,
        }
    }

    fn shard(&self, key: usize) -> &Mutex<PageShard> {
        // SplitMix64 finalizer spreads consecutive page ids across shards.
        let mut h = (key as u64).wrapping_add(0x9e37_79b9_7f4a_7c15);
        h = (h ^ (h >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        h = (h ^ (h >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        h ^= h >> 31;
        &self.shards[(h & self.mask) as usize]
    }

    fn get(&self, key: usize) -> Option<Arc<Page>> {
        self.shard(key)
            .lock()
            .expect("page cache shard poisoned")
            .get(key)
    }

    fn insert(&self, key: usize, page: Arc<Page>) {
        self.shard(key)
            .lock()
            .expect("page cache shard poisoned")
            .insert(key, page);
    }

    fn remove(&self, key: usize) -> bool {
        self.shard(key)
            .lock()
            .expect("page cache shard poisoned")
            .remove(key)
    }

    fn capacity(&self) -> usize {
        self.shards.len() * self.per_shard
    }
}

/// A column store serving the approximate inverse directly from a v2
/// snapshot file through a page cache (see the module docs).
///
/// The store is `Send + Sync`: positioned reads do not touch a shared file
/// cursor, the cache shards are independently locked, and decoded pages are
/// shared behind `Arc`s — parallel batch workers hit it concurrently just
/// like the resident arena.
#[derive(Debug)]
pub struct PagedColumnStore {
    file: PositionedFile,
    order: usize,
    nnz: usize,
    /// The resident `col_ptr` block (entry offsets, as stored on disk).
    col_ptr: Vec<u64>,
    /// How the on-disk row block is encoded (v2 files are always raw; v3
    /// files negotiated at write time).
    codec: RowCodec,
    /// Per-column *byte* offsets into the row block — present iff the codec
    /// is [`RowCodec::Varint`], where entry offsets no longer locate bytes.
    row_off: Option<Vec<u64>>,
    /// The file's persisted `‖z̃_j‖²` table (v3): when present,
    /// [`ColumnStore::column_norm_squared`] serves straight from it and page
    /// decode skips accumulating per-page norms — the table was summed in
    /// the same index order at write time, so the bits are identical.
    /// `Arc`-shared: the query engine keeps the same single copy.
    norms: Option<Arc<Vec<f64>>>,
    rows_offset: u64,
    vals_offset: u64,
    /// Width pages are decoded at ([`PagedOptions::value_mode`]); the file
    /// itself is always f64-canonical.
    value_mode: ValueMode,
    columns_per_page: usize,
    cache: PageLru,
    /// Retry policy for positioned reads ([`PagedOptions::retry`]).
    retry: RetryPolicy,
    /// Injected-fault schedule, if one was installed at open time
    /// ([`open_paged_with_faults`]); `None` on every production open, where
    /// the read seam costs a single branch.
    faults: Option<FaultPlan>,
    hits: AtomicU64,
    misses: AtomicU64,
    bytes_read: AtomicU64,
    readahead_reads: AtomicU64,
    retries: AtomicU64,
    faulted_reads: AtomicU64,
    /// Cumulative scrubber counters ([`ScrubStats`]) — separate from the
    /// windowed page-cache stats so batch snapshots never reset them.
    pages_scrubbed: AtomicU64,
    scrub_failures: AtomicU64,
    quarantined: AtomicU64,
    /// Live/high-water pin accounting, shared (`Arc`) with the guards inside
    /// every outstanding [`PinnedPages`] so drops decrement from anywhere.
    pin_counters: Arc<PinCounters>,
    /// Recycled decoded-page and read-scratch buffers (see [`BufferPool`]):
    /// dying pages park their vectors here and decodes reuse the capacity,
    /// so steady-state serving does not churn the allocator.
    buffers: Arc<BufferPool>,
}

/// Pin accounting shared between a store and its outstanding [`PinnedPages`]:
/// how many pages are pinned *right now* across all holders, and the highest
/// that count has ever been. Admission control leases capacity against the
/// cache budget; these counters are the ground truth that the leases actually
/// bound the pinned footprint (the over-pin test asserts
/// `high_water ≤ budget`).
#[derive(Debug, Default)]
struct PinCounters {
    current: AtomicU64,
    high_water: AtomicU64,
}

/// Decrements the live pin count when a [`PinnedPages`] set is dropped.
#[derive(Debug)]
struct PinGuard {
    counters: Arc<PinCounters>,
    count: u64,
}

impl Drop for PinGuard {
    fn drop(&mut self) {
        self.counters
            .current
            .fetch_sub(self.count, Ordering::Relaxed);
    }
}

/// Encoding of the on-disk row block (see the v3 layout in
/// [`crate::snapshot`]). Decoded pages hold plain `u32` rows either way —
/// the codec trades disk bytes for decode work, never bits.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RowCodec {
    /// `u32 × nnz`, as the in-memory arena stores them (v2, or v3 files
    /// where varint would not have shrunk the block).
    Raw,
    /// Per-column LEB128 delta encoding with a resident byte-offset table.
    Varint,
}

impl PagedColumnStore {
    /// Number of pages the column space divides into.
    pub fn page_count(&self) -> usize {
        self.order.div_ceil(self.columns_per_page)
    }

    /// Columns decoded per page.
    pub fn columns_per_page(&self) -> usize {
        self.columns_per_page
    }

    /// Total decoded-page capacity of the cache (after shard rounding).
    pub fn cache_capacity_pages(&self) -> usize {
        self.cache.capacity()
    }

    /// The row codec of the underlying file.
    pub fn row_codec(&self) -> RowCodec {
        self.codec
    }

    /// Width pages are decoded at (see [`PagedOptions::value_mode`]).
    pub fn value_mode(&self) -> ValueMode {
        self.value_mode
    }

    /// The persisted `‖z̃_j‖²` table (permuted domain), resident for v3
    /// files; `None` for v2 files, whose norms come off decoded pages.
    pub fn resident_norms(&self) -> Option<&[f64]> {
        self.norms.as_deref().map(Vec::as_slice)
    }

    /// The persisted norm table behind its shared handle, for consumers that
    /// keep it (the query engine): clones the `Arc`, not the `8n` bytes.
    pub fn resident_norms_shared(&self) -> Option<Arc<Vec<f64>>> {
        self.norms.clone()
    }

    /// Page-cache counters accumulated since the last
    /// [`PagedColumnStore::take_page_cache_stats`] (or since open).
    pub fn page_cache_stats(&self) -> PageCacheStats {
        PageCacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            bytes_read: self.bytes_read.load(Ordering::Relaxed),
            readahead_reads: self.readahead_reads.load(Ordering::Relaxed),
            retries: self.retries.load(Ordering::Relaxed),
            faulted_reads: self.faulted_reads.load(Ordering::Relaxed),
        }
    }

    /// Snapshots the page-cache counters and resets them to zero, so a batch
    /// executor can report exact per-batch rates: take once before the batch
    /// (crediting whatever accrued to the previous window) and once after.
    /// The swap per counter is atomic; concurrent batches each see a
    /// consistent partition of the total (nothing is lost or double-counted).
    pub fn take_page_cache_stats(&self) -> PageCacheStats {
        PageCacheStats {
            hits: self.hits.swap(0, Ordering::Relaxed),
            misses: self.misses.swap(0, Ordering::Relaxed),
            bytes_read: self.bytes_read.swap(0, Ordering::Relaxed),
            readahead_reads: self.readahead_reads.swap(0, Ordering::Relaxed),
            retries: self.retries.swap(0, Ordering::Relaxed),
            faulted_reads: self.faulted_reads.swap(0, Ordering::Relaxed),
        }
    }

    /// Cumulative integrity-scrubber counters (never reset; see
    /// [`ScrubStats`]).
    pub fn scrub_stats(&self) -> ScrubStats {
        ScrubStats {
            pages_scrubbed: self.pages_scrubbed.load(Ordering::Relaxed),
            scrub_failures: self.scrub_failures.load(Ordering::Relaxed),
            quarantined: self.quarantined.load(Ordering::Relaxed),
        }
    }

    /// Fetches page `pid` from disk and revalidates it with exactly the
    /// checks the serve path applies — including the one-shot re-fetch that
    /// lets corruption in transit heal — **without** touching the page
    /// cache: no insertion, no eviction, no interference with resident
    /// pages' recency. The read bytes/retries ride in the ordinary
    /// page-cache counters; the verdict lands in the cumulative
    /// [`ScrubStats`].
    ///
    /// A page that stays rotten (or unreadable past the retry budget) counts
    /// a [`ScrubStats::scrub_failures`] and is quarantined via
    /// [`PagedColumnStore::quarantine_page`], so a possibly-stale cached
    /// copy cannot outlive the knowledge that its backing bytes are bad.
    ///
    /// # Errors
    ///
    /// Returns the serve path's typed per-column
    /// [`EffresError::StoreFailure`] when the page is rotten.
    pub fn scrub_page(&self, pid: usize) -> Result<(), EffresError> {
        let mut scratch = self.buffers.take_scratch();
        let result = self.decode_page_with_scratch(pid, &mut scratch).map(drop);
        self.buffers.put_scratch(scratch);
        self.pages_scrubbed.fetch_add(1, Ordering::Relaxed);
        if result.is_err() {
            self.scrub_failures.fetch_add(1, Ordering::Relaxed);
            self.quarantine_page(pid);
        }
        result
    }

    /// Quarantines page `pid`: evicts any resident copy from the cache (the
    /// next query touching the page re-fetches from disk and surfaces a
    /// typed error if the rot persists) and counts it in
    /// [`ScrubStats::quarantined`]. Outstanding readers holding the page's
    /// `Arc` finish unaffected. Returns whether a copy was resident.
    pub fn quarantine_page(&self, pid: usize) -> bool {
        let evicted = self.cache.remove(pid);
        self.quarantined.fetch_add(1, Ordering::Relaxed);
        evicted
    }

    /// Bytes this store keeps permanently resident (the `col_ptr` block,
    /// plus the varint byte-offset table when present) — the part of the
    /// arena that did *not* stay on disk. Decoded pages come and go within
    /// the cache budget on top of this.
    pub fn resident_bytes(&self) -> usize {
        (self.col_ptr.len() + self.row_off.as_ref().map_or(0, Vec::len))
            * std::mem::size_of::<u64>()
    }

    /// On-disk footprint of the three arena blocks, in the same shape the
    /// resident arena reports its memory footprint. With the raw codec the
    /// row block is `u32` on disk exactly as in memory; with the varint
    /// codec it is the (smaller) encoded byte count.
    pub fn footprint(&self) -> ArenaFootprint {
        let rows_bytes = match (&self.codec, &self.row_off) {
            (RowCodec::Varint, Some(off)) => *off.last().expect("row_off never empty") as usize,
            _ => self.nnz * 4,
        };
        ArenaFootprint {
            col_ptr_bytes: self.col_ptr.len() * 8,
            rows_bytes,
            vals_bytes: self.nnz * 8,
            index_width_bytes: 4,
        }
    }

    /// The decoded page covering column `j`, from the cache or from disk.
    fn page_for(&self, j: usize) -> Result<Arc<Page>, EffresError> {
        self.page_by_id(j / self.columns_per_page)
    }

    /// The decoded page `pid`, from the cache or from disk.
    fn page_by_id(&self, pid: usize) -> Result<Arc<Page>, EffresError> {
        if let Some(page) = self.cache.get(pid) {
            self.hits.fetch_add(1, Ordering::Relaxed);
            return Ok(page);
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        let page = Arc::new(self.decode_page(pid)?);
        self.cache.insert(pid, Arc::clone(&page));
        Ok(page)
    }

    /// One positioned-read **attempt**: the real read, unless a fault plan
    /// is installed and schedules a failure for `(offset, attempt)`; poison
    /// (injected at-rest corruption) is applied to successful reads. This is
    /// the single seam every page/readahead byte passes through.
    fn read_attempt(&self, buf: &mut [u8], offset: u64, attempt: u32) -> std::io::Result<()> {
        let Some(plan) = &self.faults else {
            return self.file.read_exact_at(buf, offset);
        };
        match plan.read_fault(offset, attempt) {
            ReadFault::TransientError => Err(std::io::Error::other(
                "injected transient read error (fault plan)",
            )),
            ReadFault::ShortRead => Err(std::io::Error::new(
                std::io::ErrorKind::UnexpectedEof,
                "injected short read (fault plan)",
            )),
            ReadFault::None => {
                self.file.read_exact_at(buf, offset)?;
                plan.apply_poison(buf, offset, attempt);
                Ok(())
            }
        }
    }

    /// A positioned read with bounded retry-with-backoff: transient failures
    /// are counted ([`PageCacheStats::faulted_reads`]) and retried
    /// ([`PageCacheStats::retries`]) up to the policy's budget before the
    /// last error surfaces. `attempt_base` keys the fault schedule — the
    /// validation-failure re-fetch pass uses a disjoint attempt range so its
    /// reads draw fresh outcomes.
    fn read_block(&self, buf: &mut [u8], offset: u64, attempt_base: u32) -> std::io::Result<()> {
        let mut attempt = 0u32;
        loop {
            match self.read_attempt(buf, offset, attempt_base + attempt) {
                Ok(()) => return Ok(()),
                Err(error) => {
                    self.faulted_reads.fetch_add(1, Ordering::Relaxed);
                    if attempt >= self.retry.max_retries {
                        return Err(error);
                    }
                    self.retries.fetch_add(1, Ordering::Relaxed);
                    let backoff = self.retry.backoff_for(attempt);
                    if !backoff.is_zero() {
                        std::thread::sleep(backoff);
                    }
                    attempt += 1;
                }
            }
        }
    }

    /// First and one-past-last column of page `pid`.
    fn page_columns(&self, pid: usize) -> (usize, usize) {
        let first_col = pid * self.columns_per_page;
        let last_col = (first_col + self.columns_per_page).min(self.order);
        (first_col, last_col)
    }

    /// Byte range of the row data covering columns `first_col..last_col`
    /// (contiguous for any consecutive column range, in either codec).
    fn row_byte_range(&self, first_col: usize, last_col: usize) -> (u64, usize) {
        match (&self.codec, &self.row_off) {
            (RowCodec::Varint, Some(off)) => (
                self.rows_offset + off[first_col],
                (off[last_col] - off[first_col]) as usize,
            ),
            _ => (
                self.rows_offset + self.col_ptr[first_col] * 4,
                ((self.col_ptr[last_col] - self.col_ptr[first_col]) * 4) as usize,
            ),
        }
    }

    /// Byte range of the value data covering columns `first_col..last_col`.
    fn val_byte_range(&self, first_col: usize, last_col: usize) -> (u64, usize) {
        (
            self.vals_offset + self.col_ptr[first_col] * 8,
            ((self.col_ptr[last_col] - self.col_ptr[first_col]) * 8) as usize,
        )
    }

    /// Reads and validates one page from disk. Two threads may race to
    /// decode the same page; both produce identical bits and the cache keeps
    /// one of them — correctness is unaffected, only a read is duplicated.
    fn decode_page(&self, pid: usize) -> Result<Page, EffresError> {
        let mut scratch = self.buffers.take_scratch();
        let result = self.decode_page_with_scratch(pid, &mut scratch);
        self.buffers.put_scratch(scratch);
        result
    }

    /// Reads the raw row/value bytes of page `pid` into `scratch`, with the
    /// retry policy applied to both positioned reads.
    fn fetch_page_bytes(
        &self,
        pid: usize,
        scratch: &mut ReadScratch,
        attempt_base: u32,
    ) -> Result<(), EffresError> {
        let (first_col, last_col) = self.page_columns(pid);
        let failed = |message: String| EffresError::StoreFailure {
            column: first_col,
            message,
        };
        let (row_at, row_len) = self.row_byte_range(first_col, last_col);
        scratch.rows.resize(row_len, 0);
        self.read_block(&mut scratch.rows, row_at, attempt_base)
            .map_err(|e| failed(format!("reading the row block: {e}")))?;
        let (val_at, val_len) = self.val_byte_range(first_col, last_col);
        scratch.vals.resize(val_len, 0);
        self.read_block(&mut scratch.vals, val_at, attempt_base)
            .map_err(|e| failed(format!("reading the value block: {e}")))?;
        self.bytes_read
            .fetch_add((row_len + val_len) as u64, Ordering::Relaxed);
        Ok(())
    }

    /// Fetches and decodes one page. A page that fails *validation* (the
    /// bytes read fine but do not decode as a well-formed page) is fetched
    /// once more — corruption in transit heals, corruption at rest fails
    /// again and surfaces as the typed per-column error of the second
    /// attempt.
    fn decode_page_with_scratch(
        &self,
        pid: usize,
        scratch: &mut ReadScratch,
    ) -> Result<Page, EffresError> {
        self.fetch_page_bytes(pid, scratch, 0)?;
        match self.decode_page_bytes(pid, &scratch.rows, &scratch.vals) {
            Ok(page) => Ok(page),
            Err(_) => {
                self.faulted_reads.fetch_add(1, Ordering::Relaxed);
                self.retries.fetch_add(1, Ordering::Relaxed);
                self.fetch_page_bytes(pid, scratch, REFETCH_ATTEMPT_BASE)?;
                self.decode_page_bytes(pid, &scratch.rows, &scratch.vals)
            }
        }
    }

    /// Decodes and validates one page from its raw on-disk bytes (fetched by
    /// [`PagedColumnStore::decode_page`] one page at a time, or sliced out of
    /// a larger coalesced read by the bulk paths). The on-disk data is
    /// untrusted and the kernels rely on sorted lower-triangular columns, so
    /// every column is validated before the page can serve a query.
    fn decode_page_bytes(
        &self,
        pid: usize,
        row_bytes: &[u8],
        val_bytes: &[u8],
    ) -> Result<Page, EffresError> {
        let (first_col, last_col) = self.page_columns(pid);
        let base = self.col_ptr[first_col];
        let count = (self.col_ptr[last_col] - base) as usize;

        // Recycled buffers from a previously evicted page, when available:
        // cleared here, so only capacity (never contents) survives reuse. On
        // a validation error they simply drop instead of returning to the
        // pool — corrupt files are not a steady state worth optimizing.
        let PageBuffers {
            mut rows,
            mut vals,
            mut vals32,
            mut norms,
        } = self.buffers.take_page_buffers(count, self.value_mode);
        rows.clear();
        match (&self.codec, &self.row_off) {
            (RowCodec::Varint, Some(off)) => {
                let byte_base = off[first_col];
                for j in first_col..last_col {
                    let lo = (off[j] - byte_base) as usize;
                    let hi = (off[j + 1] - byte_base) as usize;
                    let entries = (self.col_ptr[j + 1] - self.col_ptr[j]) as usize;
                    // The decoder enforces strictly increasing in-range rows.
                    decode_varint_column(&row_bytes[lo..hi], entries, self.order, &mut rows)
                        .map_err(|message| EffresError::StoreFailure { column: j, message })?;
                }
            }
            _ => {
                rows.extend(
                    row_bytes
                        .chunks_exact(4)
                        .map(|b| u32::from_le_bytes(b.try_into().expect("4-byte chunk"))),
                );
                // Raw rows arrive unchecked: reject non-increasing or
                // out-of-range indices per column.
                for j in first_col..last_col {
                    let lo = (self.col_ptr[j] - base) as usize;
                    let hi = (self.col_ptr[j + 1] - base) as usize;
                    let column = &rows[lo..hi];
                    if !column.windows(2).all(|w| w[0] < w[1])
                        || column.last().is_some_and(|&i| i as usize >= self.order)
                    {
                        return Err(EffresError::StoreFailure {
                            column: j,
                            message: format!(
                                "row indices are not strictly increasing within 0..{}",
                                self.order
                            ),
                        });
                    }
                }
            }
        };
        // On-disk values are always f64; f32 mode narrows each one here,
        // once per decode, exactly as the resident estimator narrows its
        // arena — so a paged f32 column is bit-identical to a resident f32
        // column.
        vals.clear();
        vals32.clear();
        match self.value_mode {
            ValueMode::F64 => vals.extend(
                val_bytes
                    .chunks_exact(8)
                    .map(|b| f64::from_le_bytes(b.try_into().expect("8-byte chunk"))),
            ),
            ValueMode::F32 => vals32.extend(
                val_bytes
                    .chunks_exact(8)
                    .map(|b| f64::from_le_bytes(b.try_into().expect("8-byte chunk")) as f32),
            ),
        }

        // With a resident norm table (v3, f64 mode) the per-page norms are
        // never read: skip accumulating them on this hot path.
        let want_norms = self.norms.is_none();
        norms.clear();
        if want_norms {
            norms.reserve(last_col - first_col);
        }
        for j in first_col..last_col {
            let lo = (self.col_ptr[j] - base) as usize;
            let hi = (self.col_ptr[j + 1] - base) as usize;
            let corrupt = |message: String| EffresError::StoreFailure { column: j, message };
            if rows[lo..hi].first().is_some_and(|&i| (i as usize) < j) {
                return Err(corrupt(
                    "column has an entry above the diagonal; \
                     inverse columns must be supported on the diagonal suffix"
                        .to_string(),
                ));
            }
            if want_norms {
                // One fused pass: finiteness fold + the norm sum, accumulated
                // in index order over the *stored* values — the same order
                // and width the resident norm table uses, so the bits are
                // identical in both modes.
                let mut finite = true;
                let mut norm = 0.0f64;
                match self.value_mode {
                    ValueMode::F64 => {
                        for &v in &vals[lo..hi] {
                            finite &= v.is_finite();
                            norm += v * v;
                        }
                    }
                    ValueMode::F32 => {
                        for &v in &vals32[lo..hi] {
                            let w = f64::from(v);
                            finite &= w.is_finite();
                            norm += w * w;
                        }
                    }
                }
                if !finite {
                    return Err(corrupt("non-finite value".to_string()));
                }
                norms.push(norm);
            } else if !vals[lo..hi].iter().all(|v| v.is_finite()) {
                return Err(corrupt("non-finite value".to_string()));
            }
        }
        Ok(Page {
            first_col,
            base,
            rows,
            vals,
            vals32,
            norms,
            pool: Arc::downgrade(&self.buffers),
        })
    }

    /// Page id serving column `j`.
    pub fn page_of_column(&self, j: usize) -> usize {
        j / self.columns_per_page
    }

    /// File offset of the first stored value (`f64`, little-endian) of
    /// column `j` — the seam chaos tests aim [`FaultPlan::poison`] at: the
    /// two *high* bytes of a value (offset `+6`) overwritten with `0xFF`
    /// decode as NaN, which page validation rejects deterministically.
    ///
    /// # Panics
    ///
    /// Panics if `j >= self.order()`.
    pub fn column_value_byte_offset(&self, j: usize) -> u64 {
        assert!(
            j < self.order,
            "column {j} out of bounds for order {}",
            self.order
        );
        self.vals_offset + self.col_ptr[j] * 8
    }

    /// Pins a set of pages for the duration of a batch: pages already in the
    /// LRU are reused (a **hit** each), and the missing ones are fetched with
    /// **coalesced readahead** — maximal runs of adjacent missing pages
    /// become one large positioned read per block (rows and values), instead
    /// of two small reads per page — then decoded and validated page by
    /// page.
    ///
    /// Pinned pages are owned by the returned [`PinnedPages`], so eviction
    /// can never pull one out from under the queries draining it; they are
    /// *also* published to the LRU (the same `Arc`s — no bytes are
    /// duplicated), so a scheduled batch leaves the cache warm for whatever
    /// comes next. A batch may therefore transiently keep alive up to its
    /// pin budget *beyond* the pages the cache itself retains; schedulers
    /// size their pins out of the cache budget to keep the total bounded.
    ///
    /// # Errors
    ///
    /// Returns [`EffresError::StoreFailure`] on read failure or if any
    /// fetched page fails validation.
    ///
    /// # Panics
    ///
    /// Panics if any page id is out of range.
    pub fn pin_pages(&self, page_ids: &[usize]) -> Result<PinnedPages, EffresError> {
        let mut pids: Vec<usize> = page_ids.to_vec();
        pids.sort_unstable();
        pids.dedup();
        if let Some(&last) = pids.last() {
            assert!(
                last < self.page_count(),
                "page {last} out of bounds for {} pages",
                self.page_count()
            );
        }
        let mut pages = HashMap::with_capacity(pids.len());
        let mut missing: Vec<usize> = Vec::new();
        for &pid in &pids {
            match self.cache.get(pid) {
                Some(page) => {
                    self.hits.fetch_add(1, Ordering::Relaxed);
                    pages.insert(pid, page);
                }
                None => missing.push(pid),
            }
        }
        for (pid, page) in self.fetch_missing_runs(&missing)? {
            self.cache.insert(pid, Arc::clone(&page));
            pages.insert(pid, page);
        }
        Ok(self.pin_set(pages))
    }

    /// Degraded form of [`PagedColumnStore::pin_pages`] for partial-results
    /// batch execution: instead of failing the whole pin when any page is
    /// bad, returns whatever subset could be fetched plus a typed failure
    /// per page that could not. The happy path is exactly `pin_pages`
    /// (coalesced readahead, all pages pinned, empty failure list); only
    /// when that fails does it degrade to page-at-a-time fetches so one
    /// rotten page costs the batch that page's queries, not the batch.
    ///
    /// # Panics
    ///
    /// Panics if any page id is out of range.
    pub fn pin_pages_partial(
        &self,
        page_ids: &[usize],
    ) -> (PinnedPages, Vec<(usize, EffresError)>) {
        match self.pin_pages(page_ids) {
            Ok(pinned) => (pinned, Vec::new()),
            Err(_) => {
                let mut pids: Vec<usize> = page_ids.to_vec();
                pids.sort_unstable();
                pids.dedup();
                let mut pages = HashMap::with_capacity(pids.len());
                let mut failures = Vec::new();
                for pid in pids {
                    match self.page_by_id(pid) {
                        Ok(page) => {
                            pages.insert(pid, page);
                        }
                        Err(error) => failures.push((pid, error)),
                    }
                }
                (self.pin_set(pages), failures)
            }
        }
    }

    /// Wraps a fetched page set in a [`PinnedPages`], recording the pin in
    /// the live/high-water counters.
    fn pin_set(&self, pages: HashMap<usize, Arc<Page>>) -> PinnedPages {
        let count = pages.len() as u64;
        let now = self
            .pin_counters
            .current
            .fetch_add(count, Ordering::Relaxed)
            + count;
        self.pin_counters
            .high_water
            .fetch_max(now, Ordering::Relaxed);
        PinnedPages {
            pages,
            _guard: Some(PinGuard {
                counters: Arc::clone(&self.pin_counters),
                count,
            }),
        }
    }

    /// Pages currently pinned across all outstanding [`PinnedPages`] sets.
    pub fn pinned_pages_now(&self) -> usize {
        self.pin_counters.current.load(Ordering::Relaxed) as usize
    }

    /// The highest simultaneous pin count the store has ever seen. Admission
    /// control promises this never exceeds the cache budget even under
    /// concurrent batches; the over-pin regression test asserts exactly that.
    pub fn pinned_pages_high_water(&self) -> usize {
        self.pin_counters.high_water.load(Ordering::Relaxed) as usize
    }

    /// Spare decoded-page buffer sets currently parked in the recycling
    /// pool (test-only: asserts that eviction feeds decode).
    #[cfg(test)]
    fn spare_page_buffers(&self) -> usize {
        self.buffers
            .pages
            .lock()
            .expect("buffer pool poisoned")
            .len()
    }

    /// How many page decodes reused a recycled buffer set vs. allocated
    /// fresh, since open: `(recycled, fresh)`. A long-lived store should see
    /// `recycled` dominate once the cache has filled once — fresh decodes
    /// after warm-up mean the allocator (and, behind it, the kernel's page
    /// fault path) is back on the serving path.
    pub fn buffer_pool_stats(&self) -> (u64, u64) {
        (
            self.buffers.recycled.load(Ordering::Relaxed),
            self.buffers.fresh.load(Ordering::Relaxed),
        )
    }

    /// Fetches a sorted, deduplicated list of non-resident pages: maximal
    /// runs of adjacent ids coalesce into single positioned reads (counted
    /// as one miss per page), and the decoded pages come back keyed by id.
    fn fetch_missing_runs(
        &self,
        missing: &[usize],
    ) -> Result<HashMap<usize, Arc<Page>>, EffresError> {
        let mut scratch = self.buffers.take_scratch();
        let result = (|| {
            let mut fetched: HashMap<usize, Arc<Page>> = HashMap::with_capacity(missing.len());
            let mut run_start = 0;
            while run_start < missing.len() {
                let mut run_end = run_start + 1;
                while run_end < missing.len() && missing[run_end] == missing[run_end - 1] + 1 {
                    run_end += 1;
                }
                self.read_page_run(&missing[run_start..run_end], &mut fetched, &mut scratch)?;
                run_start = run_end;
            }
            self.misses
                .fetch_add(missing.len() as u64, Ordering::Relaxed);
            Ok(fetched)
        })();
        self.buffers.put_scratch(scratch);
        result
    }

    /// Reads one run of adjacent pages, splitting it into coalesced
    /// positioned reads of at most [`MAX_COALESCED_BYTES`] each so a large
    /// pinned block never demands a read buffer proportional to itself.
    /// `scratch` is reused across chunks — and across the runs of one bulk
    /// call — so a batch pays for its read buffers once, not per chunk.
    fn read_page_run(
        &self,
        run: &[usize],
        pages: &mut HashMap<usize, Arc<Page>>,
        scratch: &mut ReadScratch,
    ) -> Result<(), EffresError> {
        let page_bytes = |pid: usize| {
            let (first_col, last_col) = self.page_columns(pid);
            self.row_byte_range(first_col, last_col).1 + self.val_byte_range(first_col, last_col).1
        };
        let mut start = 0;
        while start < run.len() {
            let mut end = start + 1;
            let mut total = page_bytes(run[start]);
            while end < run.len() && total + page_bytes(run[end]) <= MAX_COALESCED_BYTES {
                total += page_bytes(run[end]);
                end += 1;
            }
            self.read_page_chunk(&run[start..end], pages, scratch)?;
            start = end;
        }
        Ok(())
    }

    /// Reads one bounded chunk of adjacent pages with two coalesced
    /// positioned reads and decodes each page out of the shared buffers.
    fn read_page_chunk(
        &self,
        run: &[usize],
        pages: &mut HashMap<usize, Arc<Page>>,
        scratch: &mut ReadScratch,
    ) -> Result<(), EffresError> {
        let (first_col, _) = self.page_columns(run[0]);
        let (_, last_col) = self.page_columns(*run.last().expect("non-empty run"));
        let failed = |message: String| EffresError::StoreFailure {
            column: first_col,
            message,
        };
        let (row_at, row_len) = self.row_byte_range(first_col, last_col);
        scratch.rows.resize(row_len, 0);
        self.read_block(&mut scratch.rows, row_at, 0)
            .map_err(|e| failed(format!("readahead of the row block: {e}")))?;
        let (val_at, val_len) = self.val_byte_range(first_col, last_col);
        scratch.vals.resize(val_len, 0);
        self.read_block(&mut scratch.vals, val_at, 0)
            .map_err(|e| failed(format!("readahead of the value block: {e}")))?;
        self.readahead_reads.fetch_add(2, Ordering::Relaxed);
        self.bytes_read
            .fetch_add((row_len + val_len) as u64, Ordering::Relaxed);
        for &pid in run {
            let (lo_col, hi_col) = self.page_columns(pid);
            let (page_row_at, page_row_len) = self.row_byte_range(lo_col, hi_col);
            let row_lo = (page_row_at - row_at) as usize;
            let (page_val_at, page_val_len) = self.val_byte_range(lo_col, hi_col);
            let val_lo = (page_val_at - val_at) as usize;
            let page = match self.decode_page_bytes(
                pid,
                &scratch.rows[row_lo..row_lo + page_row_len],
                &scratch.vals[val_lo..val_lo + page_val_len],
            ) {
                Ok(page) => page,
                // A page inside a coalesced read failed validation: re-fetch
                // just that page through the single-page path (which carries
                // its own fetch-validate-refetch cycle) instead of failing
                // the whole chunk on corruption that may heal.
                Err(_) => {
                    self.faulted_reads.fetch_add(1, Ordering::Relaxed);
                    self.retries.fetch_add(1, Ordering::Relaxed);
                    self.decode_page(pid)?
                }
            };
            pages.insert(pid, Arc::new(page));
        }
        Ok(())
    }

    /// Readahead hint: ensures the pages serving `columns` are resident in
    /// the LRU cache, fetching the missing ones with the same coalesced
    /// reads as [`PagedColumnStore::pin_pages`]. Unlike pinning, prefetched
    /// pages live in the cache and age out under its normal eviction —
    /// this is the fire-and-forget hint for callers that know which columns
    /// a batch is about to touch but keep serving through
    /// [`ColumnStore::with_column`].
    ///
    /// # Errors
    ///
    /// Returns [`EffresError::StoreFailure`] on read or validation failure.
    pub fn prefetch_columns(&self, columns: &[usize]) -> Result<(), EffresError> {
        let mut pids: Vec<usize> = columns
            .iter()
            .map(|&j| {
                assert!(j < self.order, "column {j} out of bounds");
                self.page_of_column(j)
            })
            .collect();
        pids.sort_unstable();
        pids.dedup();
        let missing: Vec<usize> = pids
            .into_iter()
            .filter(|&pid| {
                let resident = self.cache.get(pid).is_some();
                if resident {
                    self.hits.fetch_add(1, Ordering::Relaxed);
                }
                !resident
            })
            .collect();
        for (pid, page) in self.fetch_missing_runs(&missing)? {
            self.cache.insert(pid, page);
        }
        Ok(())
    }
}

/// A set of decoded pages held resident by a batch scheduler (see
/// [`PagedColumnStore::pin_pages`]): as long as the set is alive, its pages
/// cannot be evicted out from under the queries draining them.
#[derive(Debug, Default)]
pub struct PinnedPages {
    pages: HashMap<usize, Arc<Page>>,
    /// `None` only for the empty `Default` set, which pins nothing. Held
    /// purely for its `Drop` (decrements the store's live pin count).
    _guard: Option<PinGuard>,
}

impl PinnedPages {
    /// Number of pinned pages.
    pub fn len(&self) -> usize {
        self.pages.len()
    }

    /// Whether no pages are pinned.
    pub fn is_empty(&self) -> bool {
        self.pages.is_empty()
    }

    fn get(&self, pid: usize) -> Option<&Arc<Page>> {
        self.pages.get(&pid)
    }
}

/// A [`ColumnStore`] view combining a [`PagedColumnStore`] with up to two
/// [`PinnedPages`] sets (a batch scheduler's long-lived *block* pin and its
/// rolling *readahead window* pin). Columns on pinned pages are served
/// without touching the cache or its locks; anything else falls back to the
/// store's normal cached path. Pinned pages hold the same decoded bits the
/// cache would, so answers are bit-identical to unpinned serving.
#[derive(Debug, Clone, Copy)]
pub struct PinnedReader<'s> {
    store: &'s PagedColumnStore,
    primary: &'s PinnedPages,
    secondary: Option<&'s PinnedPages>,
}

impl<'s> PinnedReader<'s> {
    /// A view over `store` preferring `primary` (then `secondary`) pins.
    pub fn new(
        store: &'s PagedColumnStore,
        primary: &'s PinnedPages,
        secondary: Option<&'s PinnedPages>,
    ) -> Self {
        PinnedReader {
            store,
            primary,
            secondary,
        }
    }

    fn pinned_page(&self, pid: usize) -> Option<&Arc<Page>> {
        self.primary
            .get(pid)
            .or_else(|| self.secondary.and_then(|set| set.get(pid)))
    }
}

impl ColumnStore for PinnedReader<'_> {
    fn order(&self) -> usize {
        self.store.order
    }

    fn nnz(&self) -> usize {
        self.store.nnz
    }

    fn with_column<R>(
        &self,
        j: usize,
        f: impl FnOnce(ColumnView<'_>) -> R,
    ) -> Result<R, EffresError> {
        assert!(
            j < self.store.order,
            "column {j} out of bounds for order {}",
            self.store.order
        );
        match self.pinned_page(self.store.page_of_column(j)) {
            Some(page) => {
                let lo = (self.store.col_ptr[j] - page.base) as usize;
                let hi = (self.store.col_ptr[j + 1] - page.base) as usize;
                Ok(f(match self.store.value_mode {
                    ValueMode::F64 => ColumnView::from_slices(
                        self.store.order,
                        &page.rows[lo..hi],
                        &page.vals[lo..hi],
                    ),
                    ValueMode::F32 => ColumnView::from_slices_f32(
                        self.store.order,
                        &page.rows[lo..hi],
                        &page.vals32[lo..hi],
                    ),
                }))
            }
            None => self.store.with_column(j, f),
        }
    }

    fn column_norm_squared(&self, j: usize) -> Result<f64, EffresError> {
        assert!(
            j < self.store.order,
            "column {j} out of bounds for order {}",
            self.store.order
        );
        if let Some(table) = &self.store.norms {
            return Ok(table[j]);
        }
        match self.pinned_page(self.store.page_of_column(j)) {
            Some(page) => Ok(page.norms[j - page.first_col]),
            None => self.store.column_norm_squared(j),
        }
    }
}

impl ColumnStore for PagedColumnStore {
    fn order(&self) -> usize {
        self.order
    }

    fn nnz(&self) -> usize {
        self.nnz
    }

    fn with_column<R>(
        &self,
        j: usize,
        f: impl FnOnce(ColumnView<'_>) -> R,
    ) -> Result<R, EffresError> {
        assert!(
            j < self.order,
            "column {j} out of bounds for order {}",
            self.order
        );
        let page = self.page_for(j)?;
        let lo = (self.col_ptr[j] - page.base) as usize;
        let hi = (self.col_ptr[j + 1] - page.base) as usize;
        Ok(f(match self.value_mode {
            ValueMode::F64 => {
                ColumnView::from_slices(self.order, &page.rows[lo..hi], &page.vals[lo..hi])
            }
            ValueMode::F32 => {
                ColumnView::from_slices_f32(self.order, &page.rows[lo..hi], &page.vals32[lo..hi])
            }
        }))
    }

    fn column_norm_squared(&self, j: usize) -> Result<f64, EffresError> {
        assert!(
            j < self.order,
            "column {j} out of bounds for order {}",
            self.order
        );
        if let Some(table) = &self.norms {
            return Ok(table[j]);
        }
        let page = self.page_for(j)?;
        Ok(page.norms[j - page.first_col])
    }
}

/// Everything a query service needs from a v2 snapshot, opened for paged
/// serving: the out-of-core column [`store`](PagedSnapshot::store) plus the
/// resident metadata (permutation, build statistics, dataset labels) the
/// header carries.
#[derive(Debug)]
pub struct PagedSnapshot {
    /// The disk-backed column store.
    pub store: PagedColumnStore,
    /// Fill-reducing permutation (original node id → column of `Z̃`).
    pub permutation: Permutation,
    /// Build statistics recorded by the estimator that wrote the snapshot.
    pub stats: EstimatorStats,
    /// Pruning threshold the inverse was built with.
    pub epsilon: f64,
    /// Original dataset ids of the dense nodes, if the snapshot was written
    /// from an ingested dataset.
    pub labels: Option<Vec<u64>>,
    /// On-disk format version the snapshot was opened from (2 or 3).
    pub version: u32,
}

impl PagedSnapshot {
    /// Number of nodes served.
    pub fn node_count(&self) -> usize {
        self.stats.node_count
    }

    /// The persisted `‖z̃_j‖²` table (permuted domain), present for v3
    /// snapshots: `f64 × n` resident — proportional to the node count, like
    /// the rest of the cold-start state — so queries pay **zero** page
    /// traffic for the norm terms. `None` for v2 files, where norms come off
    /// the decoded pages instead (bit-identical either way). The single copy
    /// lives in the [`store`](PagedSnapshot::store).
    pub fn norms(&self) -> Option<&[f64]> {
        self.store.resident_norms()
    }
}

/// Opens a v2 or v3 snapshot for paged serving: reads and validates the
/// header, the permutation, the full `col_ptr` block (plus, for v3, the row
/// codec with its byte-offset table and the persisted norms block) and the
/// labels — never the rows/vals blocks, which stay on disk until queries
/// page them in.
///
/// Cold-start cost is proportional to the *node* count, not the nonzero
/// count: on large graphs the rows/vals blocks dominate the file and are
/// exactly what this skips.
///
/// # Errors
///
/// Returns [`IoError::Format`] for files that are not v2/v3 snapshots (v1
/// files name the re-encode path), have a non-monotone or out-of-span
/// `col_ptr`/`row_off`, or whose length disagrees with the layout the header
/// implies (truncation is caught here, before serving); [`IoError::Io`] on
/// read failure.
pub fn open_paged(
    path: impl AsRef<Path>,
    options: &PagedOptions,
) -> Result<PagedSnapshot, IoError> {
    open_paged_impl(path, options, None)
}

/// [`open_paged`] with a deterministic [`FaultPlan`] installed behind the
/// store's positioned-read seam (see [`crate::fault`]): every page and
/// readahead read consults the plan, so chaos tests exercise the real
/// retry/re-fetch/degrade machinery against seeded, reproducible faults.
/// Open-time reads (header, `col_ptr`, norms, labels) are *not* injected —
/// the plan models faults while serving, not a file that was never valid.
///
/// # Errors
///
/// As [`open_paged`].
pub fn open_paged_with_faults(
    path: impl AsRef<Path>,
    options: &PagedOptions,
    plan: FaultPlan,
) -> Result<PagedSnapshot, IoError> {
    open_paged_impl(path, options, Some(plan))
}

fn open_paged_impl(
    path: impl AsRef<Path>,
    options: &PagedOptions,
    faults: Option<FaultPlan>,
) -> Result<PagedSnapshot, IoError> {
    if options.columns_per_page == 0 {
        return Err(IoError::Format(
            "columns_per_page must be at least 1".into(),
        ));
    }
    let file = File::open(path)?;
    let mut reader = BufReader::new(&file);
    let mut magic = [0u8; 8];
    reader
        .read_exact(&mut magic)
        .map_err(|_| IoError::Format("truncated snapshot (no magic)".into()))?;
    if &magic != MAGIC {
        return Err(IoError::Format("not an effres snapshot (bad magic)".into()));
    }
    let mut version = [0u8; 4];
    reader
        .read_exact(&mut version)
        .map_err(|_| IoError::Format("truncated snapshot (no version)".into()))?;
    let version = match u32::from_le_bytes(version) {
        v @ (VERSION_V2 | VERSION_V3) => v,
        VERSION_V1 => {
            return Err(IoError::Format(
                "version 1 snapshots store per-column records and cannot be served paged; \
                 load and re-save the snapshot to re-encode it with bulk arena blocks"
                    .into(),
            ))
        }
        other => {
            return Err(IoError::Format(format!(
                "unsupported snapshot version {other} \
                 (paged serving reads {VERSION_V2} and {VERSION_V3})"
            )))
        }
    };

    let mut input = CrcReader::new(&mut reader);
    let PayloadHeader {
        n,
        epsilon,
        stats,
        inv_stats: _,
        permutation,
    } = read_payload_header(&mut input)?;
    ensure_u32_indexable(n)?;
    let nnz = input.take_u64()?;
    let col_ptr = read_col_ptr_block(&mut input, n, nnz)?;
    let overflow = || IoError::Format("arena block sizes overflow the file offset space".into());
    // v3 carries a row codec byte (and, for the varint codec, the encoded
    // byte count plus the per-column byte-offset table) between col_ptr and
    // the row block; v2 is always raw.
    let (codec, row_off, rows_bytes) = if version == VERSION_V3 {
        match input.take_u8()? {
            ROW_CODEC_RAW => (
                RowCodec::Raw,
                None,
                nnz.checked_mul(4).ok_or_else(overflow)?,
            ),
            ROW_CODEC_VARINT => {
                let rows_bytes = input.take_u64()?;
                let row_off = read_row_off_block(&mut input, &col_ptr, rows_bytes)?;
                (RowCodec::Varint, Some(row_off), rows_bytes)
            }
            other => return Err(IoError::Format(format!("unknown v3 row codec {other}"))),
        }
    } else {
        (
            RowCodec::Raw,
            None,
            nnz.checked_mul(4).ok_or_else(overflow)?,
        )
    };
    // 12 header bytes (magic + version) precede the crc-tracked payload.
    let rows_offset = 12 + input.consumed();
    drop(input);
    drop(reader);
    let file = PositionedFile::new(file);

    let vals_bytes = nnz.checked_mul(8).ok_or_else(overflow)?;
    let vals_offset = rows_offset.checked_add(rows_bytes).ok_or_else(overflow)?;
    let after_vals = vals_offset.checked_add(vals_bytes).ok_or_else(overflow)?;
    // v3: the persisted norms block sits between the values and the labels;
    // it is part of the resident cold-start state (∝ nodes, not nonzeros).
    let norms_bytes = if version == VERSION_V3 {
        (n as u64).checked_mul(8).ok_or_else(overflow)?
    } else {
        0
    };
    let labels_offset = after_vals.checked_add(norms_bytes).ok_or_else(overflow)?;
    let norms = if version == VERSION_V3 {
        let truncated =
            |_| IoError::Format("truncated snapshot (norms block out of range)".to_string());
        let mut bytes = vec![0u8; norms_bytes as usize];
        file.read_exact_at(&mut bytes, after_vals)
            .map_err(truncated)?;
        let norms: Vec<f64> = bytes
            .chunks_exact(8)
            .map(|b| f64::from_le_bytes(b.try_into().expect("8-byte chunk")))
            .collect();
        if !norms.iter().all(|v| v.is_finite() && *v >= 0.0) {
            return Err(IoError::Format(
                "non-finite or negative entry in the norms block".into(),
            ));
        }
        Some(norms)
    } else {
        None
    };

    let truncated =
        |_| IoError::Format("truncated snapshot (labels block out of range)".to_string());
    let mut flag = [0u8; 1];
    file.read_exact_at(&mut flag, labels_offset)
        .map_err(truncated)?;
    let labels = match flag[0] {
        0 => None,
        1 => {
            let mut bytes = vec![0u8; n * 8];
            file.read_exact_at(&mut bytes, labels_offset + 1)
                .map_err(truncated)?;
            Some(
                bytes
                    .chunks_exact(8)
                    .map(|b| u64::from_le_bytes(b.try_into().expect("8-byte chunk")))
                    .collect::<Vec<u64>>(),
            )
        }
        other => return Err(IoError::Format(format!("invalid labels flag {other}"))),
    };
    // The file must end exactly where the layout says it does (labels, then
    // the 4-byte crc trailer): a truncated or padded rows/vals region is
    // rejected here, before a query can page it in.
    let expected_len = labels_offset
        .checked_add(1 + if labels.is_some() { n as u64 * 8 } else { 0 } + 4)
        .ok_or_else(overflow)?;
    let actual_len = file.metadata()?.len();
    if actual_len != expected_len {
        return Err(IoError::Format(format!(
            "snapshot is {actual_len} bytes but the layout implies {expected_len}: \
             truncated or trailing garbage"
        )));
    }

    let cache = PageLru::new(options.cache_pages, options.cache_shards);
    let buffers = Arc::new(BufferPool::new(cache.capacity()));
    // A v3 file's persisted norm table was summed over the full-precision
    // values; in f32 mode the columns served are the *narrowed* values, so
    // the table is dropped (still validated above) and per-page norms are
    // recomputed from what is actually served — keeping paged f32 answers
    // bit-identical to a resident estimator narrowed with the same mode.
    let norms = match options.value_mode {
        ValueMode::F64 => norms,
        ValueMode::F32 => None,
    };
    let store = PagedColumnStore {
        file,
        order: n,
        nnz: nnz as usize,
        col_ptr,
        codec,
        row_off,
        norms: norms.map(Arc::new),
        rows_offset,
        vals_offset,
        value_mode: options.value_mode,
        columns_per_page: options.columns_per_page,
        cache,
        retry: options.retry,
        faults: faults.filter(|plan| !plan.is_empty()),
        hits: AtomicU64::new(0),
        misses: AtomicU64::new(0),
        bytes_read: AtomicU64::new(0),
        readahead_reads: AtomicU64::new(0),
        retries: AtomicU64::new(0),
        faulted_reads: AtomicU64::new(0),
        pages_scrubbed: AtomicU64::new(0),
        scrub_failures: AtomicU64::new(0),
        quarantined: AtomicU64::new(0),
        pin_counters: Arc::new(PinCounters::default()),
        buffers,
    };
    Ok(PagedSnapshot {
        store,
        permutation,
        stats,
        epsilon,
        labels,
        version,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::snapshot::{load_snapshot, write_snapshot};
    use effres::{EffectiveResistanceEstimator, EffresConfig};
    use effres_graph::generators;

    fn sample_estimator() -> EffectiveResistanceEstimator {
        let graph = generators::grid_2d(10, 10, 0.5, 2.0, 3).expect("generator");
        EffectiveResistanceEstimator::build(&graph, &EffresConfig::default()).expect("build")
    }

    fn temp_snapshot(name: &str, estimator: &EffectiveResistanceEstimator) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join("effres-paged-unit");
        std::fs::create_dir_all(&dir).expect("temp dir");
        let path = dir.join(name);
        let file = std::fs::File::create(&path).expect("create");
        let mut writer = std::io::BufWriter::new(file);
        write_snapshot(&mut writer, estimator, None).expect("write");
        use std::io::Write as _;
        writer.flush().expect("flush");
        path
    }

    #[test]
    fn paged_columns_match_the_resident_arena_bitwise() {
        let estimator = sample_estimator();
        let path = temp_snapshot("grid10.snap", &estimator);
        for options in [
            PagedOptions::default(),
            PagedOptions {
                columns_per_page: 1,
                cache_pages: 1,
                cache_shards: 1,
                ..PagedOptions::default()
            },
            PagedOptions {
                columns_per_page: 7,
                cache_pages: 3,
                cache_shards: 2,
                ..PagedOptions::default()
            },
        ] {
            let paged = open_paged(&path, &options).expect("open");
            let inverse = estimator.approximate_inverse();
            assert_eq!(ColumnStore::order(&paged.store), inverse.order());
            assert_eq!(ColumnStore::nnz(&paged.store), inverse.nnz());
            for j in 0..inverse.order() {
                let (rows, vals) = paged
                    .store
                    .with_column(j, |c| (c.indices().to_vec(), c.values().to_vec()))
                    .expect("fetch");
                assert_eq!(rows.as_slice(), inverse.column(j).indices(), "col {j}");
                let same = vals
                    .iter()
                    .zip(inverse.column(j).values())
                    .all(|(a, b)| a.to_bits() == b.to_bits());
                assert!(same, "col {j} values differ");
                assert_eq!(
                    paged.store.column_norm_squared(j).expect("norm").to_bits(),
                    inverse.column(j).norm2_squared().to_bits(),
                    "col {j} norm"
                );
            }
        }
    }

    #[test]
    fn open_reports_header_metadata_without_touching_column_blocks() {
        let estimator = sample_estimator();
        let path = temp_snapshot("grid10_meta.snap", &estimator);
        let paged = open_paged(&path, &PagedOptions::default()).expect("open");
        assert_eq!(paged.node_count(), estimator.node_count());
        assert_eq!(paged.stats, estimator.stats());
        assert_eq!(paged.epsilon, estimator.approximate_inverse().epsilon());
        assert_eq!(
            paged.permutation.new_to_old(),
            estimator.permutation().new_to_old()
        );
        assert!(paged.labels.is_none());
        // Nothing decoded yet.
        let s = paged.store.page_cache_stats();
        assert_eq!((s.hits, s.misses), (0, 0));
        assert!(paged.store.resident_bytes() < paged.store.footprint().total_bytes());
    }

    #[test]
    fn one_page_cache_churns_but_stays_correct() {
        let estimator = sample_estimator();
        let path = temp_snapshot("grid10_churn.snap", &estimator);
        let options = PagedOptions {
            columns_per_page: 4,
            cache_pages: 1,
            cache_shards: 1,
            ..PagedOptions::default()
        };
        let paged = open_paged(&path, &options).expect("open");
        assert_eq!(paged.store.cache_capacity_pages(), 1);
        let inverse = estimator.approximate_inverse();
        // Two full sweeps over the column *data* (norms alone would be
        // served from the v3 resident table without touching a page): the
        // second sweep misses again because each page evicts the previous
        // one.
        for _ in 0..2 {
            for j in 0..inverse.order() {
                assert_eq!(
                    paged
                        .store
                        .with_column(j, |c| c.norm2_squared())
                        .expect("fetch")
                        .to_bits(),
                    inverse.column(j).norm2_squared().to_bits()
                );
            }
        }
        let s = paged.store.page_cache_stats();
        assert_eq!(s.misses as usize, 2 * paged.store.page_count());
        // Within a page, consecutive columns hit.
        assert!(s.hits > 0);
        // Every eviction parked its buffers for the next decode to reuse:
        // a churning cache recycles instead of hammering the allocator. One
        // page is still resident and one spare set cycles through the pool.
        assert_eq!(paged.store.spare_page_buffers(), 1);
    }

    #[test]
    fn v2_files_still_serve_paged_and_report_no_norms() {
        let estimator = sample_estimator();
        let dir = std::env::temp_dir().join("effres-paged-unit");
        std::fs::create_dir_all(&dir).expect("temp dir");
        let path = dir.join("grid10_v2.snap");
        let file = std::fs::File::create(&path).expect("create");
        let mut writer = std::io::BufWriter::new(file);
        crate::snapshot::write_snapshot_v2(&mut writer, &estimator, None).expect("write v2");
        use std::io::Write as _;
        writer.flush().expect("flush");
        let paged = open_paged(&path, &PagedOptions::default()).expect("open");
        assert_eq!(paged.store.row_codec(), RowCodec::Raw);
        assert!(paged.norms().is_none());
        let inverse = estimator.approximate_inverse();
        for j in 0..inverse.order() {
            assert_eq!(
                paged.store.column_norm_squared(j).expect("norm").to_bits(),
                inverse.column(j).norm2_squared().to_bits(),
                "col {j}"
            );
        }
    }

    #[test]
    fn v3_opens_with_resident_norms_and_the_negotiated_codec() {
        let estimator = sample_estimator();
        let path = temp_snapshot("grid10_v3.snap", &estimator);
        let paged = open_paged(&path, &PagedOptions::default()).expect("open");
        // The 100-node grid compresses: varint wins the negotiation.
        assert_eq!(paged.store.row_codec(), RowCodec::Varint);
        let norms = paged.norms().expect("v3 persists norms");
        let inverse = estimator.approximate_inverse();
        let recomputed = inverse.column_norms_squared();
        assert_eq!(norms.len(), recomputed.len());
        assert!(norms
            .iter()
            .zip(&recomputed)
            .all(|(a, b)| a.to_bits() == b.to_bits()));
        // The varint footprint reports the encoded (smaller) row block.
        assert!(paged.store.footprint().rows_bytes < inverse.nnz() * 4);
        // Norms were served without touching a single page.
        let s = paged.store.page_cache_stats();
        assert_eq!((s.hits, s.misses, s.bytes_read), (0, 0, 0));
    }

    #[test]
    fn pinned_pages_serve_bit_identical_columns_via_coalesced_reads() {
        let estimator = sample_estimator();
        let path = temp_snapshot("grid10_pin.snap", &estimator);
        let options = PagedOptions {
            columns_per_page: 8,
            cache_pages: 2,
            cache_shards: 1,
            ..PagedOptions::default()
        };
        let paged = open_paged(&path, &options).expect("open");
        let inverse = estimator.approximate_inverse();
        let pages = paged.store.page_count();
        assert!(pages > 4, "want several pages, got {pages}");

        // Pin an adjacent run plus an isolated page: the run coalesces into
        // one (rows, vals) read pair, the isolated page into another.
        let pinned = paged.store.pin_pages(&[0, 1, 2, pages - 1]).expect("pin");
        assert_eq!(pinned.len(), 4);
        let s = paged.store.take_page_cache_stats();
        assert_eq!(s.misses, 4);
        assert_eq!(s.readahead_reads, 4, "two coalesced runs x (rows + vals)");
        assert!(s.bytes_read > 0);

        // Pinned columns serve without the cache; unpinned ones fall back.
        let empty = PinnedPages::default();
        let reader = PinnedReader::new(&paged.store, &pinned, Some(&empty));
        for j in 0..inverse.order() {
            let (rows, vals) = reader
                .with_column(j, |c| (c.indices().to_vec(), c.values().to_vec()))
                .expect("fetch");
            assert_eq!(rows.as_slice(), inverse.column(j).indices(), "col {j}");
            assert!(vals
                .iter()
                .zip(inverse.column(j).values())
                .all(|(a, b)| a.to_bits() == b.to_bits()));
            assert_eq!(
                reader.column_norm_squared(j).expect("norm").to_bits(),
                inverse.column(j).norm2_squared().to_bits()
            );
        }
        // Pinned columns are served off the pin (no lock traffic); the
        // unpinned middle pages fall back to the cache path and miss.
        let s = paged.store.take_page_cache_stats();
        assert!(s.misses > 0);
        // Counters were reset by the take above.
        let cleared = paged.store.page_cache_stats();
        assert_eq!(cleared, PageCacheStats::default());
    }

    #[test]
    fn prefetch_columns_warms_the_cache_with_coalesced_reads() {
        let estimator = sample_estimator();
        let path = temp_snapshot("grid10_prefetch.snap", &estimator);
        let options = PagedOptions {
            columns_per_page: 16,
            cache_pages: 64,
            cache_shards: 1,
            ..PagedOptions::default()
        };
        let paged = open_paged(&path, &options).expect("open");
        let all: Vec<usize> = (0..paged.store.order).collect();
        paged.store.prefetch_columns(&all).expect("prefetch");
        let warm = paged.store.take_page_cache_stats();
        assert_eq!(warm.misses as usize, paged.store.page_count());
        assert_eq!(warm.readahead_reads, 2, "one run covering every page");
        // Every later column access is a hit (norms alone would bypass the
        // pages entirely via the v3 resident table).
        let inverse = estimator.approximate_inverse();
        for j in 0..inverse.order() {
            assert_eq!(
                paged
                    .store
                    .with_column(j, |c| c.norm2_squared())
                    .expect("fetch")
                    .to_bits(),
                inverse.column(j).norm2_squared().to_bits()
            );
        }
        let after = paged.store.page_cache_stats();
        assert_eq!(after.misses, 0);
        assert!(after.hits > 0);
        // Prefetching again is all hits, no reads.
        paged.store.prefetch_columns(&all).expect("prefetch again");
        assert_eq!(paged.store.page_cache_stats().misses, 0);
    }

    #[test]
    fn v1_snapshots_are_rejected_with_a_reencode_hint() {
        let estimator = sample_estimator();
        let dir = std::env::temp_dir().join("effres-paged-unit");
        std::fs::create_dir_all(&dir).expect("temp dir");
        let path = dir.join("grid10_v1.snap");
        let file = std::fs::File::create(&path).expect("create");
        let mut writer = std::io::BufWriter::new(file);
        crate::snapshot::write_snapshot_v1(&mut writer, &estimator, None).expect("write v1");
        use std::io::Write as _;
        writer.flush().expect("flush");
        let err = open_paged(&path, &PagedOptions::default()).expect_err("v1 must be rejected");
        assert!(err.to_string().contains("version 1"), "{err}");
        // The resident loader still reads it fine.
        assert!(load_snapshot(&path).is_ok());
    }

    #[test]
    fn truncated_files_are_rejected_at_open() {
        let estimator = sample_estimator();
        let path = temp_snapshot("grid10_trunc.snap", &estimator);
        let bytes = std::fs::read(&path).expect("read");
        let cut = bytes.len() - 9; // into the value block + crc
        std::fs::write(&path, &bytes[..cut]).expect("rewrite");
        assert!(matches!(
            open_paged(&path, &PagedOptions::default()),
            Err(IoError::Format(_))
        ));
    }
}
