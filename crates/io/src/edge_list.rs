//! SNAP-style whitespace edge lists.
//!
//! The format is one edge per line — `u v` or `u v weight` — with `#` or `%`
//! comment lines, as published by the SNAP collection and most graph
//! repositories. Node ids are arbitrary `u64` values (SNAP files routinely
//! skip ids); the reader remaps them to a dense `0..n` range in first-seen
//! order and records the original ids in [`Dataset::labels`].
//!
//! [`Dataset::labels`]: crate::dataset::Dataset

use crate::dataset::{finalize, Dataset, IngestOptions, IngestStats};
use crate::error::IoError;
use effres_graph::builder::GraphBuilder;
use effres_graph::Graph;
use std::collections::HashMap;
use std::io::{BufRead, Write};

/// Parses an edge list from a line reader.
///
/// # Errors
///
/// Returns [`IoError::Parse`] (with the offending line number) for malformed
/// records, and [`IoError::Graph`] for invalid weights.
pub fn read_edge_list<R: BufRead>(reader: R, options: &IngestOptions) -> Result<Dataset, IoError> {
    let mut builder = GraphBuilder::new(options.merge);
    let mut ids: HashMap<u64, usize> = HashMap::new();
    let mut labels: Vec<u64> = Vec::new();
    let mut stats = IngestStats::default();

    for (index, line) in reader.lines().enumerate() {
        let line = line?;
        let number = index + 1;
        stats.lines = number;
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('#') || trimmed.starts_with('%') {
            stats.comments += 1;
            continue;
        }
        let mut tokens = trimmed.split_whitespace();
        let (u, v) = match (tokens.next(), tokens.next()) {
            (Some(a), Some(b)) => (parse_id(a, number)?, parse_id(b, number)?),
            _ => {
                return Err(IoError::Parse {
                    line: number,
                    message: format!("expected `u v [weight]`, found `{trimmed}`"),
                })
            }
        };
        let weight = match tokens.next() {
            None => options.default_weight,
            Some(w) => w.parse::<f64>().map_err(|_| IoError::Parse {
                line: number,
                message: format!("invalid weight `{w}`"),
            })?,
        };
        if tokens.next().is_some() {
            return Err(IoError::Parse {
                line: number,
                message: format!("too many columns in `{trimmed}`"),
            });
        }
        let du = dense_id(&mut ids, &mut labels, u);
        let dv = dense_id(&mut ids, &mut labels, v);
        builder.add_edge(du, dv, weight).map_err(|e| match e {
            effres_graph::GraphError::InvalidWeight { weight } => IoError::Parse {
                line: number,
                message: format!("weight {weight} is not a positive finite number"),
            },
            other => IoError::Graph(other),
        })?;
    }
    finalize(builder, labels, stats, options)
}

fn parse_id(token: &str, line: usize) -> Result<u64, IoError> {
    token.parse::<u64>().map_err(|_| IoError::Parse {
        line,
        message: format!("invalid node id `{token}`"),
    })
}

fn dense_id(ids: &mut HashMap<u64, usize>, labels: &mut Vec<u64>, raw: u64) -> usize {
    *ids.entry(raw).or_insert_with(|| {
        labels.push(raw);
        labels.len() - 1
    })
}

/// Writes a graph as an edge list, one `u v weight` line per edge. When
/// `labels` is given, nodes are written under their original file ids;
/// otherwise the dense `0..n` ids are used.
///
/// # Errors
///
/// Returns [`IoError::Io`] on write failure, and [`IoError::Format`] if
/// `labels` is shorter than the node count.
pub fn write_edge_list<W: Write>(
    writer: &mut W,
    graph: &Graph,
    labels: Option<&[u64]>,
) -> Result<(), IoError> {
    if let Some(labels) = labels {
        if labels.len() < graph.node_count() {
            return Err(IoError::Format(format!(
                "label table has {} entries for {} nodes",
                labels.len(),
                graph.node_count()
            )));
        }
    }
    let id = |node: usize| -> u64 {
        match labels {
            Some(labels) => labels[node],
            None => node as u64,
        }
    };
    writeln!(
        writer,
        "# effres edge list: {} nodes, {} edges",
        graph.node_count(),
        graph.edge_count()
    )?;
    for (_, edge) in graph.edges() {
        writeln!(writer, "{} {} {}", id(edge.u), id(edge.v), edge.weight)?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use effres_graph::builder::MergePolicy;
    use std::io::Cursor;

    fn read(text: &str, options: &IngestOptions) -> Dataset {
        read_edge_list(Cursor::new(text.to_string()), options).expect("parse")
    }

    #[test]
    fn comments_blanks_and_weights() {
        let ds = read(
            "# SNAP-style header\n% another comment\n\n0 1\n1 2 2.5\n",
            &IngestOptions::default(),
        );
        assert_eq!(ds.stats.comments, 3);
        assert_eq!(ds.stats.lines, 5);
        assert_eq!(ds.graph.edge_count(), 2);
        assert_eq!(ds.graph.edge(1).weight, 2.5);
    }

    #[test]
    fn sparse_ids_are_remapped_densely() {
        let ds = read("1000000 5\n5 99\n", &IngestOptions::default());
        assert_eq!(ds.graph.node_count(), 3);
        // First-seen order before component filtering: 1000000, 5, 99.
        let mut labels = ds.labels.clone();
        labels.sort_unstable();
        assert_eq!(labels, vec![5, 99, 1_000_000]);
    }

    #[test]
    fn duplicates_reversed_edges_and_self_loops() {
        let ds = read("0 1\n1 0\n0 1\n3 3\n1 3\n", &IngestOptions::default());
        assert_eq!(ds.stats.duplicates, 2);
        assert_eq!(ds.stats.self_loops, 1);
        assert_eq!(ds.graph.edge_count(), 2);
    }

    #[test]
    fn sum_policy_accumulates_parallel_edges() {
        let options = IngestOptions {
            merge: MergePolicy::Sum,
            ..IngestOptions::default()
        };
        let ds = read("0 1 1.0\n1 0 2.0\n", &options);
        assert_eq!(ds.graph.edge(0).weight, 3.0);
    }

    #[test]
    fn malformed_lines_report_their_number() {
        let err = read_edge_list(Cursor::new("0 1\nnot numbers\n"), &IngestOptions::default())
            .expect_err("must fail");
        assert!(matches!(err, IoError::Parse { line: 2, .. }), "{err}");
        let err =
            read_edge_list(Cursor::new("0\n"), &IngestOptions::default()).expect_err("must fail");
        assert!(matches!(err, IoError::Parse { line: 1, .. }), "{err}");
        let err = read_edge_list(Cursor::new("0 1 2 3\n"), &IngestOptions::default())
            .expect_err("must fail");
        assert!(matches!(err, IoError::Parse { line: 1, .. }), "{err}");
        let err = read_edge_list(Cursor::new("0 1 -4.0\n"), &IngestOptions::default())
            .expect_err("must fail");
        assert!(matches!(err, IoError::Parse { line: 1, .. }), "{err}");
    }

    #[test]
    fn write_then_read_is_identity() {
        let ds = read("0 1 1.5\n1 2 0.5\n2 0 2.0\n", &IngestOptions::default());
        let mut bytes = Vec::new();
        write_edge_list(&mut bytes, &ds.graph, Some(&ds.labels)).expect("write");
        let back = read_edge_list(Cursor::new(bytes), &IngestOptions::default()).expect("reparse");
        assert_eq!(back.graph, ds.graph);
        assert_eq!(back.labels, ds.labels);
    }
}
