//! Compact binary snapshots of prebuilt estimators.
//!
//! Building the approximate inverse is the expensive part of the pipeline —
//! minutes for multi-million-node graphs — while queries are microseconds.
//! A snapshot persists everything the query path needs (the pruned columns
//! of `Z̃`, the fill-reducing permutation, the build statistics and, when the
//! graph came from a dataset file, the original node labels) so a service
//! can restart without refactorizing.
//!
//! ## Format version 3 (current, all little-endian)
//!
//! Version 3 extends the v2 bulk-arena layout with two blocks aimed at the
//! out-of-core serving path:
//!
//! * a **row codec**: the row block is written either raw (`u32 × nnz`,
//!   codec 0, exactly the v2 encoding) or **delta-varint** (codec 1): per
//!   column, the first row index as a LEB128 varint followed by the gaps to
//!   each subsequent index (strictly increasing rows ⇒ gaps ≥ 1). The gaps
//!   of a sparse lower-triangular column are small, so most entries fit one
//!   byte instead of four — the disk-bound page-miss path reads ~3–4× fewer
//!   row bytes. Codec 1 additionally stores a per-column *byte*-offset table
//!   (`row_off`, `u64 × (n + 1)`) so a paged reader can still locate any
//!   column range with one positioned read. The writer auto-negotiates:
//!   codec 1 is chosen iff varint bytes + offset table < raw bytes, and
//!   decoding is bit-identical either way;
//! * a **per-column squared-norms block** (`f64 × n`, summed in index order
//!   at write time): both the resident loader and the paged opener load the
//!   `‖z̃_j‖²` table from it instead of recomputing — the resident load skips
//!   a full arena sweep, and paged queries pay zero extra page traffic for
//!   the norm terms.
//!
//! ```text
//! magic     8 bytes  "EFRSNAP\n"
//! version   u32      3
//! payload   (crc-checked):
//!   node_count u64, epsilon f64,
//!   estimator stats (factor_nnz u64, inverse_nnz u64, inverse_nnz_ratio f64,
//!                    max_depth u64, ichol_dropped u64, pruned_entries u64),
//!   inverse build counters (pruned_entries u64, small_columns_kept u64),
//!   permutation new→old (u32 × n),
//!   nnz u64,
//!   col_ptr block  u64 × (n + 1),
//!   row codec u8 (0 = raw, 1 = delta-varint),
//!   [codec 1 only] rows_bytes u64, row_off block u64 × (n + 1),
//!   rows block     u32 × nnz (codec 0) | rows_bytes varint bytes (codec 1),
//!   vals block     f64 × nnz,
//!   norms block    f64 × n,
//!   labels flag u8 (0|1), then labels u64 × n if 1
//! crc32     u32      of the payload bytes
//! ```
//!
//! ## Format version 2 (legacy, read support kept)
//!
//! Version 2 serializes the estimator's flat CSC arena *as the three bulk
//! buffers it already is in memory* — one `col_ptr` block, one raw `u32` row
//! block, one `f64` value block — with the same header and trailer as v3 but
//! no codec byte and no norms block. [`write_snapshot_v2`] keeps the writer
//! available for compatibility tests and fixtures.
//!
//! ## Format version 1 (legacy, read support kept)
//!
//! Version 1 stored the inverse as `n` per-column records (`nnz u32`,
//! `indices u32 × nnz`, `values f64 × nnz`) between the permutation and the
//! labels, with the same header, stats and trailing crc32.
//! [`read_snapshot`] auto-detects the version from the header and keeps
//! loading v1 and v2 files bit-exactly; compatibility is pinned by the
//! committed fixtures in `tests/snapshot_migration.rs`. [`write_snapshot_v1`]
//! keeps the legacy writer available for compatibility tests.

use crate::error::IoError;
use crate::gzip::Crc32;
use effres::approx_inverse::{ApproxInverseStats, SparseApproximateInverse};
use effres::estimator::EstimatorStats;
use effres::EffectiveResistanceEstimator;
use effres_sparse::Permutation;
use std::io::{BufReader, BufWriter, Read, Write};
use std::path::Path;

pub(crate) const MAGIC: &[u8; 8] = b"EFRSNAP\n";
pub(crate) const VERSION_V1: u32 = 1;
pub(crate) const VERSION_V2: u32 = 2;
pub(crate) const VERSION_V3: u32 = 3;

/// v3 row-codec ids (one byte on disk).
pub(crate) const ROW_CODEC_RAW: u8 = 0;
pub(crate) const ROW_CODEC_VARINT: u8 = 1;

/// Bytes of the LEB128 varint encoding of `v` (1–5 for a `u32`).
pub(crate) fn varint_len(v: u32) -> u64 {
    let bits = 32 - v.leading_zeros().min(31);
    u64::from(bits.div_ceil(7).max(1))
}

/// Appends the LEB128 varint encoding of `v` to `out`.
pub(crate) fn push_varint(out: &mut Vec<u8>, mut v: u32) {
    loop {
        let byte = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            out.push(byte);
            break;
        }
        out.push(byte | 0x80);
    }
}

/// Total varint bytes of one column's delta encoding (first index raw, then
/// the gaps) — used by the writer to size the `row_off` table and negotiate
/// the codec without encoding anything.
pub(crate) fn varint_column_len(rows: &[u32]) -> u64 {
    let mut bytes = 0u64;
    let mut prev = 0u32;
    for (k, &row) in rows.iter().enumerate() {
        bytes += if k == 0 {
            varint_len(row)
        } else {
            varint_len(row - prev)
        };
        prev = row;
    }
    bytes
}

/// Appends one column's delta-varint encoding to `out` (the inverse of
/// [`decode_varint_column`]).
pub(crate) fn encode_varint_column(out: &mut Vec<u8>, rows: &[u32]) {
    let mut prev = 0u32;
    for (k, &row) in rows.iter().enumerate() {
        push_varint(out, if k == 0 { row } else { row - prev });
        prev = row;
    }
}

/// Decodes one column's delta-varint row encoding: exactly `count` strictly
/// increasing indices in `0..order`, consuming exactly `bytes`. Every
/// malformation — a truncated or over-long varint, a zero gap (rows not
/// strictly increasing), an out-of-range index, trailing garbage — is a
/// typed error, so both the resident loader and the paged page decoder can
/// treat the block as untrusted.
pub(crate) fn decode_varint_column(
    bytes: &[u8],
    count: usize,
    order: usize,
    out: &mut Vec<u32>,
) -> Result<(), String> {
    // This is the hot loop of the paged miss path: a decode-bound batch
    // spends most of its time here, so the dominant case — a one-byte
    // varint, since the gaps of a sparse column are small — takes a single
    // bounds check and no shifting; multi-byte and malformed encodings fall
    // through to the cold loop.
    #[cold]
    fn long_varint(bytes: &[u8], at: &mut usize) -> Result<u64, String> {
        let mut value = 0u64;
        let mut shift = 0u32;
        loop {
            let Some(&byte) = bytes.get(*at) else {
                return Err("varint row encoding is truncated".to_string());
            };
            *at += 1;
            value |= u64::from(byte & 0x7f) << shift;
            if byte & 0x80 == 0 {
                return Ok(value);
            }
            shift += 7;
            if shift > 28 {
                return Err("varint row encoding overflows u32".to_string());
            }
        }
    }

    let len = bytes.len();
    let bound = order as u64;
    let mut at = 0usize;
    let mut prev = 0u64;
    out.reserve(count);
    for k in 0..count {
        let value = if at < len && bytes[at] < 0x80 {
            at += 1;
            u64::from(bytes[at - 1])
        } else {
            long_varint(bytes, &mut at)?
        };
        let row = if k == 0 {
            value
        } else {
            if value == 0 {
                return Err("row indices are not strictly increasing (zero gap)".to_string());
            }
            prev + value
        };
        if row >= bound {
            return Err(format!("row index {row} out of range for {order} nodes"));
        }
        prev = row;
        out.push(row as u32);
    }
    if at != len {
        return Err(format!("column encoding has {} trailing byte(s)", len - at));
    }
    Ok(())
}

/// Entries per chunk when streaming bulk blocks: bounds the scratch buffer
/// (and any allocation driven by an untrusted header) to a few hundred KiB.
const BLOCK_CHUNK: usize = 1 << 15;

/// Preallocation cap for length-prefixed vectors: a corrupt header must
/// produce a clean format error (via a failed read), not a multi-gigabyte
/// allocation request that aborts the process.
const PREALLOC_CAP: usize = 1 << 20;

/// A persisted estimator plus the optional dataset node labels.
#[derive(Debug, Clone)]
pub struct Snapshot {
    /// The reassembled query engine core.
    pub estimator: EffectiveResistanceEstimator,
    /// Original dataset ids of the estimator's dense nodes, if the snapshot
    /// was written from an ingested dataset.
    pub labels: Option<Vec<u64>>,
    /// On-disk format version the snapshot was read from (1, 2 or 3), or
    /// `None` for estimators built in memory that never touched a file.
    /// Surfaced so `effres-cli stats` and the server's stats reply can name
    /// the format a deployment is actually serving.
    pub version: Option<u32>,
}

struct CrcWriter<'a, W: Write> {
    inner: &'a mut W,
    crc: Crc32,
    /// Reusable little-endian staging buffer for bulk blocks.
    chunk: Vec<u8>,
}

impl<W: Write> CrcWriter<'_, W> {
    fn new(inner: &mut W) -> CrcWriter<'_, W> {
        CrcWriter {
            inner,
            crc: Crc32::new(),
            chunk: Vec::new(),
        }
    }

    fn put(&mut self, bytes: &[u8]) -> Result<(), IoError> {
        self.crc.update(bytes);
        self.inner.write_all(bytes)?;
        Ok(())
    }

    fn put_u32(&mut self, v: u32) -> Result<(), IoError> {
        self.put(&v.to_le_bytes())
    }

    fn put_u64(&mut self, v: u64) -> Result<(), IoError> {
        self.put(&v.to_le_bytes())
    }

    fn put_f64(&mut self, v: f64) -> Result<(), IoError> {
        self.put(&v.to_le_bytes())
    }

    /// Writes one bulk block of fixed-width items, staging `BLOCK_CHUNK`
    /// items at a time so the crc and the writer both see large slices.
    fn put_block<T: Copy, const W2: usize>(
        &mut self,
        items: &[T],
        encode: impl Fn(T) -> [u8; W2],
    ) -> Result<(), IoError> {
        for chunk in items.chunks(BLOCK_CHUNK) {
            self.chunk.clear();
            self.chunk.reserve(chunk.len() * W2);
            for &item in chunk {
                self.chunk.extend_from_slice(&encode(item));
            }
            let staged = std::mem::take(&mut self.chunk);
            self.put(&staged)?;
            self.chunk = staged;
        }
        Ok(())
    }
}

pub(crate) struct CrcReader<'a, R: Read> {
    inner: &'a mut R,
    crc: Crc32,
    /// Payload bytes consumed so far (the paged opener uses this to locate
    /// the bulk blocks within the file without duplicating layout math).
    consumed: u64,
    /// Reusable staging buffer for bulk blocks.
    chunk: Vec<u8>,
}

impl<R: Read> CrcReader<'_, R> {
    pub(crate) fn new(inner: &mut R) -> CrcReader<'_, R> {
        CrcReader {
            inner,
            crc: Crc32::new(),
            consumed: 0,
            chunk: Vec::new(),
        }
    }

    /// Payload bytes consumed since construction (excludes the 12 magic +
    /// version bytes, which are read before the crc region starts).
    pub(crate) fn consumed(&self) -> u64 {
        self.consumed
    }

    fn fill(&mut self, buf: &mut [u8]) -> Result<(), IoError> {
        self.inner.read_exact(buf).map_err(|e| {
            if e.kind() == std::io::ErrorKind::UnexpectedEof {
                IoError::Format("truncated snapshot".into())
            } else {
                IoError::Io(e)
            }
        })?;
        self.crc.update(buf);
        self.consumed += buf.len() as u64;
        Ok(())
    }

    fn take<const N: usize>(&mut self) -> Result<[u8; N], IoError> {
        let mut buf = [0u8; N];
        self.fill(&mut buf)?;
        Ok(buf)
    }

    pub(crate) fn take_u8(&mut self) -> Result<u8, IoError> {
        Ok(self.take::<1>()?[0])
    }

    fn take_u32(&mut self) -> Result<u32, IoError> {
        Ok(u32::from_le_bytes(self.take::<4>()?))
    }

    pub(crate) fn take_u64(&mut self) -> Result<u64, IoError> {
        Ok(u64::from_le_bytes(self.take::<8>()?))
    }

    fn take_f64(&mut self) -> Result<f64, IoError> {
        Ok(f64::from_le_bytes(self.take::<8>()?))
    }

    /// Reads one bulk block of `count` fixed-width items, appending each
    /// decoded item via `push`. Reads in `BLOCK_CHUNK`-item chunks so a
    /// hostile count costs at most one chunk of scratch before the stream
    /// runs dry.
    fn take_block<const W2: usize>(
        &mut self,
        count: usize,
        mut push: impl FnMut([u8; W2]) -> Result<(), IoError>,
    ) -> Result<(), IoError> {
        let mut remaining = count;
        while remaining > 0 {
            let take = remaining.min(BLOCK_CHUNK);
            self.chunk.resize(take * W2, 0);
            let mut staged = std::mem::take(&mut self.chunk);
            let result = self.fill(&mut staged);
            self.chunk = staged;
            result?;
            for item in self.chunk.chunks_exact(W2) {
                push(item.try_into().expect("chunk is W2-aligned"))?;
            }
            remaining -= take;
        }
        Ok(())
    }
}

/// Serializes an estimator (and optional node labels) to `writer` in the
/// current format (version 3): the arena's bulk buffers behind a checksummed
/// header, with the row block auto-negotiated between the raw and
/// delta-varint codecs and the per-column squared norms persisted so loads
/// (resident and paged) never recompute them.
///
/// # Errors
///
/// Returns [`IoError::Io`] on write failure and [`IoError::Format`] if the
/// estimator is too large for the u32 index space or `labels` has the wrong
/// length.
pub fn write_snapshot<W: Write>(
    writer: &mut W,
    estimator: &EffectiveResistanceEstimator,
    labels: Option<&[u64]>,
) -> Result<(), IoError> {
    let n = validate_for_write(estimator, labels)?;
    writer.write_all(MAGIC)?;
    writer.write_all(&VERSION_V3.to_le_bytes())?;
    let mut out = CrcWriter::new(writer);
    write_header_fields(&mut out, estimator, n)?;
    let inverse = estimator.approximate_inverse();
    let col_ptr = inverse.col_ptr();
    let rows = inverse.arena_rows();
    out.put_u64(rows.len() as u64)?;
    out.put_block(col_ptr, |p: usize| (p as u64).to_le_bytes())?;

    // Codec negotiation: per-column byte offsets of the delta-varint
    // encoding, against the raw u32 block. The offset table itself counts
    // against the varint side — tiny or gap-dense graphs keep the raw codec.
    let mut row_off: Vec<u64> = Vec::with_capacity(n + 1);
    row_off.push(0);
    let mut varint_bytes = 0u64;
    for j in 0..n {
        varint_bytes += varint_column_len(&rows[col_ptr[j]..col_ptr[j + 1]]);
        row_off.push(varint_bytes);
    }
    let raw_bytes = rows.len() as u64 * 4;
    if varint_bytes + (n as u64 + 1) * 8 < raw_bytes {
        out.put(&[ROW_CODEC_VARINT])?;
        out.put_u64(varint_bytes)?;
        out.put_block(&row_off, |p: u64| p.to_le_bytes())?;
        // Stream the encoded rows in bounded chunks, column-aligned.
        let mut buf: Vec<u8> = Vec::with_capacity(BLOCK_CHUNK * 5);
        for j in 0..n {
            encode_varint_column(&mut buf, &rows[col_ptr[j]..col_ptr[j + 1]]);
            if buf.len() >= BLOCK_CHUNK * 4 {
                out.put(&buf)?;
                buf.clear();
            }
        }
        out.put(&buf)?;
    } else {
        out.put(&[ROW_CODEC_RAW])?;
        out.put_block(rows, |r: u32| r.to_le_bytes())?;
    }

    out.put_block(inverse.arena_values(), f64::to_le_bytes)?;
    // The norms block: summed in index order, exactly what a resident sweep
    // would compute — loaded tables are bit-identical to recomputed ones.
    // (This also primes the estimator's own memoized table as a side effect.)
    let norms = estimator.column_norms_shared();
    out.put_block(&norms, f64::to_le_bytes)?;
    write_labels(&mut out, labels)?;
    let crc = out.crc.finish();
    writer.write_all(&crc.to_le_bytes())?;
    Ok(())
}

/// Serializes an estimator in the version-2 format (bulk arena blocks, raw
/// row codec, no norms block).
///
/// Kept so compatibility tests can produce fresh v2 bytes (and fixtures can
/// be regenerated); new snapshots should use [`write_snapshot`].
///
/// # Errors
///
/// See [`write_snapshot`].
pub fn write_snapshot_v2<W: Write>(
    writer: &mut W,
    estimator: &EffectiveResistanceEstimator,
    labels: Option<&[u64]>,
) -> Result<(), IoError> {
    let n = validate_for_write(estimator, labels)?;
    writer.write_all(MAGIC)?;
    writer.write_all(&VERSION_V2.to_le_bytes())?;
    let mut out = CrcWriter::new(writer);
    write_header_fields(&mut out, estimator, n)?;
    let inverse = estimator.approximate_inverse();
    // The arena, as-is: one col_ptr block, one u32 row block, one f64 value
    // block. No per-column framing.
    out.put_u64(inverse.arena_rows().len() as u64)?;
    out.put_block(inverse.col_ptr(), |p: usize| (p as u64).to_le_bytes())?;
    out.put_block(inverse.arena_rows(), |r: u32| r.to_le_bytes())?;
    out.put_block(inverse.arena_values(), f64::to_le_bytes)?;
    write_labels(&mut out, labels)?;
    let crc = out.crc.finish();
    writer.write_all(&crc.to_le_bytes())?;
    Ok(())
}

/// Serializes an estimator in the legacy per-column format (version 1).
///
/// Kept so compatibility tests can produce fresh v1 bytes (and fixtures can
/// be regenerated); new snapshots should use [`write_snapshot`].
///
/// # Errors
///
/// See [`write_snapshot`].
pub fn write_snapshot_v1<W: Write>(
    writer: &mut W,
    estimator: &EffectiveResistanceEstimator,
    labels: Option<&[u64]>,
) -> Result<(), IoError> {
    let n = validate_for_write(estimator, labels)?;
    writer.write_all(MAGIC)?;
    writer.write_all(&VERSION_V1.to_le_bytes())?;
    let mut out = CrcWriter::new(writer);
    write_header_fields(&mut out, estimator, n)?;
    let inverse = estimator.approximate_inverse();
    for j in 0..n {
        let column = inverse.column(j);
        out.put_u32(column.nnz() as u32)?;
        for &i in column.indices() {
            out.put_u32(i)?;
        }
        for &v in column.values() {
            out.put_f64(v)?;
        }
    }
    write_labels(&mut out, labels)?;
    let crc = out.crc.finish();
    writer.write_all(&crc.to_le_bytes())?;
    Ok(())
}

fn validate_for_write(
    estimator: &EffectiveResistanceEstimator,
    labels: Option<&[u64]>,
) -> Result<usize, IoError> {
    let n = estimator.node_count();
    if n > u32::MAX as usize {
        return Err(IoError::Format(format!(
            "{n} nodes exceed the snapshot's u32 index space"
        )));
    }
    // Snapshots are f64-canonical in every version: a narrowed estimator
    // would persist rounded values (and a norm table summed over them),
    // silently downgrading every future deployment of the file. Save the
    // estimator *before* narrowing it (value-mode conversion is a serving
    // concern; `effres-cli build --value-mode f32` saves first, then
    // narrows for its own stats report).
    if estimator.approximate_inverse().value_mode() != effres::ValueMode::F64 {
        return Err(IoError::Format(
            "snapshots are f64-canonical and this estimator was narrowed to f32; \
             save the f64 estimator before converting with with_value_mode"
                .into(),
        ));
    }
    if let Some(labels) = labels {
        if labels.len() != n {
            return Err(IoError::Format(format!(
                "label table has {} entries for {n} nodes",
                labels.len()
            )));
        }
    }
    Ok(n)
}

/// Writes the fields shared by both versions: counts, epsilon, stats and the
/// permutation.
fn write_header_fields<W: Write>(
    out: &mut CrcWriter<'_, W>,
    estimator: &EffectiveResistanceEstimator,
    n: usize,
) -> Result<(), IoError> {
    let stats = estimator.stats();
    let inverse = estimator.approximate_inverse();
    out.put_u64(n as u64)?;
    out.put_f64(inverse.epsilon())?;
    out.put_u64(stats.factor_nnz as u64)?;
    out.put_u64(stats.inverse_nnz as u64)?;
    out.put_f64(stats.inverse_nnz_ratio)?;
    out.put_u64(stats.max_depth as u64)?;
    out.put_u64(stats.ichol_dropped as u64)?;
    out.put_u64(stats.pruned_entries as u64)?;
    let inv_stats = inverse.stats();
    out.put_u64(inv_stats.pruned_entries as u64)?;
    out.put_u64(inv_stats.small_columns_kept as u64)?;
    out.put_block(estimator.permutation().new_to_old(), |old: usize| {
        (old as u32).to_le_bytes()
    })?;
    Ok(())
}

fn write_labels<W: Write>(
    out: &mut CrcWriter<'_, W>,
    labels: Option<&[u64]>,
) -> Result<(), IoError> {
    match labels {
        None => out.put(&[0u8]),
        Some(labels) => {
            out.put(&[1u8])?;
            out.put_block(labels, u64::to_le_bytes)
        }
    }
}

/// Reads a snapshot written by [`write_snapshot`] (version 2) or the legacy
/// [`write_snapshot_v1`] format, auto-detecting the version from the header,
/// verifying magic and checksum, and revalidating every structural
/// invariant.
///
/// # Errors
///
/// Returns [`IoError::Format`] for bad magic/version/checksum or structurally
/// invalid contents, [`IoError::Io`] on read failure.
pub fn read_snapshot<R: Read>(reader: &mut R) -> Result<Snapshot, IoError> {
    let mut magic = [0u8; 8];
    reader
        .read_exact(&mut magic)
        .map_err(|_| IoError::Format("truncated snapshot (no magic)".into()))?;
    if &magic != MAGIC {
        return Err(IoError::Format("not an effres snapshot (bad magic)".into()));
    }
    let mut version = [0u8; 4];
    reader
        .read_exact(&mut version)
        .map_err(|_| IoError::Format("truncated snapshot (no version)".into()))?;
    match u32::from_le_bytes(version) {
        VERSION_V1 => read_payload(reader, Version::V1),
        VERSION_V2 => read_payload(reader, Version::V2),
        VERSION_V3 => read_payload(reader, Version::V3),
        other => Err(IoError::Format(format!(
            "unsupported snapshot version {other} \
             (this build reads {VERSION_V1}, {VERSION_V2} and {VERSION_V3})"
        ))),
    }
}

#[derive(Clone, Copy, PartialEq)]
enum Version {
    V1,
    V2,
    V3,
}

/// The payload fields shared by both snapshot versions, up to (and
/// excluding) the column data: sizes, statistics and the fill-reducing
/// permutation. The paged opener reads exactly this much sequentially and
/// then locates the bulk blocks by offset.
pub(crate) struct PayloadHeader {
    pub(crate) n: usize,
    pub(crate) epsilon: f64,
    pub(crate) stats: EstimatorStats,
    pub(crate) inv_stats: ApproxInverseStats,
    pub(crate) permutation: Permutation,
}

/// Reads the shared payload header (see [`PayloadHeader`]).
pub(crate) fn read_payload_header<R: Read>(
    input: &mut CrcReader<'_, R>,
) -> Result<PayloadHeader, IoError> {
    let n = input.take_u64()? as usize;
    if n > u32::MAX as usize {
        return Err(IoError::Format("node count exceeds u32 index space".into()));
    }
    let epsilon = input.take_f64()?;
    let stats = EstimatorStats {
        node_count: n,
        factor_nnz: input.take_u64()? as usize,
        inverse_nnz: input.take_u64()? as usize,
        inverse_nnz_ratio: input.take_f64()?,
        max_depth: input.take_u64()? as usize,
        ichol_dropped: input.take_u64()? as usize,
        pruned_entries: input.take_u64()? as usize,
    };
    let inv_stats = ApproxInverseStats {
        nnz: 0,
        max_column_nnz: 0,
        pruned_entries: input.take_u64()? as usize,
        small_columns_kept: input.take_u64()? as usize,
    };
    let mut new_to_old = Vec::with_capacity(n.min(PREALLOC_CAP));
    input.take_block(n, |b: [u8; 4]| {
        new_to_old.push(u32::from_le_bytes(b) as usize);
        Ok(())
    })?;
    let permutation = Permutation::from_new_to_old(new_to_old)
        .map_err(|e| IoError::Format(format!("invalid permutation: {e}")))?;
    Ok(PayloadHeader {
        n,
        epsilon,
        stats,
        inv_stats,
        permutation,
    })
}

fn read_payload<R: Read>(reader: &mut R, version: Version) -> Result<Snapshot, IoError> {
    let mut input = CrcReader::new(reader);
    let PayloadHeader {
        n,
        epsilon,
        stats,
        inv_stats,
        permutation,
    } = read_payload_header(&mut input)?;

    let (col_ptr, arena_rows, arena_vals, norms) = match version {
        Version::V1 => {
            let (c, r, v) = read_columns_v1(&mut input, n)?;
            (c, r, v, None)
        }
        Version::V2 => {
            let (c, r, v) = read_arena_v2(&mut input, n)?;
            (c, r, v, None)
        }
        Version::V3 => {
            let (c, r, v, norms) = read_arena_v3(&mut input, n)?;
            (c, r, v, Some(norms))
        }
    };

    let labels = match input.take_u8()? {
        0 => None,
        1 => {
            let mut labels = Vec::with_capacity(n.min(PREALLOC_CAP));
            input.take_block(n, |b: [u8; 8]| {
                labels.push(u64::from_le_bytes(b));
                Ok(())
            })?;
            Some(labels)
        }
        other => {
            return Err(IoError::Format(format!("invalid labels flag {other}")));
        }
    };
    let computed = input.crc.finish();
    let mut trailer = [0u8; 4];
    input
        .inner
        .read_exact(&mut trailer)
        .map_err(|_| IoError::Format("truncated snapshot (no checksum)".into()))?;
    let expected = u32::from_le_bytes(trailer);
    if computed != expected {
        return Err(IoError::Format(format!(
            "snapshot checksum mismatch: computed {computed:#010x}, stored {expected:#010x}"
        )));
    }
    // `from_arena` revalidates the structural invariants (monotone col_ptr,
    // strictly increasing lower-triangular columns) for every version, so a
    // corrupt-but-checksummed payload still cannot reach the query kernels.
    let inverse = SparseApproximateInverse::from_arena(
        n, col_ptr, arena_rows, arena_vals, inv_stats, epsilon,
    )?;
    let estimator = EffectiveResistanceEstimator::from_parts(inverse, permutation, stats)?;
    if let Some(norms) = norms {
        // v3 persists the write-time norm table (summed in index order, so
        // bit-identical to a recomputed sweep): priming it means a resident
        // load never sweeps the arena for norms again.
        estimator
            .prime_column_norms(norms)
            .map_err(|e| IoError::Format(format!("invalid norms block: {e}")))?;
    }
    let version = Some(match version {
        Version::V1 => 1,
        Version::V2 => 2,
        Version::V3 => 3,
    });
    Ok(Snapshot {
        estimator,
        labels,
        version,
    })
}

/// Reads the v1 per-column records, assembling them into arena buffers.
#[allow(clippy::type_complexity)]
fn read_columns_v1<R: Read>(
    input: &mut CrcReader<'_, R>,
    n: usize,
) -> Result<(Vec<usize>, Vec<u32>, Vec<f64>), IoError> {
    let mut col_ptr = Vec::with_capacity((n + 1).min(PREALLOC_CAP));
    let mut arena_rows: Vec<u32> = Vec::new();
    let mut arena_vals: Vec<f64> = Vec::new();
    col_ptr.push(0usize);
    for j in 0..n {
        let nnz = input.take_u32()? as usize;
        if nnz > n {
            return Err(IoError::Format(format!(
                "column {j} claims {nnz} nonzeros in a {n}-node inverse"
            )));
        }
        let start = arena_rows.len();
        arena_rows.reserve(nnz.min(PREALLOC_CAP));
        for _ in 0..nnz {
            arena_rows.push(input.take_u32()?);
        }
        let column = &arena_rows[start..];
        let sorted = column.windows(2).all(|w| w[0] < w[1]);
        if !sorted || column.last().is_some_and(|&i| i as usize >= n) {
            return Err(IoError::Format(format!(
                "column {j} indices are not strictly increasing within 0..{n}"
            )));
        }
        arena_vals.reserve(nnz.min(PREALLOC_CAP));
        for _ in 0..nnz {
            let v = input.take_f64()?;
            if !v.is_finite() {
                return Err(IoError::Format(format!("non-finite value in column {j}")));
            }
            arena_vals.push(v);
        }
        col_ptr.push(arena_rows.len());
    }
    Ok((col_ptr, arena_rows, arena_vals))
}

/// Reads and validates the v2 `col_ptr` block: `n + 1` `u64` entries that
/// must start at `0`, be monotone non-decreasing, stay within the declared
/// `nnz` and end exactly at it. Violations are rejected *while streaming* —
/// before a single byte of the (much larger) rows/vals blocks is read or
/// allocated — which is what lets the paged store trust the block enough to
/// serve columns lazily from an untrusted file.
pub(crate) fn read_col_ptr_block<R: Read>(
    input: &mut CrcReader<'_, R>,
    n: usize,
    nnz: u64,
) -> Result<Vec<u64>, IoError> {
    let mut col_ptr: Vec<u64> = Vec::with_capacity((n + 1).min(PREALLOC_CAP));
    let mut prev = 0u64;
    input.take_block(n + 1, |b: [u8; 8]| {
        let p = u64::from_le_bytes(b);
        if col_ptr.is_empty() && p != 0 {
            return Err(IoError::Format(format!("col_ptr must start at 0, got {p}")));
        }
        if p < prev {
            return Err(IoError::Format(format!(
                "col_ptr is not monotone: entry {} is {p} after {prev}",
                col_ptr.len()
            )));
        }
        if p > nnz {
            return Err(IoError::Format(format!(
                "col_ptr entry {p} exceeds the declared {nnz} nonzeros"
            )));
        }
        prev = p;
        col_ptr.push(p);
        Ok(())
    })?;
    if col_ptr.last() != Some(&nnz) {
        return Err(IoError::Format(format!(
            "col_ptr must end at the declared {nnz} nonzeros, got {:?}",
            col_ptr.last()
        )));
    }
    Ok(col_ptr)
}

/// Reads the v2 bulk arena blocks straight into the arena buffers.
#[allow(clippy::type_complexity)]
fn read_arena_v2<R: Read>(
    input: &mut CrcReader<'_, R>,
    n: usize,
) -> Result<(Vec<usize>, Vec<u32>, Vec<f64>), IoError> {
    let nnz = input.take_u64()? as usize;
    let col_ptr: Vec<usize> = read_col_ptr_block(input, n, nnz as u64)?
        .into_iter()
        .map(|p| p as usize)
        .collect();
    let mut arena_rows: Vec<u32> = Vec::with_capacity(nnz.min(PREALLOC_CAP));
    input.take_block(nnz, |b: [u8; 4]| {
        let r = u32::from_le_bytes(b);
        // Out-of-range rows are rejected while the block streams, before
        // the value block is allocated.
        if r as usize >= n {
            return Err(IoError::Format(format!(
                "row index {r} out of range for {n} nodes"
            )));
        }
        arena_rows.push(r);
        Ok(())
    })?;
    let mut arena_vals: Vec<f64> = Vec::with_capacity(nnz.min(PREALLOC_CAP));
    let mut bad_value = false;
    input.take_block(nnz, |b: [u8; 8]| {
        let v = f64::from_le_bytes(b);
        bad_value |= !v.is_finite();
        arena_vals.push(v);
        Ok(())
    })?;
    if bad_value {
        return Err(IoError::Format(
            "non-finite value in the arena value block".into(),
        ));
    }
    Ok((col_ptr, arena_rows, arena_vals))
}

/// Reads and validates a v3 `row_off` block (per-column byte offsets of the
/// delta-varint row encoding): `n + 1` monotone `u64` entries starting at 0
/// and ending exactly at `rows_bytes`, with each column's span consistent
/// with its entry count (`count ≤ n` — a column has at most `n` strictly
/// increasing rows — and `count ≤ span ≤ 5·count`, a LEB128 `u32` being 1–5
/// bytes). Like `col_ptr`, violations are rejected while streaming, before
/// the row bytes are touched, which is what lets the paged store locate
/// varint column ranges in an untrusted file — and what bounds every later
/// per-column buffer to `5n` bytes, so a hostile `nnz`/`rows_bytes` cannot
/// drive a giant allocation (the `count ≤ n` bound also keeps `count * 5`
/// far from overflowing).
pub(crate) fn read_row_off_block<R: Read>(
    input: &mut CrcReader<'_, R>,
    col_ptr: &[u64],
    rows_bytes: u64,
) -> Result<Vec<u64>, IoError> {
    let n = col_ptr.len() - 1;
    let mut row_off: Vec<u64> = Vec::with_capacity((n + 1).min(PREALLOC_CAP));
    let mut prev = 0u64;
    input.take_block(n + 1, |b: [u8; 8]| {
        let p = u64::from_le_bytes(b);
        let j = row_off.len();
        if j == 0 {
            if p != 0 {
                return Err(IoError::Format(format!("row_off must start at 0, got {p}")));
            }
        } else {
            if p < prev || p > rows_bytes {
                return Err(IoError::Format(format!(
                    "row_off entry {j} ({p}) is outside the monotone range {prev}..={rows_bytes}"
                )));
            }
            let span = p - prev;
            let count = col_ptr[j] - col_ptr[j - 1];
            if count > n as u64 {
                return Err(IoError::Format(format!(
                    "column {} claims {count} rows in a {n}-node inverse",
                    j - 1
                )));
            }
            if span < count || span > count * 5 {
                return Err(IoError::Format(format!(
                    "column {} claims {span} varint bytes for {count} row(s)",
                    j - 1
                )));
            }
        }
        prev = p;
        row_off.push(p);
        Ok(())
    })?;
    if row_off.last() != Some(&rows_bytes) {
        return Err(IoError::Format(format!(
            "row_off must end at the declared {rows_bytes} row bytes, got {:?}",
            row_off.last()
        )));
    }
    Ok(row_off)
}

/// Reads the v3 arena blocks (codec-dispatched rows, values, norms) into the
/// arena buffers plus the persisted norm table.
#[allow(clippy::type_complexity)]
fn read_arena_v3<R: Read>(
    input: &mut CrcReader<'_, R>,
    n: usize,
) -> Result<(Vec<usize>, Vec<u32>, Vec<f64>, Vec<f64>), IoError> {
    let nnz = input.take_u64()? as usize;
    let col_ptr_u64 = read_col_ptr_block(input, n, nnz as u64)?;
    let codec = input.take_u8()?;
    let mut arena_rows: Vec<u32> = Vec::with_capacity(nnz.min(PREALLOC_CAP));
    match codec {
        ROW_CODEC_RAW => {
            input.take_block(nnz, |b: [u8; 4]| {
                let r = u32::from_le_bytes(b);
                if r as usize >= n {
                    return Err(IoError::Format(format!(
                        "row index {r} out of range for {n} nodes"
                    )));
                }
                arena_rows.push(r);
                Ok(())
            })?;
        }
        ROW_CODEC_VARINT => {
            let rows_bytes = input.take_u64()?;
            let row_off = read_row_off_block(input, &col_ptr_u64, rows_bytes)?;
            // Decode column by column: each column's byte span is known from
            // row_off, so a corrupt encoding can cost at most one bounded
            // column buffer before it is rejected.
            let mut buf: Vec<u8> = Vec::new();
            for j in 0..n {
                let span = (row_off[j + 1] - row_off[j]) as usize;
                let count = (col_ptr_u64[j + 1] - col_ptr_u64[j]) as usize;
                buf.resize(span, 0);
                input.fill(&mut buf)?;
                decode_varint_column(&buf, count, n, &mut arena_rows)
                    .map_err(|e| IoError::Format(format!("column {j}: {e}")))?;
            }
        }
        other => {
            return Err(IoError::Format(format!("unknown v3 row codec {other}")));
        }
    }
    let col_ptr: Vec<usize> = col_ptr_u64.into_iter().map(|p| p as usize).collect();
    let mut arena_vals: Vec<f64> = Vec::with_capacity(nnz.min(PREALLOC_CAP));
    let mut bad_value = false;
    input.take_block(nnz, |b: [u8; 8]| {
        arena_vals.push(f64::from_le_bytes(b));
        bad_value |= !arena_vals.last().expect("just pushed").is_finite();
        Ok(())
    })?;
    if bad_value {
        return Err(IoError::Format(
            "non-finite value in the arena value block".into(),
        ));
    }
    let mut norms: Vec<f64> = Vec::with_capacity(n.min(PREALLOC_CAP));
    let mut bad_norm = false;
    input.take_block(n, |b: [u8; 8]| {
        let v = f64::from_le_bytes(b);
        bad_norm |= !v.is_finite() || v < 0.0;
        norms.push(v);
        Ok(())
    })?;
    if bad_norm {
        return Err(IoError::Format(
            "non-finite or negative entry in the norms block".into(),
        ));
    }
    Ok((col_ptr, arena_rows, arena_vals, norms))
}

/// The staging path [`save_snapshot`] writes to before its atomic rename: a
/// dot-prefixed sibling of `path` tagged with the writing process id, so the
/// rename never crosses a filesystem boundary and concurrent writers from
/// different processes never collide on the staging file.
fn staging_path(path: &Path) -> std::path::PathBuf {
    let name = path.file_name().map_or_else(
        || std::ffi::OsString::from("snapshot"),
        |n| n.to_os_string(),
    );
    let mut staged = std::ffi::OsString::from(".");
    staged.push(&name);
    staged.push(format!(".tmp.{}", std::process::id()));
    path.with_file_name(staged)
}

/// Makes the rename that committed `path` durable by fsyncing its parent
/// directory (the rename itself lives in the directory's metadata). A no-op
/// on non-Unix targets, where directories cannot be opened for syncing.
fn sync_parent_dir(path: &Path) -> Result<(), IoError> {
    #[cfg(unix)]
    {
        let parent = match path.parent() {
            Some(p) if !p.as_os_str().is_empty() => p,
            _ => Path::new("."),
        };
        let dir = std::fs::File::open(parent)?;
        dir.sync_all()?;
    }
    #[cfg(not(unix))]
    let _ = path;
    Ok(())
}

/// Flushes `writer`, fsyncs the staged file behind it, and atomically renames
/// it over `path` (fsyncing the parent directory so the rename is durable).
fn commit_staged(
    mut writer: BufWriter<std::fs::File>,
    staged: &Path,
    path: &Path,
) -> Result<(), IoError> {
    writer.flush()?;
    let file = writer
        .into_inner()
        .map_err(|e| IoError::Io(e.into_error()))?;
    file.sync_all()?;
    std::fs::rename(staged, path)?;
    sync_parent_dir(path)
}

/// Writes a snapshot to a file in the current format, **crash-safely**: the
/// bytes are staged in a temporary sibling file, flushed and fsynced, and
/// only then atomically renamed over `path` (with the parent directory
/// fsynced so the rename itself is durable). A crash — of this process or
/// the machine — at any byte leaves either the previous contents of `path`
/// or no file at all, never a torn snapshot. On an error return the staging
/// file is removed.
///
/// # Errors
///
/// See [`write_snapshot`]; staging, fsync and rename failures surface as
/// [`IoError::Io`].
pub fn save_snapshot(
    path: impl AsRef<Path>,
    estimator: &EffectiveResistanceEstimator,
    labels: Option<&[u64]>,
) -> Result<(), IoError> {
    let path = path.as_ref();
    let staged = staging_path(path);
    let result = (|| {
        let file = std::fs::File::create(&staged)?;
        let mut writer = BufWriter::new(file);
        write_snapshot(&mut writer, estimator, labels)?;
        commit_staged(writer, &staged, path)
    })();
    if result.is_err() {
        let _ = std::fs::remove_file(&staged);
    }
    result
}

/// The marker message carried by the simulated-crash I/O error that
/// [`save_snapshot_crashing_at`] injects.
const SIMULATED_CRASH: &str = "simulated crash point";

/// A writer that passes through exactly `remaining` bytes and then fails
/// every further write, simulating a process death at a byte boundary.
struct CrashWriter<W> {
    inner: W,
    remaining: u64,
}

impl<W: Write> Write for CrashWriter<W> {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        if self.remaining == 0 {
            return Err(std::io::Error::other(SIMULATED_CRASH));
        }
        let take = buf
            .len()
            .min(usize::try_from(self.remaining).unwrap_or(usize::MAX));
        let written = self.inner.write(&buf[..take])?;
        self.remaining -= written as u64;
        Ok(written)
    }

    fn flush(&mut self) -> std::io::Result<()> {
        self.inner.flush()
    }
}

/// Test support for the crash-safety guarantee: runs the exact
/// [`save_snapshot`] staging path, but simulates a process crash once
/// `crash_after_bytes` bytes have reached the staging file — writing stops
/// mid-stream, nothing is fsynced or renamed, and the truncated staging file
/// is **left behind**, reproducing the on-disk state an interrupted
/// [`save_snapshot`] leaves. `path` itself is never touched.
///
/// Returns `Ok(false)` if the simulated crash fired, and `Ok(true)` if the
/// whole snapshot fit within the budget, in which case the write committed
/// normally (fsync + atomic rename) exactly as [`save_snapshot`] would.
///
/// # Errors
///
/// See [`save_snapshot`]; the injected crash itself is reported via the
/// `Ok(false)` return, not as an error.
pub fn save_snapshot_crashing_at(
    path: impl AsRef<Path>,
    estimator: &EffectiveResistanceEstimator,
    labels: Option<&[u64]>,
    crash_after_bytes: u64,
) -> Result<bool, IoError> {
    let path = path.as_ref();
    let staged = staging_path(path);
    let file = std::fs::File::create(&staged)?;
    let mut writer = BufWriter::new(CrashWriter {
        inner: file,
        remaining: crash_after_bytes,
    });
    let staged_result = write_snapshot(&mut writer, estimator, labels).and_then(|()| {
        // The buffered tail may still trip the crash point on flush.
        writer.flush().map_err(IoError::Io)
    });
    match staged_result {
        Ok(()) => {
            let file = writer
                .into_inner()
                .map_err(|e| IoError::Io(e.into_error()))?
                .inner;
            file.sync_all()?;
            std::fs::rename(&staged, path)?;
            sync_parent_dir(path)?;
            Ok(true)
        }
        Err(IoError::Io(e)) if e.to_string().contains(SIMULATED_CRASH) => Ok(false),
        Err(other) => {
            let _ = std::fs::remove_file(&staged);
            Err(other)
        }
    }
}

/// Loads a snapshot from a file (buffered), auto-detecting the version.
///
/// # Errors
///
/// See [`read_snapshot`].
pub fn load_snapshot(path: impl AsRef<Path>) -> Result<Snapshot, IoError> {
    let file = std::fs::File::open(path)?;
    read_snapshot(&mut BufReader::new(file))
}

#[cfg(test)]
mod tests {
    use super::*;
    use effres::EffresConfig;
    use effres_graph::generators;

    fn sample_estimator() -> EffectiveResistanceEstimator {
        let graph = generators::grid_2d(12, 12, 0.5, 2.0, 9).expect("generator");
        EffectiveResistanceEstimator::build(&graph, &EffresConfig::default()).expect("build")
    }

    #[test]
    fn round_trip_preserves_queries_stats_and_labels() {
        let estimator = sample_estimator();
        let labels: Vec<u64> = (0..estimator.node_count() as u64)
            .map(|i| i * 7 + 3)
            .collect();
        let mut bytes = Vec::new();
        write_snapshot(&mut bytes, &estimator, Some(&labels)).expect("write");
        let snapshot = read_snapshot(&mut bytes.as_slice()).expect("read");
        assert_eq!(snapshot.labels.as_deref(), Some(labels.as_slice()));
        assert_eq!(snapshot.estimator.stats(), estimator.stats());
        for &(p, q) in &[(0, 143), (10, 77), (64, 65), (3, 3)] {
            let a = estimator.query(p, q).expect("query");
            let b = snapshot.estimator.query(p, q).expect("query");
            assert_eq!(a, b, "({p},{q})");
        }
    }

    #[test]
    fn all_writers_round_trip_identically() {
        // Same estimator through every format: the loaded arenas must match
        // bit-for-bit — v1's per-column records, v2's bulk blocks and v3's
        // codec-negotiated blocks are three encodings of the same buffers.
        let estimator = sample_estimator();
        let mut v1 = Vec::new();
        write_snapshot_v1(&mut v1, &estimator, None).expect("write v1");
        let mut v2 = Vec::new();
        write_snapshot_v2(&mut v2, &estimator, None).expect("write v2");
        let mut v3 = Vec::new();
        write_snapshot(&mut v3, &estimator, None).expect("write v3");
        assert_eq!(u32::from_le_bytes(v1[8..12].try_into().unwrap()), 1);
        assert_eq!(u32::from_le_bytes(v2[8..12].try_into().unwrap()), 2);
        assert_eq!(u32::from_le_bytes(v3[8..12].try_into().unwrap()), 3);
        // Same rows/vals payload; v1 and v2 differ only in framing (v1: one
        // u32 nnz per column, v2: a u64 col_ptr block + nnz header).
        assert_eq!(v2.len() as i64 - v1.len() as i64, 8 * 145 + 8 - 4 * 144);
        let from_v1 = read_snapshot(&mut v1.as_slice()).expect("read v1");
        let from_v2 = read_snapshot(&mut v2.as_slice()).expect("read v2");
        let from_v3 = read_snapshot(&mut v3.as_slice()).expect("read v3");
        let a = from_v1.estimator.approximate_inverse();
        for loaded in [&from_v2, &from_v3] {
            let b = loaded.estimator.approximate_inverse();
            assert_eq!(a.col_ptr(), b.col_ptr());
            assert_eq!(a.arena_rows(), b.arena_rows());
            assert!(a
                .arena_values()
                .iter()
                .zip(b.arena_values())
                .all(|(x, y)| x.to_bits() == y.to_bits()));
            assert_eq!(from_v1.estimator.stats(), loaded.estimator.stats());
        }
        // Only the v3 load arrives with the norm table already resident, and
        // it matches a recomputed sweep bit for bit.
        assert!(from_v1.estimator.cached_column_norms().is_none());
        assert!(from_v2.estimator.cached_column_norms().is_none());
        let primed = from_v3
            .estimator
            .cached_column_norms()
            .expect("v3 loads norms");
        assert!(estimator
            .approximate_inverse()
            .column_norms_squared()
            .iter()
            .zip(primed)
            .all(|(x, y)| x.to_bits() == y.to_bits()));
    }

    #[test]
    fn v3_negotiates_the_varint_codec_when_it_shrinks_the_rows() {
        // The 144-node sample has dense-ish columns with small gaps: varint
        // deltas beat raw u32 rows even after paying for the offset table.
        let estimator = sample_estimator();
        let mut v3 = Vec::new();
        write_snapshot(&mut v3, &estimator, None).expect("write v3");
        let n = estimator.node_count();
        let codec_at = 12 + 16 + 48 + 16 + 4 * n + 8 + 8 * (n + 1);
        assert_eq!(v3[codec_at], super::ROW_CODEC_VARINT);
        let mut v2 = Vec::new();
        write_snapshot_v2(&mut v2, &estimator, None).expect("write v2");
        assert!(
            v3.len() < v2.len(),
            "v3 ({}) should be smaller than v2 ({})",
            v3.len(),
            v2.len()
        );
    }

    #[test]
    fn varint_codec_round_trips_hostile_shaped_columns() {
        // Encode/decode edge cases directly: empty columns, the maximum
        // index, single-byte and five-byte varints.
        for rows in [
            vec![],
            vec![0u32],
            vec![u32::MAX - 1],
            vec![0, 1, 2, 3],
            vec![5, 1000, 1001, u32::MAX - 2],
        ] {
            let mut bytes = Vec::new();
            super::encode_varint_column(&mut bytes, &rows);
            assert_eq!(bytes.len() as u64, super::varint_column_len(&rows));
            let mut decoded = Vec::new();
            super::decode_varint_column(&bytes, rows.len(), u32::MAX as usize, &mut decoded)
                .expect("round trip");
            assert_eq!(decoded, rows);
        }
        // Malformed encodings are rejected: zero gap, truncation, trailing
        // garbage, out-of-range index, over-long varint.
        let mut ok = Vec::new();
        super::encode_varint_column(&mut ok, &[3, 7]);
        let mut out = Vec::new();
        assert!(super::decode_varint_column(&[3, 0], 2, 100, &mut out).is_err());
        out.clear();
        assert!(super::decode_varint_column(&ok[..1], 2, 100, &mut out).is_err());
        out.clear();
        let mut padded = ok.clone();
        padded.push(1);
        assert!(super::decode_varint_column(&padded, 2, 100, &mut out).is_err());
        out.clear();
        assert!(super::decode_varint_column(&ok, 2, 7, &mut out).is_err());
        out.clear();
        assert!(super::decode_varint_column(
            &[0x80, 0x80, 0x80, 0x80, 0x80, 0x01],
            1,
            100,
            &mut out
        )
        .is_err());
    }

    #[test]
    fn no_labels_flag_round_trips() {
        let estimator = sample_estimator();
        let mut bytes = Vec::new();
        write_snapshot(&mut bytes, &estimator, None).expect("write");
        let snapshot = read_snapshot(&mut bytes.as_slice()).expect("read");
        assert!(snapshot.labels.is_none());
    }

    #[test]
    fn corruption_is_detected() {
        let estimator = sample_estimator();
        for write in [
            write_snapshot::<Vec<u8>>,
            write_snapshot_v2::<Vec<u8>>,
            write_snapshot_v1::<Vec<u8>>,
        ] {
            let mut bytes = Vec::new();
            write(&mut bytes, &estimator, None).expect("write");

            // Bad magic.
            let mut bad = bytes.clone();
            bad[0] ^= 0xff;
            assert!(matches!(
                read_snapshot(&mut bad.as_slice()),
                Err(IoError::Format(_))
            ));

            // Bad version.
            let mut bad = bytes.clone();
            bad[8] = 99;
            assert!(matches!(
                read_snapshot(&mut bad.as_slice()),
                Err(IoError::Format(_))
            ));

            // Flipped payload byte → checksum mismatch (or a structural
            // error if the flip lands on a count).
            let mut bad = bytes.clone();
            let mid = bytes.len() / 2;
            bad[mid] ^= 0x01;
            assert!(read_snapshot(&mut bad.as_slice()).is_err());

            // Truncation.
            let cut = &bytes[..bytes.len() - 7];
            assert!(read_snapshot(&mut &cut[..]).is_err());
        }
    }

    #[test]
    fn hostile_header_errors_instead_of_allocating() {
        // A tiny snapshot whose header claims u32::MAX nodes must fail with a
        // clean format error (truncated payload), not abort the process
        // trying to preallocate gigabytes — in every version.
        for version in [1u32, 2, 3] {
            let mut bytes = Vec::new();
            bytes.extend_from_slice(b"EFRSNAP\n");
            bytes.extend_from_slice(&version.to_le_bytes());
            bytes.extend_from_slice(&(u32::MAX as u64).to_le_bytes());
            bytes.extend_from_slice(&[0u8; 16]); // a few payload bytes, then EOF
            assert!(matches!(
                read_snapshot(&mut bytes.as_slice()),
                Err(IoError::Format(_))
            ));
        }
    }

    #[test]
    fn hostile_v3_varint_header_errors_instead_of_allocating() {
        // A tiny crafted v3 file whose single column claims 2^61 rows and
        // 2^61 varint bytes: the count-per-column bound (≤ n) must reject it
        // while streaming row_off — before `buf.resize(span)` or
        // `out.reserve(count)` could turn the hostile sizes into a
        // multi-exbibyte allocation request.
        let mut bytes = Vec::new();
        bytes.extend_from_slice(b"EFRSNAP\n");
        bytes.extend_from_slice(&3u32.to_le_bytes());
        bytes.extend_from_slice(&1u64.to_le_bytes()); // n = 1
        bytes.extend_from_slice(&1e-3f64.to_le_bytes()); // epsilon
        bytes.extend_from_slice(&[0u8; 48]); // estimator stats
        bytes.extend_from_slice(&[0u8; 16]); // inverse counters
        bytes.extend_from_slice(&0u32.to_le_bytes()); // permutation [0]
        let huge = 1u64 << 61;
        bytes.extend_from_slice(&huge.to_le_bytes()); // nnz
        bytes.extend_from_slice(&0u64.to_le_bytes()); // col_ptr[0]
        bytes.extend_from_slice(&huge.to_le_bytes()); // col_ptr[1]
        bytes.extend_from_slice(&[1u8]); // varint codec
        bytes.extend_from_slice(&huge.to_le_bytes()); // rows_bytes
        bytes.extend_from_slice(&0u64.to_le_bytes()); // row_off[0]
        bytes.extend_from_slice(&huge.to_le_bytes()); // row_off[1]
        let err = read_snapshot(&mut bytes.as_slice()).expect_err("must reject");
        assert!(
            matches!(&err, IoError::Format(m) if m.contains("claims")),
            "{err}"
        );
    }

    #[test]
    fn hostile_nnz_errors_instead_of_allocating() {
        // A structurally plausible v2 header whose nnz field is absurd must
        // run out of payload (format error), not allocate nnz-sized buffers.
        let estimator = sample_estimator();
        let mut bytes = Vec::new();
        write_snapshot(&mut bytes, &estimator, None).expect("write");
        // The nnz u64 sits right after the permutation block.
        let n = estimator.node_count();
        let nnz_offset = 8 + 4 + 8 + 8 + 6 * 8 + 2 * 8 + 4 * n;
        bytes[nnz_offset..nnz_offset + 8].copy_from_slice(&u64::MAX.to_le_bytes());
        assert!(matches!(
            read_snapshot(&mut bytes.as_slice()),
            Err(IoError::Format(_))
        ));
    }

    #[test]
    fn wrong_label_length_rejected_at_write_time() {
        let estimator = sample_estimator();
        let labels = vec![1u64; 3];
        let mut bytes = Vec::new();
        assert!(matches!(
            write_snapshot(&mut bytes, &estimator, Some(&labels)),
            Err(IoError::Format(_))
        ));
    }
}
