//! Compact binary snapshots of prebuilt estimators.
//!
//! Building the approximate inverse is the expensive part of the pipeline —
//! minutes for multi-million-node graphs — while queries are microseconds.
//! A snapshot persists everything the query path needs (the pruned columns
//! of `Z̃`, the fill-reducing permutation, the build statistics and, when the
//! graph came from a dataset file, the original node labels) so a service
//! can restart without refactorizing.
//!
//! ## Format (version 1, all little-endian)
//!
//! ```text
//! magic     8 bytes  "EFRSNAP\n"
//! version   u32      1
//! payload   (crc-checked):
//!   node_count u64, epsilon f64,
//!   estimator stats (factor_nnz u64, inverse_nnz u64, inverse_nnz_ratio f64,
//!                    max_depth u64, ichol_dropped u64, pruned_entries u64),
//!   inverse build counters (pruned_entries u64, small_columns_kept u64),
//!   permutation new→old (u32 × n),
//!   n columns: nnz u32, indices u32 × nnz, values f64 × nnz,
//!   labels flag u8 (0|1), then labels u64 × n if 1
//! crc32     u32      of the payload bytes
//! ```

use crate::error::IoError;
use crate::gzip::Crc32;
use effres::approx_inverse::{ApproxInverseStats, SparseApproximateInverse};
use effres::estimator::EstimatorStats;
use effres::EffectiveResistanceEstimator;
use effres_sparse::Permutation;
use std::io::{BufReader, BufWriter, Read, Write};
use std::path::Path;

const MAGIC: &[u8; 8] = b"EFRSNAP\n";
const VERSION: u32 = 1;

/// A persisted estimator plus the optional dataset node labels.
#[derive(Debug, Clone)]
pub struct Snapshot {
    /// The reassembled query engine core.
    pub estimator: EffectiveResistanceEstimator,
    /// Original dataset ids of the estimator's dense nodes, if the snapshot
    /// was written from an ingested dataset.
    pub labels: Option<Vec<u64>>,
}

struct CrcWriter<'a, W: Write> {
    inner: &'a mut W,
    crc: Crc32,
}

impl<W: Write> CrcWriter<'_, W> {
    fn put(&mut self, bytes: &[u8]) -> Result<(), IoError> {
        self.crc.update(bytes);
        self.inner.write_all(bytes)?;
        Ok(())
    }

    fn put_u32(&mut self, v: u32) -> Result<(), IoError> {
        self.put(&v.to_le_bytes())
    }

    fn put_u64(&mut self, v: u64) -> Result<(), IoError> {
        self.put(&v.to_le_bytes())
    }

    fn put_f64(&mut self, v: f64) -> Result<(), IoError> {
        self.put(&v.to_le_bytes())
    }
}

struct CrcReader<'a, R: Read> {
    inner: &'a mut R,
    crc: Crc32,
}

impl<R: Read> CrcReader<'_, R> {
    fn take<const N: usize>(&mut self) -> Result<[u8; N], IoError> {
        let mut buf = [0u8; N];
        self.inner.read_exact(&mut buf).map_err(|e| {
            if e.kind() == std::io::ErrorKind::UnexpectedEof {
                IoError::Format("truncated snapshot".into())
            } else {
                IoError::Io(e)
            }
        })?;
        self.crc.update(&buf);
        Ok(buf)
    }

    fn take_u8(&mut self) -> Result<u8, IoError> {
        Ok(self.take::<1>()?[0])
    }

    fn take_u32(&mut self) -> Result<u32, IoError> {
        Ok(u32::from_le_bytes(self.take::<4>()?))
    }

    fn take_u64(&mut self) -> Result<u64, IoError> {
        Ok(u64::from_le_bytes(self.take::<8>()?))
    }

    fn take_f64(&mut self) -> Result<f64, IoError> {
        Ok(f64::from_le_bytes(self.take::<8>()?))
    }
}

/// Serializes an estimator (and optional node labels) to `writer`.
///
/// # Errors
///
/// Returns [`IoError::Io`] on write failure and [`IoError::Format`] if the
/// estimator is too large for the u32 index space or `labels` has the wrong
/// length.
pub fn write_snapshot<W: Write>(
    writer: &mut W,
    estimator: &EffectiveResistanceEstimator,
    labels: Option<&[u64]>,
) -> Result<(), IoError> {
    let n = estimator.node_count();
    if n > u32::MAX as usize {
        return Err(IoError::Format(format!(
            "{n} nodes exceed the snapshot's u32 index space"
        )));
    }
    if let Some(labels) = labels {
        if labels.len() != n {
            return Err(IoError::Format(format!(
                "label table has {} entries for {n} nodes",
                labels.len()
            )));
        }
    }
    writer.write_all(MAGIC)?;
    writer.write_all(&VERSION.to_le_bytes())?;
    let mut out = CrcWriter {
        inner: writer,
        crc: Crc32::new(),
    };
    let stats = estimator.stats();
    let inverse = estimator.approximate_inverse();
    out.put_u64(n as u64)?;
    out.put_f64(inverse.epsilon())?;
    out.put_u64(stats.factor_nnz as u64)?;
    out.put_u64(stats.inverse_nnz as u64)?;
    out.put_f64(stats.inverse_nnz_ratio)?;
    out.put_u64(stats.max_depth as u64)?;
    out.put_u64(stats.ichol_dropped as u64)?;
    out.put_u64(stats.pruned_entries as u64)?;
    let inv_stats = inverse.stats();
    out.put_u64(inv_stats.pruned_entries as u64)?;
    out.put_u64(inv_stats.small_columns_kept as u64)?;
    for &old in estimator.permutation().new_to_old() {
        out.put_u32(old as u32)?;
    }
    for j in 0..n {
        let column = inverse.column(j);
        out.put_u32(column.nnz() as u32)?;
        for &i in column.indices() {
            out.put_u32(i as u32)?;
        }
        for &v in column.values() {
            out.put_f64(v)?;
        }
    }
    match labels {
        None => out.put(&[0u8])?,
        Some(labels) => {
            out.put(&[1u8])?;
            for &label in labels {
                out.put_u64(label)?;
            }
        }
    }
    let crc = out.crc.finish();
    writer.write_all(&crc.to_le_bytes())?;
    Ok(())
}

/// Reads a snapshot written by [`write_snapshot`], verifying magic, version
/// and checksum, and revalidating every structural invariant.
///
/// # Errors
///
/// Returns [`IoError::Format`] for bad magic/version/checksum or structurally
/// invalid contents, [`IoError::Io`] on read failure.
pub fn read_snapshot<R: Read>(reader: &mut R) -> Result<Snapshot, IoError> {
    let mut magic = [0u8; 8];
    reader
        .read_exact(&mut magic)
        .map_err(|_| IoError::Format("truncated snapshot (no magic)".into()))?;
    if &magic != MAGIC {
        return Err(IoError::Format("not an effres snapshot (bad magic)".into()));
    }
    let mut version = [0u8; 4];
    reader
        .read_exact(&mut version)
        .map_err(|_| IoError::Format("truncated snapshot (no version)".into()))?;
    let version = u32::from_le_bytes(version);
    if version != VERSION {
        return Err(IoError::Format(format!(
            "unsupported snapshot version {version} (this build reads {VERSION})"
        )));
    }
    let mut input = CrcReader {
        inner: reader,
        crc: Crc32::new(),
    };
    let n = input.take_u64()? as usize;
    if n > u32::MAX as usize {
        return Err(IoError::Format("node count exceeds u32 index space".into()));
    }
    // Preallocation below is bounded by this cap, not by the untrusted `n`:
    // a corrupt header must produce IoError::Format (via a failed read), not
    // a multi-gigabyte allocation request that aborts the process.
    const PREALLOC_CAP: usize = 1 << 20;
    let epsilon = input.take_f64()?;
    let stats = EstimatorStats {
        node_count: n,
        factor_nnz: input.take_u64()? as usize,
        inverse_nnz: input.take_u64()? as usize,
        inverse_nnz_ratio: input.take_f64()?,
        max_depth: input.take_u64()? as usize,
        ichol_dropped: input.take_u64()? as usize,
        pruned_entries: input.take_u64()? as usize,
    };
    let inv_stats = ApproxInverseStats {
        nnz: 0,
        max_column_nnz: 0,
        pruned_entries: input.take_u64()? as usize,
        small_columns_kept: input.take_u64()? as usize,
    };
    let mut new_to_old = Vec::with_capacity(n.min(PREALLOC_CAP));
    for _ in 0..n {
        new_to_old.push(input.take_u32()? as usize);
    }
    let permutation = Permutation::from_new_to_old(new_to_old)
        .map_err(|e| IoError::Format(format!("invalid permutation: {e}")))?;
    // The columns stream straight into the estimator's flat CSC arena —
    // three contiguous buffers instead of one allocation per column.
    let mut col_ptr = Vec::with_capacity((n + 1).min(PREALLOC_CAP));
    let mut arena_rows: Vec<usize> = Vec::new();
    let mut arena_vals: Vec<f64> = Vec::new();
    col_ptr.push(0usize);
    for j in 0..n {
        let nnz = input.take_u32()? as usize;
        if nnz > n {
            return Err(IoError::Format(format!(
                "column {j} claims {nnz} nonzeros in a {n}-node inverse"
            )));
        }
        let start = arena_rows.len();
        arena_rows.reserve(nnz.min(PREALLOC_CAP));
        for _ in 0..nnz {
            arena_rows.push(input.take_u32()? as usize);
        }
        let column = &arena_rows[start..];
        let sorted = column.windows(2).all(|w| w[0] < w[1]);
        if !sorted || column.last().is_some_and(|&i| i >= n) {
            return Err(IoError::Format(format!(
                "column {j} indices are not strictly increasing within 0..{n}"
            )));
        }
        arena_vals.reserve(nnz.min(PREALLOC_CAP));
        for _ in 0..nnz {
            let v = input.take_f64()?;
            if !v.is_finite() {
                return Err(IoError::Format(format!("non-finite value in column {j}")));
            }
            arena_vals.push(v);
        }
        col_ptr.push(arena_rows.len());
    }
    let labels = match input.take_u8()? {
        0 => None,
        1 => {
            let mut labels = Vec::with_capacity(n.min(PREALLOC_CAP));
            for _ in 0..n {
                labels.push(input.take_u64()?);
            }
            Some(labels)
        }
        other => {
            return Err(IoError::Format(format!("invalid labels flag {other}")));
        }
    };
    let computed = input.crc.finish();
    let mut trailer = [0u8; 4];
    input
        .inner
        .read_exact(&mut trailer)
        .map_err(|_| IoError::Format("truncated snapshot (no checksum)".into()))?;
    let expected = u32::from_le_bytes(trailer);
    if computed != expected {
        return Err(IoError::Format(format!(
            "snapshot checksum mismatch: computed {computed:#010x}, stored {expected:#010x}"
        )));
    }
    let inverse = SparseApproximateInverse::from_arena(
        n, col_ptr, arena_rows, arena_vals, inv_stats, epsilon,
    )?;
    let estimator = EffectiveResistanceEstimator::from_parts(inverse, permutation, stats)?;
    Ok(Snapshot { estimator, labels })
}

/// Writes a snapshot to a file (buffered).
///
/// # Errors
///
/// See [`write_snapshot`].
pub fn save_snapshot(
    path: impl AsRef<Path>,
    estimator: &EffectiveResistanceEstimator,
    labels: Option<&[u64]>,
) -> Result<(), IoError> {
    let file = std::fs::File::create(path)?;
    let mut writer = BufWriter::new(file);
    write_snapshot(&mut writer, estimator, labels)?;
    writer.flush()?;
    Ok(())
}

/// Loads a snapshot from a file (buffered).
///
/// # Errors
///
/// See [`read_snapshot`].
pub fn load_snapshot(path: impl AsRef<Path>) -> Result<Snapshot, IoError> {
    let file = std::fs::File::open(path)?;
    read_snapshot(&mut BufReader::new(file))
}

#[cfg(test)]
mod tests {
    use super::*;
    use effres::EffresConfig;
    use effres_graph::generators;

    fn sample_estimator() -> EffectiveResistanceEstimator {
        let graph = generators::grid_2d(12, 12, 0.5, 2.0, 9).expect("generator");
        EffectiveResistanceEstimator::build(&graph, &EffresConfig::default()).expect("build")
    }

    #[test]
    fn round_trip_preserves_queries_stats_and_labels() {
        let estimator = sample_estimator();
        let labels: Vec<u64> = (0..estimator.node_count() as u64)
            .map(|i| i * 7 + 3)
            .collect();
        let mut bytes = Vec::new();
        write_snapshot(&mut bytes, &estimator, Some(&labels)).expect("write");
        let snapshot = read_snapshot(&mut bytes.as_slice()).expect("read");
        assert_eq!(snapshot.labels.as_deref(), Some(labels.as_slice()));
        assert_eq!(snapshot.estimator.stats(), estimator.stats());
        for &(p, q) in &[(0, 143), (10, 77), (64, 65), (3, 3)] {
            let a = estimator.query(p, q).expect("query");
            let b = snapshot.estimator.query(p, q).expect("query");
            assert_eq!(a, b, "({p},{q})");
        }
    }

    #[test]
    fn no_labels_flag_round_trips() {
        let estimator = sample_estimator();
        let mut bytes = Vec::new();
        write_snapshot(&mut bytes, &estimator, None).expect("write");
        let snapshot = read_snapshot(&mut bytes.as_slice()).expect("read");
        assert!(snapshot.labels.is_none());
    }

    #[test]
    fn corruption_is_detected() {
        let estimator = sample_estimator();
        let mut bytes = Vec::new();
        write_snapshot(&mut bytes, &estimator, None).expect("write");

        // Bad magic.
        let mut bad = bytes.clone();
        bad[0] ^= 0xff;
        assert!(matches!(
            read_snapshot(&mut bad.as_slice()),
            Err(IoError::Format(_))
        ));

        // Bad version.
        let mut bad = bytes.clone();
        bad[8] = 99;
        assert!(matches!(
            read_snapshot(&mut bad.as_slice()),
            Err(IoError::Format(_))
        ));

        // Flipped payload byte → checksum mismatch (or a structural error if
        // the flip lands on a count).
        let mut bad = bytes.clone();
        let mid = bytes.len() / 2;
        bad[mid] ^= 0x01;
        assert!(read_snapshot(&mut bad.as_slice()).is_err());

        // Truncation.
        let cut = &bytes[..bytes.len() - 7];
        assert!(read_snapshot(&mut &cut[..]).is_err());
    }

    #[test]
    fn hostile_header_errors_instead_of_allocating() {
        // A tiny snapshot whose header claims u32::MAX nodes must fail with a
        // clean format error (truncated payload), not abort the process
        // trying to preallocate gigabytes.
        let mut bytes = Vec::new();
        bytes.extend_from_slice(b"EFRSNAP\n");
        bytes.extend_from_slice(&1u32.to_le_bytes());
        bytes.extend_from_slice(&(u32::MAX as u64).to_le_bytes());
        bytes.extend_from_slice(&[0u8; 16]); // a few payload bytes, then EOF
        assert!(matches!(
            read_snapshot(&mut bytes.as_slice()),
            Err(IoError::Format(_))
        ));
    }

    #[test]
    fn wrong_label_length_rejected_at_write_time() {
        let estimator = sample_estimator();
        let labels = vec![1u64; 3];
        let mut bytes = Vec::new();
        assert!(matches!(
            write_snapshot(&mut bytes, &estimator, Some(&labels)),
            Err(IoError::Format(_))
        ));
    }
}
