//! High-level dataset ingestion: file-type dispatch, node-label remapping and
//! largest-connected-component extraction.
//!
//! Real-world graph files (SNAP edge lists, SuiteSparse `.mtx` matrices) come
//! with sparse node-id spaces, duplicate and reversed edges, self-loops and
//! multiple connected components. Effective-resistance queries are only
//! defined within a component, so the standard preparation — the one the
//! paper's experiments use — is to keep the largest connected component and
//! renumber its nodes densely. [`load_graph`] runs that whole pipeline and
//! reports what it did in [`IngestStats`].

use crate::edge_list;
use crate::error::IoError;
use crate::gzip;
use crate::matrix_market;
use effres_graph::builder::{BuildStats, GraphBuilder, MergePolicy};
use effres_graph::components::connected_components;
use effres_graph::Graph;
use std::io::{BufRead, BufReader, Cursor};
use std::path::Path;

/// Knobs of the ingestion pipeline.
#[derive(Debug, Clone, Copy)]
pub struct IngestOptions {
    /// Weight assigned to unweighted records (edge lists without a third
    /// column, `pattern` Matrix Market files).
    pub default_weight: f64,
    /// How to resolve the same undirected pair appearing more than once.
    /// [`MergePolicy::KeepFirst`] is right for datasets listing each edge in
    /// both directions; [`MergePolicy::Sum`] treats repeats as parallel
    /// conductances.
    pub merge: MergePolicy,
    /// Restrict the graph to its largest connected component and renumber
    /// the surviving nodes densely.
    pub keep_largest_component: bool,
}

impl Default for IngestOptions {
    fn default() -> Self {
        IngestOptions {
            default_weight: 1.0,
            merge: MergePolicy::KeepFirst,
            keep_largest_component: true,
        }
    }
}

/// Counters describing one ingestion run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct IngestStats {
    /// Total input lines (including comments and blanks).
    pub lines: usize,
    /// Comment or blank lines skipped.
    pub comments: usize,
    /// Self-loop records skipped.
    pub self_loops: usize,
    /// Explicit zero-valued entries skipped (Matrix Market).
    pub zeros: usize,
    /// Records merged into an already-seen undirected pair.
    pub duplicates: usize,
    /// Distinct nodes in the file before component filtering.
    pub parsed_nodes: usize,
    /// Distinct undirected edges before component filtering.
    pub parsed_edges: usize,
    /// Connected components of the parsed graph.
    pub components: usize,
    /// Nodes surviving component filtering (equals `parsed_nodes` when
    /// filtering is off or the graph is connected).
    pub kept_nodes: usize,
    /// Edges surviving component filtering.
    pub kept_edges: usize,
}

/// An ingested graph plus the bookkeeping to map it back to the file.
#[derive(Debug, Clone)]
pub struct Dataset {
    /// The ingested (possibly component-filtered) graph.
    pub graph: Graph,
    /// `labels[node]` is the node's identifier in the original file (a raw
    /// SNAP node id, or a 1-based Matrix Market index).
    pub labels: Vec<u64>,
    /// What the pipeline saw and did.
    pub stats: IngestStats,
}

impl Dataset {
    /// The original file identifier of a (possibly renumbered) node.
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of bounds.
    pub fn original_label(&self, node: usize) -> u64 {
        self.labels[node]
    }
}

/// Finishes an ingestion run: folds the builder's counters into `stats`,
/// computes components and optionally restricts to the largest one.
pub(crate) fn finalize(
    builder: GraphBuilder,
    labels: Vec<u64>,
    mut stats: IngestStats,
    options: &IngestOptions,
) -> Result<Dataset, IoError> {
    let (graph, build): (Graph, BuildStats) = builder.finish();
    stats.self_loops += build.self_loops_skipped;
    stats.duplicates += build.duplicates_merged;
    stats.parsed_nodes = graph.node_count();
    stats.parsed_edges = graph.edge_count();
    debug_assert_eq!(labels.len(), graph.node_count());

    let components = connected_components(&graph);
    stats.components = components.count();

    if !options.keep_largest_component || components.count() <= 1 {
        stats.kept_nodes = graph.node_count();
        stats.kept_edges = graph.edge_count();
        return Ok(Dataset {
            graph,
            labels,
            stats,
        });
    }

    let mut sizes = vec![0usize; components.count()];
    for &label in components.labels() {
        sizes[label] += 1;
    }
    let largest = sizes
        .iter()
        .enumerate()
        .max_by_key(|&(_, &size)| size)
        .map(|(label, _)| label)
        .expect("at least one component");
    let members = components.members(largest);
    let (sub, mapping) = graph.induced_subgraph(&members)?;
    let sub_labels: Vec<u64> = mapping.iter().map(|&old| labels[old]).collect();
    stats.kept_nodes = sub.node_count();
    stats.kept_edges = sub.edge_count();
    Ok(Dataset {
        graph: sub,
        labels: sub_labels,
        stats,
    })
}

/// Opens a dataset file as a line-oriented reader, transparently decoding
/// gzip (detected by content magic, not extension).
pub fn open_text(path: &Path) -> Result<Box<dyn BufRead>, IoError> {
    let file = std::fs::File::open(path)?;
    let mut reader = BufReader::new(file);
    let head = reader.fill_buf()?;
    if gzip::is_gzip(head) {
        let mut data = Vec::new();
        std::io::Read::read_to_end(&mut reader, &mut data)?;
        let decoded = gzip::gunzip(&data)?;
        Ok(Box::new(Cursor::new(decoded)))
    } else {
        Ok(Box::new(reader))
    }
}

/// Loads a graph dataset, dispatching on the file name: `.mtx` (optionally
/// `.mtx.gz`) is parsed as Matrix Market, anything else as a whitespace edge
/// list (SNAP style). Gzip is detected by content, so a misnamed `.gz` still
/// loads.
pub fn load_graph(path: impl AsRef<Path>, options: &IngestOptions) -> Result<Dataset, IoError> {
    let path = path.as_ref();
    let reader = open_text(path)?;
    let name = path.file_name().and_then(|n| n.to_str()).unwrap_or("");
    let stem = name.strip_suffix(".gz").unwrap_or(name);
    if stem.ends_with(".mtx") {
        matrix_market::read_matrix_market(reader, options)
    } else {
        edge_list::read_edge_list(reader, options)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn write_temp(name: &str, bytes: &[u8]) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join("effres-io-tests");
        std::fs::create_dir_all(&dir).expect("temp dir");
        let path = dir.join(name);
        std::fs::write(&path, bytes).expect("write temp file");
        path
    }

    #[test]
    fn dispatches_on_extension_and_magic() {
        let el = write_temp("dispatch.txt", b"# comment\n0 1\n1 2\n");
        let ds = load_graph(&el, &IngestOptions::default()).expect("edge list");
        assert_eq!(ds.graph.edge_count(), 2);

        let mtx = write_temp(
            "dispatch.mtx",
            b"%%MatrixMarket matrix coordinate pattern symmetric\n3 3 2\n2 1\n3 2\n",
        );
        let ds = load_graph(&mtx, &IngestOptions::default()).expect("matrix market");
        assert_eq!(ds.graph.edge_count(), 2);

        let gz = write_temp("dispatch.txt.gz", &gzip::gzip_stored(b"0 1\n1 2\n2 3\n"));
        let ds = load_graph(&gz, &IngestOptions::default()).expect("gzipped edge list");
        assert_eq!(ds.graph.edge_count(), 3);
    }

    #[test]
    fn largest_component_is_kept_and_labels_track_originals() {
        // Component {10,20}: 1 edge; component {30,40,50}: 2 edges (larger).
        let path = write_temp("components.txt", b"10 20\n30 40\n40 50\n");
        let ds = load_graph(&path, &IngestOptions::default()).expect("load");
        assert_eq!(ds.stats.components, 2);
        assert_eq!(ds.graph.node_count(), 3);
        assert_eq!(ds.stats.kept_nodes, 3);
        assert_eq!(ds.stats.parsed_nodes, 5);
        let mut labels = ds.labels.clone();
        labels.sort_unstable();
        assert_eq!(labels, vec![30, 40, 50]);

        let keep_all = IngestOptions {
            keep_largest_component: false,
            ..IngestOptions::default()
        };
        let ds = load_graph(&path, &keep_all).expect("load");
        assert_eq!(ds.graph.node_count(), 5);
    }
}
