//! Deterministic fault injection and retry policy for the paged store.
//!
//! Out-of-core serving turns disk faults from a boot-time event into a
//! steady-state one: every query is a positioned read away from an `EIO`,
//! a short read off a flaky NFS mount, or a flipped byte. The paged store
//! therefore retries transient read failures with bounded exponential
//! backoff ([`RetryPolicy`]) and re-fetches pages that fail validation once
//! before surfacing a typed per-column failure — and this module provides
//! the *deterministic* fault source that proves those paths work:
//! [`FaultPlan`], a seeded schedule of injected faults applied behind the
//! positioned-read seam of
//! [`PagedColumnStore`](crate::paged::PagedColumnStore).
//!
//! The schedule is a pure function of `(seed, file offset, attempt index)`
//! — no global counter, no wall clock — so whether a given read attempt
//! faults does not depend on thread interleaving: a chaos run with a fixed
//! seed injects the same faults every time, on every machine, and a retried
//! attempt re-rolls (same offset, next attempt index) instead of hitting
//! the same fault forever. Three fault shapes are modeled:
//!
//! * **transient read errors** ([`FaultPlan::with_transient_errors`]) — the
//!   read fails with an I/O error; a retry at the same offset draws a fresh
//!   (seeded) outcome, so bounded retry absorbs them;
//! * **short reads** ([`FaultPlan::with_short_reads`]) — the read returns
//!   [`std::io::ErrorKind::UnexpectedEof`], the shape a truncated-by-a-race
//!   file or interrupted `pread` produces; retried identically;
//! * **byte corruption** ([`FaultPlan::poison`] /
//!   [`FaultPlan::poison_until_refetch`]) — reads covering a poisoned byte
//!   range observe `0xFF` bytes there. *Persistent* poison survives
//!   re-fetching (a genuinely rotten sector): page validation fails twice
//!   and the store surfaces a typed
//!   [`StoreFailure`](effres::EffresError::StoreFailure). *Transient* poison
//!   clears on the re-fetch pass (corruption in transit, not at rest), which
//!   is exactly the case the fetch-validate-refetch cycle exists for.
//!
//! Injection is compiled in unconditionally but costs nothing when no plan
//! is installed (one `Option` check per read); production opens simply never
//! install one. Poisoning `0xFF` into the *high bytes of a value* is the
//! recommended way to model detectable at-rest corruption: `0xFF 0xFF` in
//! an `f64`'s exponent bytes decodes as NaN, which page validation rejects
//! deterministically. (Corruption that keeps values finite is explicitly
//! outside the structural checks' trust model — see the module docs of
//! [`crate::paged`].)

use std::time::Duration;

/// Attempt index at which a validation-failure re-fetch re-reads a page
/// (see [`crate::paged::PagedColumnStore`]): far above any retry attempt of
/// the first fetch, so transient poison (and one-shot fault rolls) resolve
/// differently on the re-fetch pass.
pub(crate) const REFETCH_ATTEMPT_BASE: u32 = 32;

/// Bounded retry-with-backoff applied to every positioned read of a paged
/// store (installed via
/// [`PagedOptions::retry`](crate::paged::PagedOptions::retry)).
///
/// A read that fails is retried up to `max_retries` more times, sleeping
/// `backoff · 2^attempt` (capped at 64× the base) between attempts. The
/// fault-free path never consults the policy beyond a branch, so retry
/// support costs nothing when reads succeed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Additional attempts after the first failed read (`0` fails fast).
    pub max_retries: u32,
    /// Base backoff slept before the first retry; doubles per attempt.
    pub backoff: Duration,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_retries: 3,
            backoff: Duration::from_micros(250),
        }
    }
}

impl RetryPolicy {
    /// No retries: every read failure surfaces immediately.
    pub fn none() -> Self {
        RetryPolicy {
            max_retries: 0,
            backoff: Duration::ZERO,
        }
    }

    /// The backoff to sleep before retry number `attempt` (0-based):
    /// exponential, capped at 64× the base so a deep retry never sleeps
    /// unboundedly.
    pub fn backoff_for(&self, attempt: u32) -> Duration {
        self.backoff * (1u32 << attempt.min(6))
    }
}

/// How long a poisoned byte range stays poisoned.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum PoisonLife {
    /// Every read observes the corruption (rot at rest): validation fails on
    /// fetch *and* re-fetch, so the store surfaces a typed failure.
    Persistent,
    /// Only first-fetch attempts observe it (corruption in transit): the
    /// validation-failure re-fetch reads clean bytes and the page serves.
    UntilRefetch,
}

/// A seeded, deterministic schedule of injected read faults (see the module
/// docs). Installed at open time via
/// [`open_paged_with_faults`](crate::paged::open_paged_with_faults); plans
/// are immutable and `Send + Sync`, shared freely by concurrent readers.
#[derive(Debug, Clone)]
pub struct FaultPlan {
    seed: u64,
    transient_error_ppm: u32,
    short_read_ppm: u32,
    poisoned: Vec<(u64, u64, PoisonLife)>,
}

/// The outcome of consulting a [`FaultPlan`] for one read attempt.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum ReadFault {
    /// Perform the real read (poison, if any, is applied afterwards).
    None,
    /// Fail the attempt with a generic I/O error.
    TransientError,
    /// Fail the attempt as a short read (`UnexpectedEof`).
    ShortRead,
}

impl FaultPlan {
    /// An empty plan (injects nothing) with the given seed.
    pub fn new(seed: u64) -> Self {
        FaultPlan {
            seed,
            transient_error_ppm: 0,
            short_read_ppm: 0,
            poisoned: Vec::new(),
        }
    }

    /// Sets the per-read-attempt probability of a transient I/O error, in
    /// parts per million (clamped to 1e6).
    #[must_use]
    pub fn with_transient_errors(mut self, ppm: u32) -> Self {
        self.transient_error_ppm = ppm.min(1_000_000);
        self
    }

    /// Sets the per-read-attempt probability of a short read, in parts per
    /// million (clamped to 1e6).
    #[must_use]
    pub fn with_short_reads(mut self, ppm: u32) -> Self {
        self.short_read_ppm = ppm.min(1_000_000);
        self
    }

    /// Poisons `len` bytes at file `offset` persistently: every read
    /// covering the range observes `0xFF` there, including the
    /// validation-failure re-fetch, so the store reports a typed per-column
    /// failure for the affected page.
    #[must_use]
    pub fn poison(mut self, offset: u64, len: u64) -> Self {
        self.poisoned.push((offset, len, PoisonLife::Persistent));
        self
    }

    /// Poisons `len` bytes at file `offset` until the re-fetch pass: the
    /// first fetch of a covering page observes the corruption and fails
    /// validation, the automatic re-fetch reads clean bytes, and the page
    /// serves normally (observable as a retry in the page-cache stats).
    #[must_use]
    pub fn poison_until_refetch(mut self, offset: u64, len: u64) -> Self {
        self.poisoned.push((offset, len, PoisonLife::UntilRefetch));
        self
    }

    /// Whether the plan can inject anything at all.
    pub fn is_empty(&self) -> bool {
        self.transient_error_ppm == 0 && self.short_read_ppm == 0 && self.poisoned.is_empty()
    }

    /// The seeded outcome of read attempt `attempt` at file `offset`: a pure
    /// function of `(seed, offset, attempt)` so schedules are reproducible
    /// under any thread interleaving, and a retry (next `attempt`) re-rolls
    /// instead of replaying the same fault.
    pub(crate) fn read_fault(&self, offset: u64, attempt: u32) -> ReadFault {
        if self.transient_error_ppm == 0 && self.short_read_ppm == 0 {
            return ReadFault::None;
        }
        let keyed =
            self.seed ^ offset.wrapping_mul(0x9e37_79b9_7f4a_7c15) ^ (u64::from(attempt) << 48);
        let draw = (mix64(keyed) % 1_000_000) as u32;
        if draw < self.transient_error_ppm {
            ReadFault::TransientError
        } else if draw < self.transient_error_ppm + self.short_read_ppm {
            ReadFault::ShortRead
        } else {
            ReadFault::None
        }
    }

    /// Overwrites with `0xFF` every poisoned byte the buffer read at
    /// `offset` covers, honoring each range's lifetime against `attempt`.
    /// Returns whether anything was poisoned.
    pub(crate) fn apply_poison(&self, buf: &mut [u8], offset: u64, attempt: u32) -> bool {
        let mut hit = false;
        let end = offset + buf.len() as u64;
        for &(at, len, life) in &self.poisoned {
            if life == PoisonLife::UntilRefetch && attempt >= REFETCH_ATTEMPT_BASE {
                continue;
            }
            let lo = at.max(offset);
            let hi = at.saturating_add(len).min(end);
            if lo < hi {
                buf[(lo - offset) as usize..(hi - offset) as usize].fill(0xFF);
                hit = true;
            }
        }
        hit
    }
}

/// SplitMix64 finalizer: the same bit mixer the page cache and batch
/// generators use for seeded determinism.
fn mix64(mut h: u64) -> u64 {
    h = h.wrapping_add(0x9e37_79b9_7f4a_7c15);
    h = (h ^ (h >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    h = (h ^ (h >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    h ^ (h >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_plan_injects_nothing() {
        let plan = FaultPlan::new(42);
        assert!(plan.is_empty());
        for offset in [0u64, 17, 4096, 1 << 33] {
            for attempt in 0..8 {
                assert_eq!(plan.read_fault(offset, attempt), ReadFault::None);
            }
        }
        let mut buf = [1u8; 16];
        assert!(!plan.apply_poison(&mut buf, 0, 0));
        assert_eq!(buf, [1u8; 16]);
    }

    #[test]
    fn schedules_are_deterministic_and_attempt_sensitive() {
        let plan = FaultPlan::new(7).with_transient_errors(300_000);
        let replay = FaultPlan::new(7).with_transient_errors(300_000);
        let mut faulted = 0usize;
        let mut rerolled = 0usize;
        for read in 0..10_000u64 {
            let offset = read * 4096;
            let first = plan.read_fault(offset, 0);
            assert_eq!(
                first,
                replay.read_fault(offset, 0),
                "same seed, same schedule"
            );
            if first == ReadFault::TransientError {
                faulted += 1;
                if plan.read_fault(offset, 1) == ReadFault::None {
                    rerolled += 1;
                }
            }
        }
        // ~30% fault rate, and retries re-roll rather than replaying.
        assert!((2_000..4_000).contains(&faulted), "fault count {faulted}");
        assert!(rerolled > faulted / 2, "retries must draw fresh outcomes");
    }

    #[test]
    fn fault_mix_respects_the_configured_rates() {
        let plan = FaultPlan::new(3)
            .with_transient_errors(100_000)
            .with_short_reads(100_000);
        let (mut errors, mut shorts) = (0usize, 0usize);
        for read in 0..20_000u64 {
            match plan.read_fault(read * 512, 0) {
                ReadFault::TransientError => errors += 1,
                ReadFault::ShortRead => shorts += 1,
                ReadFault::None => {}
            }
        }
        assert!((1_000..3_000).contains(&errors), "errors {errors}");
        assert!((1_000..3_000).contains(&shorts), "shorts {shorts}");
    }

    #[test]
    fn poison_overwrites_exactly_the_overlap() {
        let plan = FaultPlan::new(0).poison(10, 4);
        let mut buf = [0u8; 8];
        // Read covering bytes 8..16: poison lands on buffer indices 2..6.
        assert!(plan.apply_poison(&mut buf, 8, 0));
        assert_eq!(buf, [0, 0, 0xFF, 0xFF, 0xFF, 0xFF, 0, 0]);
        // Disjoint read: untouched.
        let mut clean = [0u8; 8];
        assert!(!plan.apply_poison(&mut clean, 100, 0));
        assert_eq!(clean, [0u8; 8]);
    }

    #[test]
    fn transient_poison_clears_on_the_refetch_pass() {
        let plan = FaultPlan::new(0).poison_until_refetch(0, 2);
        let mut buf = [0u8; 4];
        assert!(plan.apply_poison(&mut buf, 0, 0));
        assert_eq!(&buf[..2], &[0xFF, 0xFF]);
        let mut refetched = [0u8; 4];
        assert!(!plan.apply_poison(&mut refetched, 0, REFETCH_ATTEMPT_BASE));
        assert_eq!(refetched, [0u8; 4]);
    }

    #[test]
    fn backoff_grows_exponentially_and_caps() {
        let policy = RetryPolicy {
            max_retries: 10,
            backoff: Duration::from_micros(100),
        };
        assert_eq!(policy.backoff_for(0), Duration::from_micros(100));
        assert_eq!(policy.backoff_for(1), Duration::from_micros(200));
        assert_eq!(policy.backoff_for(6), Duration::from_micros(6_400));
        assert_eq!(policy.backoff_for(60), Duration::from_micros(6_400));
        assert_eq!(RetryPolicy::none().max_retries, 0);
    }
}
