//! Matrix Market (`.mtx`) coordinate files, read as graphs.
//!
//! SuiteSparse and many circuit benchmarks publish graphs as sparse
//! symmetric matrices in the NIST Matrix Market exchange format: a
//! `%%MatrixMarket matrix coordinate <field> <symmetry>` header, `%` comment
//! lines, a `rows cols nnz` size line, then 1-indexed `i j [value]` entries.
//!
//! The reader accepts `real`, `integer` and `pattern` fields with `general`
//! or `symmetric` symmetry. Entries become undirected edges with weight
//! `|value|` — the natural reading when the matrix is a Laplacian or
//! adjacency matrix (Laplacian off-diagonals are negative conductances);
//! diagonal entries and explicit zeros are skipped and counted.

use crate::dataset::{finalize, Dataset, IngestOptions, IngestStats};
use crate::error::IoError;
use effres_graph::builder::GraphBuilder;
use effres_graph::Graph;
use std::io::{BufRead, Write};

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Field {
    Real,
    Integer,
    Pattern,
}

/// Parses a Matrix Market coordinate file as an undirected graph.
///
/// # Errors
///
/// Returns [`IoError::Format`] for an unsupported or malformed header and
/// [`IoError::Parse`] (with line numbers) for malformed entries, including
/// out-of-range 1-indexed coordinates.
pub fn read_matrix_market<R: BufRead>(
    reader: R,
    options: &IngestOptions,
) -> Result<Dataset, IoError> {
    let mut lines = reader.lines().enumerate();
    let mut stats = IngestStats::default();

    // Header: %%MatrixMarket matrix coordinate <field> <symmetry>
    let (_, header) = lines
        .next()
        .ok_or_else(|| IoError::Format("empty Matrix Market file".into()))?;
    let header = header?;
    stats.lines = 1;
    let field = parse_header(&header)?;

    // Size line: first non-comment line after the header.
    let (rows, cols, nnz) = loop {
        let (index, line) = lines
            .next()
            .ok_or_else(|| IoError::Format("Matrix Market file has no size line".into()))?;
        let line = line?;
        let number = index + 1;
        stats.lines = number;
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('%') {
            stats.comments += 1;
            continue;
        }
        let mut tokens = trimmed.split_whitespace();
        match (tokens.next(), tokens.next(), tokens.next(), tokens.next()) {
            (Some(r), Some(c), Some(z), None) => {
                let parse = |t: &str| -> Result<usize, IoError> {
                    t.parse().map_err(|_| IoError::Parse {
                        line: number,
                        message: format!("invalid size entry `{t}`"),
                    })
                };
                break (parse(r)?, parse(c)?, parse(z)?);
            }
            _ => {
                return Err(IoError::Parse {
                    line: number,
                    message: format!("expected `rows cols nnz`, found `{trimmed}`"),
                })
            }
        }
    };
    if rows != cols {
        return Err(IoError::Format(format!(
            "matrix is {rows}x{cols}; only square matrices describe graphs"
        )));
    }
    if rows > u32::MAX as usize {
        return Err(IoError::Format(format!(
            "matrix order {rows} exceeds the supported u32 node-id space"
        )));
    }

    // Capacity is a hint, capped so a hostile size line cannot force a huge
    // allocation before a single entry has been read.
    let mut builder = GraphBuilder::with_capacity(options.merge, nnz.min(1 << 20));
    builder.ensure_node(rows.saturating_sub(1));
    let mut entries = 0usize;
    for (index, line) in lines {
        let line = line?;
        let number = index + 1;
        stats.lines = number;
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('%') {
            stats.comments += 1;
            continue;
        }
        entries += 1;
        let mut tokens = trimmed.split_whitespace();
        let (i, j) = match (tokens.next(), tokens.next()) {
            (Some(a), Some(b)) => (parse_coord(a, number, rows)?, parse_coord(b, number, cols)?),
            _ => {
                return Err(IoError::Parse {
                    line: number,
                    message: format!("expected `i j [value]`, found `{trimmed}`"),
                })
            }
        };
        let value = match (field, tokens.next()) {
            (Field::Pattern, None) => options.default_weight,
            (Field::Pattern, Some(extra)) => {
                return Err(IoError::Parse {
                    line: number,
                    message: format!("pattern entry has a value `{extra}`"),
                })
            }
            (_, Some(v)) => v.parse::<f64>().map_err(|_| IoError::Parse {
                line: number,
                message: format!("invalid value `{v}`"),
            })?,
            (_, None) => {
                return Err(IoError::Parse {
                    line: number,
                    message: "missing value for real/integer entry".into(),
                })
            }
        };
        if tokens.next().is_some() {
            return Err(IoError::Parse {
                line: number,
                message: format!("too many columns in `{trimmed}`"),
            });
        }
        if value == 0.0 {
            stats.zeros += 1;
            continue;
        }
        // i == j (a diagonal entry) is skipped by the builder's self-loop
        // handling and counted in the stats.
        builder
            .add_edge(i, j, value.abs())
            .map_err(IoError::Graph)?;
    }
    if entries != nnz {
        return Err(IoError::Format(format!(
            "size line promised {nnz} entries but the file has {entries}"
        )));
    }
    // Matrix Market nodes are dense already; keep their 1-based ids as labels.
    let labels: Vec<u64> = (1..=rows as u64).collect();
    finalize(builder, labels, stats, options)
}

fn parse_header(header: &str) -> Result<Field, IoError> {
    let lower = header.to_ascii_lowercase();
    let mut tokens = lower.split_whitespace();
    if tokens.next() != Some("%%matrixmarket") {
        return Err(IoError::Format(format!(
            "not a Matrix Market file (header `{header}`)"
        )));
    }
    if tokens.next() != Some("matrix") {
        return Err(IoError::Format(
            "only `matrix` objects are supported".into(),
        ));
    }
    if tokens.next() != Some("coordinate") {
        return Err(IoError::Format(
            "only `coordinate` (sparse) format is supported".into(),
        ));
    }
    let field = match tokens.next() {
        Some("real") => Field::Real,
        Some("integer") => Field::Integer,
        Some("pattern") => Field::Pattern,
        other => {
            return Err(IoError::Format(format!(
                "unsupported field `{}`",
                other.unwrap_or("<missing>")
            )))
        }
    };
    match tokens.next() {
        Some("general") | Some("symmetric") => Ok(field),
        other => Err(IoError::Format(format!(
            "unsupported symmetry `{}`",
            other.unwrap_or("<missing>")
        ))),
    }
}

fn parse_coord(token: &str, line: usize, bound: usize) -> Result<usize, IoError> {
    let value: usize = token.parse().map_err(|_| IoError::Parse {
        line,
        message: format!("invalid coordinate `{token}`"),
    })?;
    if value == 0 || value > bound {
        return Err(IoError::Parse {
            line,
            message: format!("coordinate {value} outside 1..={bound}"),
        });
    }
    Ok(value - 1)
}

/// Writes a graph as a symmetric real coordinate Matrix Market file
/// (1-indexed, lower triangle, one entry per undirected edge).
///
/// # Errors
///
/// Returns [`IoError::Io`] on write failure.
pub fn write_matrix_market<W: Write>(writer: &mut W, graph: &Graph) -> Result<(), IoError> {
    writeln!(writer, "%%MatrixMarket matrix coordinate real symmetric")?;
    writeln!(writer, "% written by effres-io")?;
    writeln!(
        writer,
        "{} {} {}",
        graph.node_count(),
        graph.node_count(),
        graph.edge_count()
    )?;
    for (_, edge) in graph.edges() {
        // Lower triangle: row index >= column index, both 1-based.
        writeln!(writer, "{} {} {}", edge.v + 1, edge.u + 1, edge.weight)?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    fn read(text: &str) -> Result<Dataset, IoError> {
        read_matrix_market(Cursor::new(text.to_string()), &IngestOptions::default())
    }

    #[test]
    fn parses_real_symmetric_with_comments_and_diagonal() {
        let ds = read(
            "%%MatrixMarket matrix coordinate real symmetric\n\
             % a Laplacian\n\
             3 3 5\n\
             1 1 2.0\n\
             2 1 -1.0\n\
             2 2 2.0\n\
             3 2 -1.5\n\
             3 3 1.5\n",
        )
        .expect("parse");
        // Diagonal entries become skipped self-loops; off-diagonals edges.
        assert_eq!(ds.stats.self_loops, 3);
        assert_eq!(ds.graph.edge_count(), 2);
        // Negative conductances are read by magnitude.
        assert_eq!(ds.graph.edge(1).weight, 1.5);
        assert_eq!(ds.labels, vec![1, 2, 3]);
    }

    #[test]
    fn pattern_files_use_default_weight() {
        let ds = read(
            "%%MatrixMarket matrix coordinate pattern general\n\
             4 4 3\n\
             2 1\n\
             3 2\n\
             4 3\n",
        )
        .expect("parse");
        assert_eq!(ds.graph.edge_count(), 3);
        assert!(ds.graph.edges().all(|(_, e)| e.weight == 1.0));
    }

    #[test]
    fn one_indexing_is_respected() {
        // Entry `1 2` must be edge (0, 1), and index 0 or > n must fail.
        let ds =
            read("%%MatrixMarket matrix coordinate pattern general\n2 2 1\n1 2\n").expect("parse");
        assert_eq!(ds.graph.edge(0).u, 0);
        assert_eq!(ds.graph.edge(0).v, 1);
        let err = read("%%MatrixMarket matrix coordinate pattern general\n2 2 1\n0 2\n")
            .expect_err("0 is out of range");
        assert!(matches!(err, IoError::Parse { line: 3, .. }), "{err}");
        let err = read("%%MatrixMarket matrix coordinate pattern general\n2 2 1\n1 3\n")
            .expect_err("3 is out of range");
        assert!(matches!(err, IoError::Parse { line: 3, .. }), "{err}");
    }

    #[test]
    fn bad_headers_and_counts_are_rejected() {
        assert!(matches!(read("junk\n1 1 0\n"), Err(IoError::Format(_))));
        assert!(matches!(
            read("%%MatrixMarket matrix array real general\n"),
            Err(IoError::Format(_))
        ));
        assert!(matches!(
            read("%%MatrixMarket matrix coordinate complex general\n1 1 0\n"),
            Err(IoError::Format(_))
        ));
        assert!(matches!(
            read("%%MatrixMarket matrix coordinate real general\n2 3 0\n"),
            Err(IoError::Format(_))
        ));
        // Promised 2 entries, delivered 1.
        assert!(matches!(
            read("%%MatrixMarket matrix coordinate pattern general\n2 2 2\n1 2\n"),
            Err(IoError::Format(_))
        ));
    }

    #[test]
    fn hostile_size_line_errors_instead_of_allocating() {
        // A header claiming a trillion-node matrix must fail cleanly, not
        // abort on preallocation.
        let err = read(
            "%%MatrixMarket matrix coordinate pattern general\n\
             999999999999 999999999999 999999999999\n",
        )
        .expect_err("must be rejected");
        assert!(matches!(err, IoError::Format(_)), "{err}");
    }

    #[test]
    fn explicit_zeros_are_skipped() {
        let ds = read("%%MatrixMarket matrix coordinate real general\n3 3 2\n1 2 0.0\n2 3 1.0\n")
            .expect("parse");
        assert_eq!(ds.stats.zeros, 1);
        assert_eq!(ds.graph.edge_count(), 1);
    }

    #[test]
    fn write_then_read_round_trips() {
        let ds = read(
            "%%MatrixMarket matrix coordinate real symmetric\n\
             4 4 4\n\
             2 1 1.0\n\
             3 2 2.0\n\
             4 3 0.5\n\
             4 1 1.25\n",
        )
        .expect("parse");
        let mut bytes = Vec::new();
        write_matrix_market(&mut bytes, &ds.graph).expect("write");
        let back = read(std::str::from_utf8(&bytes).expect("utf8")).expect("reparse");
        assert_eq!(back.graph, ds.graph);
    }
}
