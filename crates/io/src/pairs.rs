//! Query-pair files: one `p q` pair per line, `#`/`%` comments.
//!
//! These drive the batched workloads of `effres-cli batch`: a pair file is
//! parsed into the `(p, q)` list handed to the query engine. Ids are the
//! *dataset* ids (the original file labels); the CLI translates them to the
//! dense node space via [`Dataset::labels`].
//!
//! [`Dataset::labels`]: crate::dataset::Dataset

use crate::error::IoError;
use std::io::{BufRead, Write};

/// Parses a pair file into `(p, q)` tuples of raw (dataset) ids.
///
/// # Errors
///
/// Returns [`IoError::Parse`] with the line number for malformed lines.
pub fn read_pairs<R: BufRead>(reader: R) -> Result<Vec<(u64, u64)>, IoError> {
    let mut pairs = Vec::new();
    for (index, line) in reader.lines().enumerate() {
        let line = line?;
        let number = index + 1;
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('#') || trimmed.starts_with('%') {
            continue;
        }
        let mut tokens = trimmed.split_whitespace();
        let pair = match (tokens.next(), tokens.next(), tokens.next()) {
            (Some(p), Some(q), None) => {
                let parse = |t: &str| -> Result<u64, IoError> {
                    t.parse().map_err(|_| IoError::Parse {
                        line: number,
                        message: format!("invalid node id `{t}`"),
                    })
                };
                (parse(p)?, parse(q)?)
            }
            _ => {
                return Err(IoError::Parse {
                    line: number,
                    message: format!("expected `p q`, found `{trimmed}`"),
                })
            }
        };
        pairs.push(pair);
    }
    Ok(pairs)
}

/// Writes pairs in the format [`read_pairs`] accepts.
///
/// # Errors
///
/// Returns [`IoError::Io`] on write failure.
pub fn write_pairs<W: Write>(writer: &mut W, pairs: &[(u64, u64)]) -> Result<(), IoError> {
    for &(p, q) in pairs {
        writeln!(writer, "{p} {q}")?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    #[test]
    fn parses_pairs_with_comments() {
        let pairs = read_pairs(Cursor::new("# queries\n0 5\n\n7 2\n")).expect("parse");
        assert_eq!(pairs, vec![(0, 5), (7, 2)]);
    }

    #[test]
    fn rejects_malformed_lines() {
        let err = read_pairs(Cursor::new("0 1\n2\n")).expect_err("must fail");
        assert!(matches!(err, IoError::Parse { line: 2, .. }), "{err}");
        let err = read_pairs(Cursor::new("0 1 2\n")).expect_err("must fail");
        assert!(matches!(err, IoError::Parse { line: 1, .. }), "{err}");
        let err = read_pairs(Cursor::new("a b\n")).expect_err("must fail");
        assert!(matches!(err, IoError::Parse { line: 1, .. }), "{err}");
    }

    #[test]
    fn write_read_round_trip() {
        let pairs = vec![(3u64, 9u64), (0, 0), (12, 4)];
        let mut bytes = Vec::new();
        write_pairs(&mut bytes, &pairs).expect("write");
        assert_eq!(read_pairs(Cursor::new(bytes)).expect("read"), pairs);
    }
}
