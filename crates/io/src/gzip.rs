//! Pure-std gzip support.
//!
//! The build environment has no third-party crates, so this module carries
//! its own RFC 1951 DEFLATE decoder (stored, fixed-Huffman and
//! dynamic-Huffman blocks — the classic `puff` decoding algorithm) wrapped in
//! the RFC 1952 gzip container, plus a gzip *writer* that emits stored
//! (uncompressed) blocks. The writer trades size for simplicity; its output
//! is a perfectly valid `.gz` file that any tool — including this decoder —
//! can read, which is all the round-trip tests and the CLI need.

use crate::error::IoError;

/// gzip magic bytes.
const MAGIC: [u8; 2] = [0x1f, 0x8b];

/// Whether `data` starts with the gzip magic.
pub fn is_gzip(data: &[u8]) -> bool {
    data.len() >= 2 && data[0..2] == MAGIC
}

// ---------------------------------------------------------------------------
// CRC-32 (IEEE), used by the gzip trailer and the snapshot format.
// ---------------------------------------------------------------------------

/// Streaming CRC-32 (IEEE polynomial, as used by gzip).
#[derive(Debug, Clone)]
pub struct Crc32 {
    table: [u32; 256],
    state: u32,
}

impl Default for Crc32 {
    fn default() -> Self {
        Self::new()
    }
}

impl Crc32 {
    /// A fresh hasher.
    pub fn new() -> Self {
        let mut table = [0u32; 256];
        for (n, slot) in table.iter_mut().enumerate() {
            let mut c = n as u32;
            for _ in 0..8 {
                c = if c & 1 == 1 {
                    0xedb8_8320 ^ (c >> 1)
                } else {
                    c >> 1
                };
            }
            *slot = c;
        }
        Crc32 { table, state: 0 }
    }

    /// Absorbs `data`.
    pub fn update(&mut self, data: &[u8]) {
        let mut c = self.state ^ 0xffff_ffff;
        for &byte in data {
            c = self.table[((c ^ byte as u32) & 0xff) as usize] ^ (c >> 8);
        }
        self.state = c ^ 0xffff_ffff;
    }

    /// The checksum of everything absorbed so far.
    pub fn finish(&self) -> u32 {
        self.state
    }
}

/// CRC-32 of a byte slice.
pub fn crc32(data: &[u8]) -> u32 {
    let mut c = Crc32::new();
    c.update(data);
    c.finish()
}

// ---------------------------------------------------------------------------
// DEFLATE decoding.
// ---------------------------------------------------------------------------

struct BitReader<'a> {
    data: &'a [u8],
    /// Next unread byte.
    pos: usize,
    /// Bit buffer, LSB first.
    buf: u32,
    /// Number of valid bits in `buf`.
    nbits: u32,
}

impl<'a> BitReader<'a> {
    fn new(data: &'a [u8]) -> Self {
        BitReader {
            data,
            pos: 0,
            buf: 0,
            nbits: 0,
        }
    }

    fn bits(&mut self, n: u32) -> Result<u32, IoError> {
        debug_assert!(n <= 16);
        while self.nbits < n {
            let byte = *self
                .data
                .get(self.pos)
                .ok_or_else(|| IoError::Compression("unexpected end of deflate stream".into()))?;
            self.buf |= (byte as u32) << self.nbits;
            self.nbits += 8;
            self.pos += 1;
        }
        let value = self.buf & ((1u32 << n) - 1);
        self.buf >>= n;
        self.nbits -= n;
        Ok(value)
    }

    /// Discards buffered bits so the reader sits on a byte boundary.
    fn align_to_byte(&mut self) {
        self.buf = 0;
        self.nbits = 0;
    }

    fn take_bytes(&mut self, n: usize) -> Result<&'a [u8], IoError> {
        debug_assert_eq!(self.nbits, 0);
        let end = self
            .pos
            .checked_add(n)
            .filter(|&e| e <= self.data.len())
            .ok_or_else(|| IoError::Compression("truncated stored block".into()))?;
        let slice = &self.data[self.pos..end];
        self.pos = end;
        Ok(slice)
    }
}

/// Canonical Huffman decoding table (the `puff.c` counts/symbols scheme).
struct Huffman {
    /// counts[len] = number of codes of bit length `len`.
    counts: [u16; 16],
    /// Symbols sorted by (code length, symbol value).
    symbols: Vec<u16>,
}

impl Huffman {
    fn new(lengths: &[u8]) -> Result<Self, IoError> {
        let mut counts = [0u16; 16];
        for &len in lengths {
            if len as usize >= 16 {
                return Err(IoError::Compression("code length exceeds 15".into()));
            }
            counts[len as usize] += 1;
        }
        if counts[0] as usize == lengths.len() {
            // No codes at all: legal for an unused distance table.
            return Ok(Huffman {
                counts,
                symbols: Vec::new(),
            });
        }
        // Check the code is complete or over-subscribed exactly like puff.
        let mut left = 1i32;
        for len in 1..16 {
            left <<= 1;
            left -= counts[len] as i32;
            if left < 0 {
                return Err(IoError::Compression("over-subscribed Huffman code".into()));
            }
        }
        let mut offsets = [0u16; 16];
        for len in 1..15 {
            offsets[len + 1] = offsets[len] + counts[len];
        }
        let mut symbols = vec![0u16; lengths.len()];
        for (symbol, &len) in lengths.iter().enumerate() {
            if len != 0 {
                symbols[offsets[len as usize] as usize] = symbol as u16;
                offsets[len as usize] += 1;
            }
        }
        symbols.truncate(lengths.iter().filter(|&&l| l != 0).count());
        Ok(Huffman { counts, symbols })
    }

    fn decode(&self, reader: &mut BitReader<'_>) -> Result<u16, IoError> {
        let mut code = 0i32;
        let mut first = 0i32;
        let mut index = 0i32;
        for len in 1..16 {
            code |= reader.bits(1)? as i32;
            let count = self.counts[len] as i32;
            if code - first < count {
                return Ok(self.symbols[(index + (code - first)) as usize]);
            }
            index += count;
            first = (first + count) << 1;
            code <<= 1;
        }
        Err(IoError::Compression("invalid Huffman code".into()))
    }
}

const LENGTH_BASE: [u16; 29] = [
    3, 4, 5, 6, 7, 8, 9, 10, 11, 13, 15, 17, 19, 23, 27, 31, 35, 43, 51, 59, 67, 83, 99, 115, 131,
    163, 195, 227, 258,
];
const LENGTH_EXTRA: [u32; 29] = [
    0, 0, 0, 0, 0, 0, 0, 0, 1, 1, 1, 1, 2, 2, 2, 2, 3, 3, 3, 3, 4, 4, 4, 4, 5, 5, 5, 5, 0,
];
const DIST_BASE: [u16; 30] = [
    1, 2, 3, 4, 5, 7, 9, 13, 17, 25, 33, 49, 65, 97, 129, 193, 257, 385, 513, 769, 1025, 1537,
    2049, 3073, 4097, 6145, 8193, 12289, 16385, 24577,
];
const DIST_EXTRA: [u32; 30] = [
    0, 0, 0, 0, 1, 1, 2, 2, 3, 3, 4, 4, 5, 5, 6, 6, 7, 7, 8, 8, 9, 9, 10, 10, 11, 11, 12, 12, 13,
    13,
];
/// Order in which code-length code lengths are stored in a dynamic block.
const CLEN_ORDER: [usize; 19] = [
    16, 17, 18, 0, 8, 7, 9, 6, 10, 5, 11, 4, 12, 3, 13, 2, 14, 1, 15,
];

fn inflate_block(
    reader: &mut BitReader<'_>,
    out: &mut Vec<u8>,
    litlen: &Huffman,
    dist: &Huffman,
) -> Result<(), IoError> {
    loop {
        let symbol = litlen.decode(reader)?;
        match symbol {
            0..=255 => out.push(symbol as u8),
            256 => return Ok(()),
            257..=285 => {
                let idx = (symbol - 257) as usize;
                let length = LENGTH_BASE[idx] as usize + reader.bits(LENGTH_EXTRA[idx])? as usize;
                let dsym = dist.decode(reader)? as usize;
                if dsym >= 30 {
                    return Err(IoError::Compression("invalid distance symbol".into()));
                }
                let distance = DIST_BASE[dsym] as usize + reader.bits(DIST_EXTRA[dsym])? as usize;
                if distance > out.len() {
                    return Err(IoError::Compression("distance beyond output start".into()));
                }
                let start = out.len() - distance;
                // Byte-by-byte because ranges may overlap (run-length copies).
                for i in 0..length {
                    let byte = out[start + i];
                    out.push(byte);
                }
            }
            _ => return Err(IoError::Compression("invalid literal/length symbol".into())),
        }
    }
}

fn fixed_tables() -> Result<(Huffman, Huffman), IoError> {
    let mut litlen_lengths = [0u8; 288];
    for (symbol, len) in litlen_lengths.iter_mut().enumerate() {
        *len = match symbol {
            0..=143 => 8,
            144..=255 => 9,
            256..=279 => 7,
            _ => 8,
        };
    }
    let dist_lengths = [5u8; 30];
    Ok((Huffman::new(&litlen_lengths)?, Huffman::new(&dist_lengths)?))
}

fn dynamic_tables(reader: &mut BitReader<'_>) -> Result<(Huffman, Huffman), IoError> {
    let hlit = reader.bits(5)? as usize + 257;
    let hdist = reader.bits(5)? as usize + 1;
    let hclen = reader.bits(4)? as usize + 4;
    if hlit > 286 || hdist > 30 {
        return Err(IoError::Compression(
            "too many litlen/distance codes".into(),
        ));
    }
    let mut clen_lengths = [0u8; 19];
    for &pos in CLEN_ORDER.iter().take(hclen) {
        clen_lengths[pos] = reader.bits(3)? as u8;
    }
    let clen = Huffman::new(&clen_lengths)?;
    let mut lengths = vec![0u8; hlit + hdist];
    let mut i = 0;
    while i < lengths.len() {
        let symbol = clen.decode(reader)?;
        match symbol {
            0..=15 => {
                lengths[i] = symbol as u8;
                i += 1;
            }
            16 => {
                if i == 0 {
                    return Err(IoError::Compression(
                        "repeat with no previous length".into(),
                    ));
                }
                let prev = lengths[i - 1];
                let repeat = 3 + reader.bits(2)? as usize;
                for _ in 0..repeat {
                    if i >= lengths.len() {
                        return Err(IoError::Compression("length repeat overflows".into()));
                    }
                    lengths[i] = prev;
                    i += 1;
                }
            }
            17 | 18 => {
                let repeat = if symbol == 17 {
                    3 + reader.bits(3)? as usize
                } else {
                    11 + reader.bits(7)? as usize
                };
                if i + repeat > lengths.len() {
                    return Err(IoError::Compression("zero-run overflows".into()));
                }
                i += repeat;
            }
            _ => return Err(IoError::Compression("invalid code-length symbol".into())),
        }
    }
    if lengths[256] == 0 {
        return Err(IoError::Compression("missing end-of-block code".into()));
    }
    let litlen = Huffman::new(&lengths[..hlit])?;
    let dist = Huffman::new(&lengths[hlit..])?;
    Ok((litlen, dist))
}

/// Decompresses a raw DEFLATE (RFC 1951) stream.
pub fn inflate(data: &[u8]) -> Result<Vec<u8>, IoError> {
    let mut reader = BitReader::new(data);
    let mut out = Vec::with_capacity(data.len().saturating_mul(3));
    loop {
        let final_block = reader.bits(1)? == 1;
        let block_type = reader.bits(2)?;
        match block_type {
            0 => {
                reader.align_to_byte();
                let header = reader.take_bytes(4)?;
                let len = u16::from_le_bytes([header[0], header[1]]) as usize;
                let nlen = u16::from_le_bytes([header[2], header[3]]);
                if nlen != !(len as u16) {
                    return Err(IoError::Compression(
                        "stored block LEN/NLEN mismatch".into(),
                    ));
                }
                out.extend_from_slice(reader.take_bytes(len)?);
            }
            1 => {
                let (litlen, dist) = fixed_tables()?;
                inflate_block(&mut reader, &mut out, &litlen, &dist)?;
            }
            2 => {
                let (litlen, dist) = dynamic_tables(&mut reader)?;
                inflate_block(&mut reader, &mut out, &litlen, &dist)?;
            }
            _ => return Err(IoError::Compression("reserved block type".into())),
        }
        if final_block {
            return Ok(out);
        }
    }
}

/// Decompresses a gzip (RFC 1952) file and verifies its CRC-32 and length
/// trailer.
pub fn gunzip(data: &[u8]) -> Result<Vec<u8>, IoError> {
    if !is_gzip(data) {
        return Err(IoError::Compression("not a gzip stream (bad magic)".into()));
    }
    if data.len() < 18 {
        return Err(IoError::Compression("gzip stream too short".into()));
    }
    if data[2] != 8 {
        return Err(IoError::Compression(format!(
            "unsupported gzip compression method {}",
            data[2]
        )));
    }
    let flags = data[3];
    let mut pos = 10usize; // magic(2) method(1) flags(1) mtime(4) xfl(1) os(1)
    let advance = |pos: &mut usize, by: usize| -> Result<(), IoError> {
        *pos = pos
            .checked_add(by)
            .filter(|&p| p <= data.len())
            .ok_or_else(|| IoError::Compression("truncated gzip header".into()))?;
        Ok(())
    };
    if flags & 0x04 != 0 {
        // FEXTRA
        if pos + 2 > data.len() {
            return Err(IoError::Compression("truncated gzip FEXTRA".into()));
        }
        let xlen = u16::from_le_bytes([data[pos], data[pos + 1]]) as usize;
        advance(&mut pos, 2 + xlen)?;
    }
    for flag in [0x08u8, 0x10] {
        // FNAME, FCOMMENT: zero-terminated strings.
        if flags & flag != 0 {
            let end = data[pos..]
                .iter()
                .position(|&b| b == 0)
                .ok_or_else(|| IoError::Compression("unterminated gzip header field".into()))?;
            advance(&mut pos, end + 1)?;
        }
    }
    if flags & 0x02 != 0 {
        // FHCRC
        advance(&mut pos, 2)?;
    }
    if data.len() < pos + 8 {
        return Err(IoError::Compression("gzip stream missing trailer".into()));
    }
    let payload = &data[pos..data.len() - 8];
    let out = inflate(payload)?;
    let trailer = &data[data.len() - 8..];
    let expected_crc = u32::from_le_bytes([trailer[0], trailer[1], trailer[2], trailer[3]]);
    let expected_len = u32::from_le_bytes([trailer[4], trailer[5], trailer[6], trailer[7]]);
    if out.len() as u32 != expected_len {
        return Err(IoError::Compression(format!(
            "gzip length mismatch: got {} expected {}",
            out.len(),
            expected_len
        )));
    }
    let actual_crc = crc32(&out);
    if actual_crc != expected_crc {
        return Err(IoError::Compression(format!(
            "gzip CRC mismatch: got {actual_crc:#10x} expected {expected_crc:#10x}"
        )));
    }
    Ok(out)
}

/// Wraps `data` in a valid gzip container using stored (uncompressed) DEFLATE
/// blocks. No size reduction, but readable by every gzip implementation.
pub fn gzip_stored(data: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(data.len() + 64);
    // Header: magic, deflate, no flags, zero mtime, no XFL, unknown OS.
    out.extend_from_slice(&[0x1f, 0x8b, 0x08, 0, 0, 0, 0, 0, 0, 0xff]);
    let mut chunks = data.chunks(0xffff).peekable();
    if data.is_empty() {
        // A single empty final stored block.
        out.extend_from_slice(&[0x01, 0x00, 0x00, 0xff, 0xff]);
    }
    while let Some(chunk) = chunks.next() {
        let final_block = chunks.peek().is_none();
        out.push(u8::from(final_block)); // BFINAL bit, BTYPE=00, padding
        let len = chunk.len() as u16;
        out.extend_from_slice(&len.to_le_bytes());
        out.extend_from_slice(&(!len).to_le_bytes());
        out.extend_from_slice(chunk);
    }
    out.extend_from_slice(&crc32(data).to_le_bytes());
    out.extend_from_slice(&(data.len() as u32).to_le_bytes());
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crc32_matches_known_vectors() {
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"123456789"), 0xcbf4_3926);
        let mut streaming = Crc32::new();
        streaming.update(b"1234");
        streaming.update(b"56789");
        assert_eq!(streaming.finish(), 0xcbf4_3926);
    }

    #[test]
    fn stored_round_trip() {
        for payload in [
            b"".to_vec(),
            b"hello world".to_vec(),
            (0..200_000u32)
                .flat_map(|x| x.to_le_bytes())
                .collect::<Vec<u8>>(),
        ] {
            let gz = gzip_stored(&payload);
            assert!(is_gzip(&gz));
            assert_eq!(gunzip(&gz).expect("round trip"), payload);
        }
    }

    #[test]
    fn fixed_huffman_block_decodes() {
        // Hand-assembled fixed-Huffman block encoding "aaaa": literal 'a'
        // (0x61 → code 0x91, 8 bits MSB-first) four times, then end-of-block.
        // Instead of hand-packing bits, build it with a tiny encoder below.
        let mut bits = BitWriter::new();
        bits.push_bits(1, 1); // BFINAL
        bits.push_bits(1, 2); // fixed
        for _ in 0..4 {
            // Literal 0x61: fixed code for 0x61 is 0x30 + 0x61 = 0x91, 8 bits.
            bits.push_code(0x30 + 0x61, 8);
        }
        bits.push_code(0, 7); // end of block (symbol 256, 7-bit code 0)
        let stream = bits.finish();
        assert_eq!(inflate(&stream).expect("valid"), b"aaaa");
    }

    #[test]
    fn backreference_copies_work() {
        // "abcabcabc" via literal "abc" + match(length 6, distance 3).
        let mut bits = BitWriter::new();
        bits.push_bits(1, 1);
        bits.push_bits(1, 2);
        for &b in b"abc" {
            bits.push_code(0x30 + b as u32, 8);
        }
        // Length 6 → symbol 260 (base 6, no extra): code 260-256=4 → 7-bit code 4.
        bits.push_code(4, 7);
        // Distance 3 → symbol 2, 5-bit code 2, no extra bits.
        bits.push_code(2, 5);
        bits.push_code(0, 7);
        let stream = bits.finish();
        assert_eq!(inflate(&stream).expect("valid"), b"abcabcabc");
    }

    #[test]
    fn corrupt_streams_are_rejected() {
        assert!(gunzip(b"not gzip at all").is_err());
        let mut gz = gzip_stored(b"hello");
        let last = gz.len() - 1;
        gz[last] ^= 0xff; // break the ISIZE field
        assert!(gunzip(&gz).is_err());
        let mut gz2 = gzip_stored(b"hello");
        gz2[12] ^= 0x01; // flip a payload bit → CRC mismatch
        assert!(gunzip(&gz2).is_err());
        assert!(inflate(&[0x07]).is_err()); // reserved block type
    }

    /// Minimal MSB-first-code bit packer for building test streams.
    struct BitWriter {
        bytes: Vec<u8>,
        bit: u32,
        cur: u8,
    }

    impl BitWriter {
        fn new() -> Self {
            BitWriter {
                bytes: Vec::new(),
                bit: 0,
                cur: 0,
            }
        }

        /// Pushes `n` bits LSB-first (header fields, extra bits).
        fn push_bits(&mut self, value: u32, n: u32) {
            for i in 0..n {
                let b = (value >> i) & 1;
                self.cur |= (b as u8) << self.bit;
                self.bit += 1;
                if self.bit == 8 {
                    self.bytes.push(self.cur);
                    self.cur = 0;
                    self.bit = 0;
                }
            }
        }

        /// Pushes a Huffman code: codes are packed starting from their most
        /// significant bit.
        fn push_code(&mut self, code: u32, len: u32) {
            for i in (0..len).rev() {
                self.push_bits((code >> i) & 1, 1);
            }
        }

        fn finish(mut self) -> Vec<u8> {
            if self.bit > 0 {
                self.bytes.push(self.cur);
            }
            self.bytes
        }
    }
}
