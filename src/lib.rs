//! Umbrella crate of the `effres` workspace: re-exports the public crates so
//! the examples and cross-crate integration tests have a single dependency
//! root. Library users should depend on the individual crates
//! ([`effres`], [`effres_graph`], [`effres_sparse`], [`effres_powergrid`],
//! [`effres_io`], [`effres_service`], [`effres_server`]) directly.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub use effres;
pub use effres_graph;
pub use effres_io;
pub use effres_powergrid;
pub use effres_server;
pub use effres_service;
pub use effres_sparse;
