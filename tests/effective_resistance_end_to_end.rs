//! Cross-crate integration tests: the full Alg. 3 pipeline (graph →
//! grounded Laplacian → incomplete Cholesky → approximate inverse → queries)
//! against the exact oracle, across the structural regimes of Table I.

use effres::prelude::*;
use effres::stats::{relative_errors, sample_edges};
use effres_graph::generators;
use effres_graph::Graph;

fn check_graph(graph: &Graph, avg_bound: f64, max_bound: f64) {
    let estimator =
        EffectiveResistanceEstimator::build(graph, &EffresConfig::default()).expect("build");
    let exact = ExactEffectiveResistance::build(graph, 1.0).expect("build");
    let queries = sample_edges(graph, 500, 17);
    let approx = estimator.query_many(&queries).expect("queries");
    let truth = exact.query_many(&queries).expect("queries");
    let (avg, max) = relative_errors(&approx, &truth);
    assert!(
        avg < avg_bound,
        "average relative error {avg} > {avg_bound}"
    );
    assert!(
        max < max_bound,
        "maximum relative error {max} > {max_bound}"
    );
}

#[test]
fn mesh_like_graph_matches_exact() {
    let graph = generators::grid_2d(30, 30, 0.5, 2.0, 1).expect("generator");
    check_graph(&graph, 1e-2, 2e-1);
}

#[test]
fn power_grid_mesh_matches_exact() {
    let graph = generators::power_grid_mesh(Default::default()).expect("generator");
    check_graph(&graph, 1e-2, 2e-1);
}

#[test]
fn finite_element_mesh_matches_exact() {
    let graph = generators::fe_mesh(8, 8, 8, 0.5, 2.0, 3).expect("generator");
    check_graph(&graph, 2e-2, 3e-1);
}

#[test]
fn social_network_graph_matches_exact() {
    let graph = generators::preferential_attachment(1500, 3, 0.5, 1.5, 5).expect("generator");
    check_graph(&graph, 2e-2, 3e-1);
}

#[test]
fn small_world_graph_matches_exact() {
    let graph = generators::small_world(1200, 3, 0.05, 0.5, 1.5, 6).expect("generator");
    check_graph(&graph, 2e-2, 3e-1);
}

#[test]
fn alg3_is_more_accurate_than_the_random_projection_baseline() {
    use effres::random_projection::RandomProjectionOptions;
    let graph = generators::grid_2d(24, 24, 0.5, 2.0, 9).expect("generator");
    let exact = ExactEffectiveResistance::build(&graph, 1.0).expect("build");
    let queries = sample_edges(&graph, 500, 23);
    let truth = exact.query_many(&queries).expect("queries");

    let alg3 = EffectiveResistanceEstimator::build(&graph, &EffresConfig::default())
        .expect("build")
        .query_many(&queries)
        .expect("queries");
    let (alg3_avg, _) = relative_errors(&alg3, &truth);

    let rp = RandomProjectionEstimator::build(&graph, &RandomProjectionOptions::default())
        .expect("build")
        .query_many(&queries)
        .expect("queries");
    let (rp_avg, _) = relative_errors(&rp, &truth);

    assert!(
        alg3_avg * 5.0 < rp_avg,
        "expected at least 5x better average error: alg3 {alg3_avg}, www15 {rp_avg}"
    );
}

#[test]
fn epsilon_controls_the_error_and_the_size() {
    let graph = generators::grid_2d(20, 20, 1.0, 1.0, 2).expect("generator");
    let exact = ExactEffectiveResistance::build(&graph, 1.0).expect("build");
    let queries = sample_edges(&graph, 300, 31);
    let truth = exact.query_many(&queries).expect("queries");
    let mut previous_error = f64::INFINITY;
    let mut previous_nnz = usize::MAX;
    for epsilon in [3e-2, 3e-3, 3e-4] {
        let config = EffresConfig::default()
            .with_drop_tolerance(0.0)
            .with_epsilon(epsilon);
        let estimator = EffectiveResistanceEstimator::build(&graph, &config).expect("build");
        let approx = estimator.query_many(&queries).expect("queries");
        let (avg, _) = relative_errors(&approx, &truth);
        assert!(
            avg <= previous_error * 1.5 + 1e-12,
            "error must not grow when epsilon shrinks: {avg} after {previous_error}"
        );
        assert!(
            estimator.stats().inverse_nnz >= previous_nnz.min(estimator.stats().inverse_nnz),
            "nnz should grow (or stay) as epsilon shrinks"
        );
        previous_error = avg;
        previous_nnz = estimator.stats().inverse_nnz;
    }
    assert!(
        previous_error < 1e-3,
        "tightest epsilon should be very accurate"
    );
}

#[test]
fn series_and_parallel_circuit_laws_hold() {
    // Series: R = r1 + r2; parallel: 1/R = 1/r1 + 1/r2 — checked through the
    // full Alg. 3 pipeline on exactly-representable circuits.
    let mut series = Graph::new(3);
    series.add_edge(0, 1, 1.0 / 3.0).expect("edge"); // 3 ohm
    series.add_edge(1, 2, 1.0 / 5.0).expect("edge"); // 5 ohm
    let est = EffectiveResistanceEstimator::build(
        &series,
        &EffresConfig::default()
            .with_drop_tolerance(0.0)
            .with_epsilon(0.0),
    )
    .expect("build");
    assert!((est.query(0, 2).expect("query") - 8.0).abs() < 1e-9);

    let mut parallel = Graph::new(2);
    parallel.add_edge(0, 1, 1.0 / 3.0).expect("edge");
    parallel.add_edge(0, 1, 1.0 / 6.0).expect("edge");
    let est = EffectiveResistanceEstimator::build(
        &parallel,
        &EffresConfig::default()
            .with_drop_tolerance(0.0)
            .with_epsilon(0.0),
    )
    .expect("build");
    assert!((est.query(0, 1).expect("query") - 2.0).abs() < 1e-9);
}

#[test]
fn tree_effective_resistance_equals_path_resistance() {
    // On a spanning tree the effective resistance is the sum of edge
    // resistances along the unique path.
    let graph = generators::random_connected(200, 0, 0.5, 2.0, 13).expect("generator");
    assert_eq!(graph.edge_count(), 199, "a tree has n-1 edges");
    let est = EffectiveResistanceEstimator::build(
        &graph,
        &EffresConfig::default()
            .with_drop_tolerance(0.0)
            .with_epsilon(0.0),
    )
    .expect("build");
    let forest = effres_graph::spanning::bfs_spanning_forest(&graph);
    for &(p, q) in &[(0usize, 199usize), (10, 150), (42, 137)] {
        let expected = effres_graph::spanning::tree_path_resistance(&graph, &forest, p, q)
            .expect("same component");
        let actual = est.query(p, q).expect("query");
        assert!(
            (actual - expected).abs() / expected < 1e-8,
            "({p},{q}): {actual} vs {expected}"
        );
    }
}
