//! Property tests of the level-scheduled parallel approximate-inverse build
//! and of the snapshot encodings: across random graphs, pruning thresholds
//! and thread counts, the parallel sweep must produce the *bit-identical*
//! `u32` arena the sequential sweep does — same column pointers, same row
//! indices, same value bits, same statistics — whether it runs on its own
//! transient pool or a shared persistent [`effres::WorkerPool`]; and a v1
//! (per-column) snapshot load must be byte-identical to a v2 (bulk-arena)
//! load of the same estimator.

use effres::approx_inverse::SparseApproximateInverse;
use effres::{BuildOptions, EffectiveResistanceEstimator, EffresConfig, WorkerPool};
use effres_graph::laplacian::grounded_laplacian;
use effres_graph::Graph;
use effres_io::snapshot::{read_snapshot, write_snapshot, write_snapshot_v1};
use effres_sparse::cholesky::CholeskyFactor;
use effres_sparse::{CscMatrix, TripletMatrix};
use proptest::prelude::*;

/// Strategy: a connected weighted graph with `3..=48` nodes.
fn connected_graph() -> impl Strategy<Value = Graph> {
    (3usize..48, any::<u64>()).prop_map(|(n, seed)| {
        let mut graph = Graph::new(n);
        let mut state = seed | 1;
        let mut next = move || {
            // xorshift64* keeps the strategy free of external RNG state.
            state ^= state >> 12;
            state ^= state << 25;
            state ^= state >> 27;
            state.wrapping_mul(0x2545_F491_4F6C_DD1D)
        };
        for i in 1..n {
            let j = (next() as usize) % i;
            let w = 0.25 + (next() % 1000) as f64 / 250.0;
            graph.add_edge(i, j, w).expect("valid edge");
        }
        for _ in 0..n {
            let a = (next() as usize) % n;
            let b = (next() as usize) % n;
            if a != b {
                let w = 0.25 + (next() % 1000) as f64 / 250.0;
                graph.add_edge(a, b, w).expect("valid edge");
            }
        }
        graph
    })
}

/// Block-diagonal Laplacian of independent weighted paths: a wide level
/// schedule, so the heuristic gate lets the parallel sweep run even for
/// small orders.
fn block_paths(blocks: usize, len: usize, seed: u64) -> CscMatrix {
    let n = blocks * len;
    let mut t = TripletMatrix::new(n, n);
    let mut state = seed | 1;
    let mut next = move || {
        state ^= state >> 12;
        state ^= state << 25;
        state ^= state >> 27;
        state.wrapping_mul(0x2545_F491_4F6C_DD1D)
    };
    for b in 0..blocks {
        let base = b * len;
        for i in 0..len - 1 {
            let w = 0.25 + (next() % 1000) as f64 / 250.0;
            t.add_laplacian_edge(base + i, base + i + 1, w);
        }
        t.push(base, base, 1e-2);
    }
    t.to_csc()
}

fn assert_bit_identical(seq: &SparseApproximateInverse, par: &SparseApproximateInverse) {
    assert_eq!(seq.col_ptr(), par.col_ptr());
    assert_eq!(seq.arena_rows(), par.arena_rows());
    assert_eq!(seq.arena_values().len(), par.arena_values().len());
    for (i, (a, b)) in seq
        .arena_values()
        .iter()
        .zip(par.arena_values())
        .enumerate()
    {
        assert_eq!(a.to_bits(), b.to_bits(), "value {i} differs: {a} vs {b}");
    }
    assert_eq!(seq.stats(), par.stats());
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn parallel_build_matches_sequential_on_random_graphs(
        graph in connected_graph(),
        eps_exp in 0u32..4,
        threads in 2usize..6,
    ) {
        let epsilon = [0.0, 1e-4, 1e-2, 0.2][eps_exp as usize];
        let lap = grounded_laplacian(&graph, 1.0);
        let factor = CholeskyFactor::factor(&lap).expect("SPD");
        let l = factor.factor_l();
        let seq = SparseApproximateInverse::from_factor_with(
            l, epsilon, 2, &BuildOptions::sequential(),
        ).expect("sequential");
        let par = SparseApproximateInverse::from_factor_with(
            l, epsilon, 2,
            &BuildOptions { threads, parallel_threshold: 1 },
        ).expect("parallel");
        assert_bit_identical(&seq, &par);
    }

    #[test]
    fn shared_pool_build_matches_sequential_on_random_graphs(
        graph in connected_graph(),
        threads in 2usize..5,
    ) {
        // The pooled entry point (one persistent pool, reusable across
        // builds) must be as bit-identical as the transient-pool path.
        let lap = grounded_laplacian(&graph, 1.0);
        let factor = CholeskyFactor::factor(&lap).expect("SPD");
        let l = factor.factor_l();
        let seq = SparseApproximateInverse::from_factor_with(
            l, 1e-3, 2, &BuildOptions::sequential(),
        ).expect("sequential");
        let pool = WorkerPool::new(threads);
        let shared = std::sync::Arc::new(l.clone());
        for _ in 0..2 {
            let pooled = SparseApproximateInverse::from_factor_shared(
                std::sync::Arc::clone(&shared), 1e-3, 2,
                &BuildOptions { threads: 0, parallel_threshold: 1 },
                Some(&pool),
            ).expect("pooled");
            assert_bit_identical(&seq, &pooled);
        }
    }

    #[test]
    fn v1_and_v2_snapshot_loads_answer_bit_identically(
        graph in connected_graph(),
        seed in any::<u64>(),
    ) {
        // The same estimator through both on-disk encodings: per-column v1
        // records and v2 bulk arena blocks must load into byte-identical
        // u32 arenas and answer queries with the same bits as the
        // in-memory estimator.
        let estimator = EffectiveResistanceEstimator::build(
            &graph, &EffresConfig::default(),
        ).expect("build");
        let mut v1 = Vec::new();
        write_snapshot_v1(&mut v1, &estimator, None).expect("write v1");
        let mut v2 = Vec::new();
        write_snapshot(&mut v2, &estimator, None).expect("write v2");
        let from_v1 = read_snapshot(&mut v1.as_slice()).expect("read v1");
        let from_v2 = read_snapshot(&mut v2.as_slice()).expect("read v2");
        let a = from_v1.estimator.approximate_inverse();
        let b = from_v2.estimator.approximate_inverse();
        assert_eq!(a.col_ptr(), b.col_ptr());
        assert_eq!(a.arena_rows(), b.arena_rows());
        assert!(a.arena_values().iter().zip(b.arena_values())
            .all(|(x, y)| x.to_bits() == y.to_bits()));
        let n = estimator.node_count();
        let mut state = seed | 1;
        let mut next = move || {
            state ^= state >> 12;
            state ^= state << 25;
            state ^= state >> 27;
            state.wrapping_mul(0x2545_F491_4F6C_DD1D)
        };
        for _ in 0..16 {
            let p = (next() as usize) % n;
            let q = (next() as usize) % n;
            let expected = estimator.query(p, q).expect("in bounds").to_bits();
            assert_eq!(from_v1.estimator.query(p, q).expect("in bounds").to_bits(), expected);
            assert_eq!(from_v2.estimator.query(p, q).expect("in bounds").to_bits(), expected);
        }
    }

    #[test]
    fn parallel_build_matches_sequential_on_wide_schedules(
        blocks in 16usize..48,
        len in 2usize..8,
        seed in any::<u64>(),
        threads in 2usize..6,
    ) {
        // Wide by construction: `blocks` independent chains ⇒ the level
        // schedule has width `blocks` per level and the parallel sweep
        // genuinely runs (the width gate cannot fall back for threads < 6
        // once blocks ≥ 4 · threads).
        let a = block_paths(blocks, len, seed);
        let factor = CholeskyFactor::factor(&a).expect("SPD");
        let l = factor.factor_l();
        for epsilon in [0.0, 5e-3, 0.1] {
            let seq = SparseApproximateInverse::from_factor_with(
                l, epsilon, 2, &BuildOptions::sequential(),
            ).expect("sequential");
            let par = SparseApproximateInverse::from_factor_with(
                l, epsilon, 2,
                &BuildOptions { threads, parallel_threshold: 1 },
            ).expect("parallel");
            assert_bit_identical(&seq, &par);
        }
    }
}
