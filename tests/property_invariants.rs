//! Property-based tests of the core invariants, spanning all crates.
//!
//! The generators draw random weighted graphs and random circuits; the
//! properties are the mathematical facts the paper's algorithms rely on:
//! Laplacian structure, non-negativity of `L⁻¹` (Lemma 1), the Theorem 1
//! column error bound, metric properties of effective resistances and
//! Rayleigh monotonicity.

use effres::approx_inverse::SparseApproximateInverse;
use effres::depth::FilledGraphDepth;
use effres::prelude::*;
use effres_graph::laplacian::{grounded_laplacian, laplacian};
use effres_graph::Graph;
use effres_sparse::cholesky::CholeskyFactor;
use effres_sparse::trisolve;
use proptest::prelude::*;

/// Strategy: a connected weighted graph with `3..=40` nodes.
fn connected_graph() -> impl Strategy<Value = Graph> {
    (3usize..40, any::<u64>()).prop_map(|(n, seed)| {
        // Random spanning tree plus a few extra edges, deterministic in seed.
        let mut graph = Graph::new(n);
        let mut state = seed | 1;
        let mut next = move || {
            // xorshift64* keeps the strategy free of external RNG state.
            state ^= state >> 12;
            state ^= state << 25;
            state ^= state >> 27;
            state.wrapping_mul(0x2545_F491_4F6C_DD1D)
        };
        for i in 1..n {
            let j = (next() as usize) % i;
            let w = 0.25 + (next() % 1000) as f64 / 250.0;
            graph.add_edge(i, j, w).expect("valid edge");
        }
        for _ in 0..n {
            let a = (next() as usize) % n;
            let b = (next() as usize) % n;
            if a != b {
                let w = 0.25 + (next() % 1000) as f64 / 250.0;
                graph.add_edge(a, b, w).expect("valid edge");
            }
        }
        graph
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn laplacian_rows_sum_to_zero_and_matrix_is_sdd(graph in connected_graph()) {
        let lap = laplacian(&graph);
        let ones = vec![1.0; graph.node_count()];
        for v in lap.matvec(&ones) {
            prop_assert!(v.abs() < 1e-9);
        }
        for j in 0..lap.ncols() {
            let diag = lap.get(j, j);
            let off: f64 = lap.column(j).filter(|&(i, _)| i != j).map(|(_, v)| v.abs()).sum();
            prop_assert!(diag + 1e-9 >= off);
        }
    }

    #[test]
    fn cholesky_factor_of_grounded_laplacian_has_m_matrix_signs(graph in connected_graph()) {
        let lap = grounded_laplacian(&graph, 1.0);
        let factor = CholeskyFactor::factor(&lap).expect("SPD");
        let l = factor.factor_l();
        for j in 0..l.ncols() {
            for (i, v) in l.column(j) {
                if i == j {
                    prop_assert!(v > 0.0);
                } else {
                    prop_assert!(v <= 1e-12);
                }
            }
        }
    }

    #[test]
    fn approximate_inverse_is_nonnegative_and_obeys_theorem1(graph in connected_graph()) {
        let lap = grounded_laplacian(&graph, 1.0);
        let factor = CholeskyFactor::factor(&lap).expect("SPD");
        let l = factor.factor_l();
        let epsilon = 5e-3;
        let inverse = SparseApproximateInverse::from_factor(l, epsilon, 0).expect("Alg. 2");
        let depth = FilledGraphDepth::from_factor(l);
        for p in 0..l.ncols() {
            // Lemma 1: nonnegative columns.
            prop_assert!(inverse.column(p).values().iter().all(|&v| v >= 0.0));
            // Theorem 1: relative column error bounded by depth * epsilon.
            let exact = trisolve::solve_lower_unit_sparse(l, p);
            let err = inverse.column(p).diff_norm1(&exact) / exact.norm1();
            prop_assert!(err <= depth.depth(p) as f64 * epsilon + 1e-12,
                "column {}: {} > {}", p, err, depth.depth(p) as f64 * epsilon);
        }
    }

    #[test]
    fn effective_resistance_is_a_metric_like_distance(graph in connected_graph()) {
        let est = EffectiveResistanceEstimator::build(
            &graph,
            &EffresConfig::default().with_drop_tolerance(0.0).with_epsilon(0.0),
        ).expect("build");
        let n = graph.node_count();
        let (a, b, c) = (0, n / 2, n - 1);
        let rab = est.query(a, b).expect("query");
        let rbc = est.query(b, c).expect("query");
        let rac = est.query(a, c).expect("query");
        // Symmetry and positivity.
        prop_assert!(rab >= 0.0 && rbc >= 0.0 && rac >= 0.0);
        prop_assert!((est.query(b, a).expect("query") - rab).abs() < 1e-9);
        // Effective resistance itself satisfies the triangle inequality.
        if a != b && b != c && a != c {
            prop_assert!(rac <= rab + rbc + 1e-9);
        }
    }

    #[test]
    fn rayleigh_monotonicity_holds_for_added_edges(graph in connected_graph()) {
        // Adding a new edge can only lower (or keep) every effective resistance.
        let exact_before = ExactEffectiveResistance::build(&graph, 1.0).expect("build");
        let n = graph.node_count();
        let (p, q) = (0, n - 1);
        let before = exact_before.query(p, q).expect("query");
        let mut denser = graph.clone();
        denser.add_edge(p, q, 1.0).expect("valid edge");
        let exact_after = ExactEffectiveResistance::build(&denser, 1.0).expect("build");
        let after = exact_after.query(p, q).expect("query");
        prop_assert!(after <= before + 1e-9);
        // And the parallel-resistance formula gives the exact new value.
        let expected = 1.0 / (1.0 / before + 1.0);
        prop_assert!((after - expected).abs() < 1e-6);
    }

    #[test]
    fn alg3_tracks_exact_resistances_on_random_graphs(graph in connected_graph()) {
        let est = EffectiveResistanceEstimator::build(&graph, &EffresConfig::default())
            .expect("build");
        let exact = ExactEffectiveResistance::build(&graph, 1.0).expect("build");
        for (id, e) in graph.edges() {
            if id % 3 != 0 {
                continue;
            }
            let a = est.query(e.u, e.v).expect("query");
            let b = exact.query(e.u, e.v).expect("query");
            prop_assert!((a - b).abs() / b < 0.2, "edge ({}, {}): {} vs {}", e.u, e.v, a, b);
        }
    }
}
