//! End-to-end test of the ingestion + query-service pipeline: a SNAP-style
//! (gzipped) edge list on disk → dataset ingestion → estimator build →
//! parallel batched queries → snapshot persistence → identical answers after
//! reload. This is the exact flow `effres-cli` drives from the shell.

use effres::{EffectiveResistanceEstimator, EffresConfig};
use effres_graph::generators;
use effres_io::dataset::{load_graph, IngestOptions};
use effres_io::{edge_list, gzip, snapshot};
use effres_service::{EngineOptions, QueryBatch, QueryEngine};
use proptest::prelude::*;
use std::sync::Arc;
use std::sync::OnceLock;

fn temp_path(name: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join("effres-e2e");
    std::fs::create_dir_all(&dir).expect("temp dir");
    dir.join(name)
}

#[test]
fn dataset_to_batched_queries_to_snapshot_and_back() {
    // 1. A realistic dataset file: a generated social-like graph written as a
    //    gzipped edge list with comments and a stray small component.
    let graph = generators::preferential_attachment(600, 3, 0.5, 1.5, 9).expect("generator");
    let mut text = Vec::new();
    edge_list::write_edge_list(&mut text, &graph, None).expect("write");
    // Append a 2-node component that ingestion must drop.
    text.extend_from_slice(b"100000 100001\n");
    let path = temp_path("social.txt.gz");
    std::fs::write(&path, gzip::gzip_stored(&text)).expect("write file");

    // 2. Ingest: the largest component is the original graph.
    let ds = load_graph(&path, &IngestOptions::default()).expect("ingest");
    assert_eq!(ds.stats.components, 2);
    assert_eq!(ds.graph.node_count(), 600);
    assert_eq!(ds.graph.edge_count(), graph.coalesced().edge_count());

    // 3. Build the estimator and serve a parallel batch of 10k+ queries.
    let estimator =
        EffectiveResistanceEstimator::build(&ds.graph, &EffresConfig::default()).expect("build");
    let engine = QueryEngine::new(
        Arc::new(estimator),
        EngineOptions {
            threads: 4,
            parallel_threshold: 64,
            ..EngineOptions::default()
        },
    );
    let batch = QueryBatch::random(12_000, engine.node_count(), 2024);
    let result = engine.execute(&batch).expect("batch");
    assert_eq!(result.values.len(), 12_000);
    assert!(result.threads >= 1);

    // 4. Spot-check the batch against direct estimator queries.
    let estimator = Arc::clone(engine.estimator());
    for (&(p, q), &value) in batch.pairs().iter().zip(&result.values).step_by(487) {
        let reference = estimator.query(p, q).expect("query");
        assert!(
            (value - reference).abs() <= 1e-9 * reference.abs().max(1.0),
            "({p},{q}): {value} vs {reference}"
        );
    }

    // 5. Snapshot, reload, and verify answers are bit-identical.
    let snap_path = temp_path("social.snap");
    snapshot::save_snapshot(&snap_path, &estimator, Some(&ds.labels)).expect("save");
    let restored = snapshot::load_snapshot(&snap_path).expect("load");
    assert_eq!(restored.labels.as_deref(), Some(ds.labels.as_slice()));
    for &(p, q) in batch.pairs().iter().step_by(631) {
        assert_eq!(
            restored.estimator.query(p, q).expect("query"),
            estimator.query(p, q).expect("query"),
            "({p},{q})"
        );
    }

    // 6. Repeating the batch is served mostly from cache.
    let again = engine.execute(&batch).expect("batch");
    assert!(again.cache_hits > (batch.len() / 2) as u64);
    for (&a, &b) in result.values.iter().zip(&again.values) {
        assert_eq!(a, b);
    }

    // 7. Out-of-core serving: the same snapshot opened *paged* (only the
    //    header, permutation and column pointers resident, columns paged in
    //    through a deliberately tiny cache) must answer the whole batch
    //    bit-identically to a fresh resident engine — same options, same
    //    batch, fresh pair caches on both sides so both take the same code
    //    paths.
    let paged = effres_io::paged::open_paged(
        &snap_path,
        &effres_io::paged::PagedOptions {
            columns_per_page: 16,
            cache_pages: 8,
            cache_shards: 2,
            ..effres_io::paged::PagedOptions::default()
        },
    )
    .expect("open paged");
    assert_eq!(paged.node_count(), 600);
    assert_eq!(paged.labels.as_deref(), Some(ds.labels.as_slice()));
    let engine_options = || EngineOptions {
        threads: 4,
        parallel_threshold: 64,
        ..EngineOptions::default()
    };
    let resident_engine = QueryEngine::new(Arc::new(restored.estimator.clone()), engine_options());
    let paged_engine = QueryEngine::new(Arc::new(paged), engine_options());
    let resident_result = resident_engine.execute(&batch).expect("resident batch");
    let paged_result = paged_engine.execute(&batch).expect("paged batch");
    assert_eq!(resident_result.values.len(), paged_result.values.len());
    for (slot, (&a, &b)) in resident_result
        .values
        .iter()
        .zip(&paged_result.values)
        .enumerate()
    {
        assert_eq!(
            a.to_bits(),
            b.to_bits(),
            "query {slot} {:?}: resident {a} vs paged {b}",
            batch.pairs()[slot]
        );
    }
    // The page cache was actually exercised (8 pages cannot hold all 600
    // columns), and only the paged engine reports page traffic.
    let paged_stats = paged_engine.stats();
    assert!(paged_stats.page_cache_misses > 0);
    assert!(paged_stats.page_cache_hits > 0);
    assert!(paged_stats.page_bytes_read > 0);
    let resident_stats = resident_engine.stats();
    assert_eq!(resident_stats.page_cache_hits, 0);
    assert_eq!(resident_stats.page_cache_misses, 0);
    assert_eq!(resident_stats.page_bytes_read, 0);
    // Per-batch page traffic rides on the result; resident batches have none.
    assert!(paged_result.page_cache.expect("paged batch").misses > 0);
    assert!(resident_result.page_cache.is_none());

    // 8. The locality scheduler: the same batch through
    //    `execute_scheduled` must reproduce the resident answers
    //    bit-identically, in the original request order, while reading far
    //    fewer pages than the arrival-order paged run above.
    let scheduled_engine = QueryEngine::new(
        Arc::new(
            effres_io::paged::open_paged(
                &snap_path,
                &effres_io::paged::PagedOptions {
                    columns_per_page: 16,
                    cache_pages: 8,
                    cache_shards: 2,
                    ..effres_io::paged::PagedOptions::default()
                },
            )
            .expect("open paged"),
        ),
        engine_options(),
    );
    let scheduled_result = scheduled_engine
        .execute_scheduled(&batch)
        .expect("scheduled batch");
    for (slot, (&a, &b)) in resident_result
        .values
        .iter()
        .zip(&scheduled_result.values)
        .enumerate()
    {
        assert_eq!(
            a.to_bits(),
            b.to_bits(),
            "query {slot} {:?}: resident {a} vs scheduled {b}",
            batch.pairs()[slot]
        );
    }
    let schedule = scheduled_result.schedule.expect("schedule report");
    assert!(schedule.blocks >= 1 && schedule.windows >= schedule.blocks);
    let scheduled_page = scheduled_result.page_cache.expect("page stats");
    let unscheduled_page = paged_result.page_cache.expect("page stats");
    assert!(
        scheduled_page.misses < unscheduled_page.misses / 2,
        "locality scheduling should slash page misses: {} vs {}",
        scheduled_page.misses,
        unscheduled_page.misses
    );
    assert!(scheduled_page.readahead_reads > 0, "coalesced reads used");
}

/// A prebuilt snapshot shared by the scheduler property test: building the
/// estimator once keeps the proptest cases cheap.
fn shared_snapshot_path() -> &'static std::path::Path {
    static PATH: OnceLock<std::path::PathBuf> = OnceLock::new();
    PATH.get_or_init(|| {
        let graph = generators::grid_2d(14, 14, 0.5, 2.0, 21).expect("generator");
        let estimator =
            EffectiveResistanceEstimator::build(&graph, &EffresConfig::default()).expect("build");
        let path = temp_path("scheduler_prop.snap");
        snapshot::save_snapshot(&path, &estimator, None).expect("save");
        path
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The locality-scheduler contract, as a property over random page
    /// geometries (including a one-page cache), cache budgets, readahead
    /// windows and batches: `execute_scheduled` returns its values in the
    /// batch's original request order and bit-identical to the unscheduled
    /// paged path.
    #[test]
    fn scheduler_preserves_order_and_bits_across_page_geometries(
        (columns_per_page, cache_pages, readahead, queries, seed) in
            (1usize..48, 1usize..32, 0usize..8, 1usize..600, any::<u64>()),
    ) {
        let path = shared_snapshot_path();
        let paged_options = effres_io::paged::PagedOptions {
            columns_per_page,
            cache_pages,
            cache_shards: 1 + (seed as usize % 4),
            ..effres_io::paged::PagedOptions::default()
        };
        let engine_options = |readahead: usize| EngineOptions {
            cache_capacity: 0,
            parallel_threshold: usize::MAX,
            readahead_pages: readahead,
            ..EngineOptions::default()
        };
        let reference = QueryEngine::new(
            Arc::new(effres_io::paged::open_paged(path, &paged_options).expect("open")),
            engine_options(0),
        );
        let scheduled = QueryEngine::new(
            Arc::new(effres_io::paged::open_paged(path, &paged_options).expect("open")),
            engine_options(readahead),
        );
        let batch = QueryBatch::random(queries, reference.node_count(), seed);
        let a = reference.execute(&batch).expect("unscheduled");
        let b = scheduled.execute_scheduled(&batch).expect("scheduled");
        prop_assert_eq!(a.values.len(), b.values.len());
        for (slot, (x, y)) in a.values.iter().zip(&b.values).enumerate() {
            prop_assert_eq!(
                x.to_bits(),
                y.to_bits(),
                "slot {} {:?} (geometry {:?})",
                slot,
                batch.pairs()[slot],
                paged_options
            );
        }
    }
}
