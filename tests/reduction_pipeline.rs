//! Cross-crate integration tests of the power-grid reduction pipeline
//! (Alg. 1) and its downstream applications (transient and DC incremental
//! analysis) — the experiments behind Table II and Fig. 1.

use effres::prelude::EffresConfig;
use effres_powergrid::analysis::{dc_solve, transient_solve, LoadScale, TransientOptions};
use effres_powergrid::generator::{synthetic_grid, SyntheticGridOptions};
use effres_powergrid::incremental::{run_incremental_experiment, IncrementalReducer};
use effres_powergrid::reduce::{compare_port_voltages, reduce, ErMethod, ReductionOptions};

fn test_grid() -> effres_powergrid::PowerGrid {
    synthetic_grid(&SyntheticGridOptions {
        rows: 20,
        cols: 20,
        pad_count: 6,
        ..SyntheticGridOptions::default()
    })
    .expect("generator")
}

#[test]
fn reduction_with_alg3_preserves_dc_port_voltages() {
    let grid = test_grid();
    let original = dc_solve(&grid).expect("dc");
    let reduced = reduce(
        &grid,
        &ReductionOptions {
            er_method: ErMethod::ApproxInverse(EffresConfig::default()),
            ..ReductionOptions::default()
        },
    )
    .expect("reduction");
    assert!(reduced.stats.reduced_nodes < grid.node_count());
    let solution = dc_solve(&reduced.grid).expect("dc");
    let (err, rel) =
        compare_port_voltages(&grid, original.voltages(), &reduced, solution.voltages());
    assert!(rel < 0.05, "relative port error {rel} (absolute {err})");
}

#[test]
fn reduction_quality_is_independent_of_the_er_method_but_alg3_is_fastest_to_build() {
    let grid = test_grid();
    let original = dc_solve(&grid).expect("dc");
    let mut rels = Vec::new();
    for method in [
        ErMethod::Exact,
        ErMethod::ApproxInverse(EffresConfig::default()),
    ] {
        let reduced = reduce(
            &grid,
            &ReductionOptions {
                er_method: method,
                ..ReductionOptions::default()
            },
        )
        .expect("reduction");
        let solution = dc_solve(&reduced.grid).expect("dc");
        let (_, rel) =
            compare_port_voltages(&grid, original.voltages(), &reduced, solution.voltages());
        rels.push(rel);
    }
    // Alg. 3 based reduction keeps the accuracy of the exact-ER reduction
    // ("almost no increase in reduction errors").
    assert!(
        rels[1] < rels[0] * 2.0 + 0.01,
        "exact {} vs alg3 {}",
        rels[0],
        rels[1]
    );
}

#[test]
fn transient_analysis_of_the_reduced_model_tracks_the_original() {
    let grid = test_grid();
    let observed = grid.loads().first().expect("loads exist").node;
    let options = TransientOptions {
        time_step: 1e-11,
        steps: 300,
        record_nodes: vec![observed],
        load_scale: LoadScale::Pulse {
            period: 2e-9,
            duty: 0.5,
        },
    };
    let original = transient_solve(&grid, &options).expect("transient");
    let reduced = reduce(
        &grid,
        &ReductionOptions {
            er_method: ErMethod::ApproxInverse(EffresConfig::default()),
            ..ReductionOptions::default()
        },
    )
    .expect("reduction");
    let reduced_solution = transient_solve(
        &reduced.grid,
        &TransientOptions {
            record_nodes: vec![reduced.node_map[observed].expect("port kept")],
            ..options
        },
    )
    .expect("transient");
    let deviation = original.waveforms[0].max_abs_difference(&reduced_solution.waveforms[0]);
    let supply = grid.supply_voltage();
    let max_drop = original
        .average_voltages
        .iter()
        .fold(0.0_f64, |m, &v| m.max(supply - v));
    assert!(
        deviation < 0.10 * max_drop.max(1e-6) + 1e-6,
        "waveform deviation {deviation} too large (max drop {max_drop})"
    );
}

#[test]
fn incremental_analysis_matches_a_full_resolve() {
    let grid = test_grid();
    let mut reducer = IncrementalReducer::new(
        grid,
        ReductionOptions {
            er_method: ErMethod::ApproxInverse(EffresConfig::default()),
            ..ReductionOptions::default()
        },
    )
    .expect("initial reduction");
    let run = run_incremental_experiment(&mut reducer, 0.1, 5).expect("incremental");
    assert!(
        run.relative_error < 0.05,
        "incremental relative error {} too large",
        run.relative_error
    );
}

#[test]
fn netlist_io_round_trip_through_the_reduction_flow() {
    // Write the synthetic grid as a SPICE deck, parse it back, reduce the
    // parsed grid and check the DC behaviour still matches.
    use effres_powergrid::generator::write_netlist;
    use effres_powergrid::parser::parse_netlist;
    let grid = test_grid();
    let parsed = parse_netlist(&write_netlist(&grid)).expect("parse");
    let original = dc_solve(&parsed).expect("dc");
    let reduced = reduce(&parsed, &ReductionOptions::default()).expect("reduction");
    let solution = dc_solve(&reduced.grid).expect("dc");
    let (_, rel) =
        compare_port_voltages(&parsed, original.voltages(), &reduced, solution.voltages());
    assert!(rel < 0.05, "relative port error {rel}");
}
